#include "server/service.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "storage/buffer_manager.h"
#include "storage/sim_disk.h"
#include "storage/table.h"
#include "sys/telemetry.h"
#include "kernel_isa_test_util.h"
#include "util/rng.h"

// scc_serve subsystem tests (docs/SERVICE.md): wire protocol round-trips,
// service correctness differentials against library-level reference
// answers across thread counts and forced kernel ISAs, admission-control
// overload behavior, deadline/pin-leak interaction with the tiered
// buffer manager, and end-to-end TCP behavior under concurrent clients
// including malformed frames and graceful shutdown.

namespace scc {
namespace server {
namespace {

// Request builders (request_id is informational; handlers echo it back).
Request PointReq(const std::string& col, uint64_t row) {
  Request r;
  r.type = RequestType::kPoint;
  r.request_id = 1;
  r.column = col;
  r.row = row;
  return r;
}
Request ScanReq(const std::string& col, const std::string& fcol, int64_t lo,
                int64_t hi, uint64_t limit) {
  Request r;
  r.type = RequestType::kScan;
  r.request_id = 2;
  r.column = col;
  r.filter_column = fcol;
  r.lo = lo;
  r.hi = hi;
  r.limit = limit;
  return r;
}
Request AggReq(AggOp op, const std::string& col, const std::string& fcol,
               int64_t lo, int64_t hi) {
  Request r;
  r.type = RequestType::kAggregate;
  r.agg_op = op;
  r.request_id = 3;
  r.column = col;
  r.filter_column = fcol;
  r.lo = lo;
  r.hi = hi;
  return r;
}

/// Serial reference for a scan: values of `value` where fv in [lo, hi],
/// in row order, truncated to `limit`.
template <typename V, typename F>
std::pair<uint64_t, std::vector<int64_t>> RefScan(const std::vector<V>& value,
                                                  const std::vector<F>& filter,
                                                  int64_t lo, int64_t hi,
                                                  uint64_t limit) {
  uint64_t matches = 0;
  std::vector<int64_t> out;
  for (size_t i = 0; i < filter.size(); i++) {
    if (int64_t(filter[i]) >= lo && int64_t(filter[i]) <= hi) {
      matches++;
      if (out.size() < limit) out.push_back(int64_t(value[i]));
    }
  }
  return {matches, out};
}

struct Fixture {
  Table table{4096};
  SimDisk disk{SimDisk::MidRangeRaid()};
  std::unique_ptr<BufferManager> bm;
  std::vector<int64_t> id;   // sequential — closed-form reference
  std::vector<int64_t> val;  // clustered with outliers
  std::vector<int32_t> sml;  // tiny domain, 32-bit type coverage

  explicit Fixture(size_t rows = 40000, size_t dram_divisor = 1,
                   size_t hot_kb = 64, size_t ssd_kb = 0) {
    Rng rng(7);
    id.resize(rows);
    val.resize(rows);
    sml.resize(rows);
    for (size_t i = 0; i < rows; i++) {
      id[i] = int64_t(i);
      val[i] = 5000 + int64_t(rng.Uniform(1000));
      if (rng.Bernoulli(0.01)) val[i] = int64_t(rng.Uniform(1u << 24));
      sml[i] = int32_t(rng.Uniform(16));
    }
    SCC_CHECK(
        table.AddColumn<int64_t>("id", id, ColumnCompression::kAuto).ok(),
        "id");
    SCC_CHECK(
        table.AddColumn<int64_t>("val", val, ColumnCompression::kAuto).ok(),
        "val");
    SCC_CHECK(
        table.AddColumn<int32_t>("sml", sml, ColumnCompression::kAuto).ok(),
        "sml");
    BufferManager::TierConfig tiers;
    tiers.hot_capacity_bytes = hot_kb * 1024;
    tiers.ssd_capacity_bytes = ssd_kb * 1024;
    bm = std::make_unique<BufferManager>(
        &disk, table.ByteSize() / dram_divisor + 1, Layout::kDSM, tiers);
  }
};

TEST(ProtocolTest, RequestRoundTripsEveryType) {
  for (const Request& req :
       {PointReq("id", 123), ScanReq("val", "id", -5, 999, 64),
        AggReq(AggOp::kSum, "val", "id", 0, 100)}) {
    std::vector<uint8_t> wire = EncodeRequest(req);
    Result<Request> back = DecodeRequest(wire.data(), wire.size());
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    const Request& r = back.ValueOrDie();
    EXPECT_EQ(int(r.type), int(req.type));
    EXPECT_EQ(int(r.agg_op), int(req.agg_op));
    EXPECT_EQ(r.request_id, req.request_id);
    EXPECT_EQ(r.column, req.column);
    EXPECT_EQ(r.row, req.row);
    EXPECT_EQ(r.filter_column, req.filter_column);
    EXPECT_EQ(r.lo, req.lo);
    EXPECT_EQ(r.hi, req.hi);
    EXPECT_EQ(r.limit, req.limit);
  }
}

TEST(ProtocolTest, ResponseRoundTripsPayloadAndError) {
  Response ok;
  ok.request_id = 9;
  ok.type = RequestType::kScan;
  ok.total_matches = 1000;
  ok.values = {1, -2, 3, std::numeric_limits<int64_t>::min()};
  std::vector<uint8_t> wire = EncodeResponse(ok);
  Result<Response> back = DecodeResponse(wire.data(), wire.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.ValueOrDie().total_matches, 1000u);
  EXPECT_EQ(back.ValueOrDie().values, ok.values);

  Response err;
  err.request_id = 10;
  err.type = RequestType::kPoint;
  err.code = StatusCode::kDeadlineExceeded;
  err.error = "budget spent";
  wire = EncodeResponse(err);
  back = DecodeResponse(wire.data(), wire.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.ValueOrDie().code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(back.ValueOrDie().error, "budget spent");
}

TEST(ProtocolTest, DecodersRejectTruncatedAndHostileFrames) {
  Request req;
  req.type = RequestType::kScan;
  req.column = "id";
  req.filter_column = "id";
  std::vector<uint8_t> wire = EncodeRequest(req);
  for (size_t cut = 0; cut < wire.size(); cut++) {
    Result<Request> r = DecodeRequest(wire.data(), cut);
    EXPECT_FALSE(r.ok()) << "cut at " << cut;
  }
  // Scan response whose count field promises more values than the frame
  // holds must fail cleanly, not over-read.
  Response resp;
  resp.type = RequestType::kScan;
  resp.values = {1, 2, 3};
  std::vector<uint8_t> w = EncodeResponse(resp);
  // count field: after request_id(8) + code + type + reserved(2) +
  // total_matches(8).
  w[20] = 0xff;
  Result<Response> r = DecodeResponse(w.data(), w.size());
  EXPECT_FALSE(r.ok());
}

TEST(ServiceTest, PointMatchesSourceAcrossTypes) {
  Fixture f;
  QueryService svc(&f.table, f.bm.get());
  Rng rng(99);
  for (int i = 0; i < 200; i++) {
    const uint64_t row = rng.Uniform(f.id.size());
    Response rid = svc.Execute(PointReq("id", row));
    ASSERT_EQ(rid.code, StatusCode::kOk) << rid.error;
    EXPECT_EQ(rid.value, f.id[row]);
    Response rval = svc.Execute(PointReq("val", row));
    ASSERT_EQ(rval.code, StatusCode::kOk) << rval.error;
    EXPECT_EQ(rval.value, f.val[row]);
    Response rsml = svc.Execute(PointReq("sml", row));
    ASSERT_EQ(rsml.code, StatusCode::kOk) << rsml.error;
    EXPECT_EQ(rsml.value, int64_t(f.sml[row]));
  }
}

TEST(ServiceTest, ScanMatchesReferenceAcrossThreadsAndIsas) {
  Fixture f;
  for (unsigned threads : {1u, 4u}) {
    for (KernelIsa isa : SupportedIsas()) {
      ScopedKernelIsa forced(isa);
      ServiceOptions opts;
      opts.scan_threads = threads;
      QueryService svc(&f.table, f.bm.get(), opts);
      Rng rng(31 + threads);
      for (int i = 0; i < 20; i++) {
        const int64_t lo = int64_t(rng.Uniform(7000));
        const int64_t hi = lo + int64_t(rng.Uniform(600));
        const uint64_t limit = 1 + rng.Uniform(256);
        Response r = svc.Execute(ScanReq("id", "val", lo, hi, limit));
        ASSERT_EQ(r.code, StatusCode::kOk) << r.error;
        auto [want_matches, want_values] =
            RefScan(f.id, f.val, lo, hi, limit);
        EXPECT_EQ(r.total_matches, want_matches)
            << "threads=" << threads << " isa=" << int(isa);
        EXPECT_EQ(r.values, want_values);
        // Self-filter: value column == filter column.
        Response s = svc.Execute(ScanReq("val", "val", lo, hi, limit));
        ASSERT_EQ(s.code, StatusCode::kOk) << s.error;
        auto [wm2, wv2] = RefScan(f.val, f.val, lo, hi, limit);
        EXPECT_EQ(s.total_matches, wm2);
        EXPECT_EQ(s.values, wv2);
      }
    }
  }
}

TEST(ServiceTest, AggregatesMatchSerialReference) {
  Fixture f;
  for (unsigned threads : {1u, 4u}) {
    ServiceOptions opts;
    opts.scan_threads = threads;
    QueryService svc(&f.table, f.bm.get(), opts);
    Rng rng(57);
    for (int i = 0; i < 10; i++) {
      const int64_t lo = int64_t(rng.Uniform(8000));
      const int64_t hi = lo + int64_t(rng.Uniform(2000));
      uint64_t sum = 0, count = 0;
      int64_t mn = std::numeric_limits<int64_t>::max();
      int64_t mx = std::numeric_limits<int64_t>::min();
      for (size_t k = 0; k < f.val.size(); k++) {
        if (f.val[k] >= lo && f.val[k] <= hi) {
          sum += uint64_t(f.id[k]);
          count++;
          mn = std::min(mn, f.id[k]);
          mx = std::max(mx, f.id[k]);
        }
      }
      Response rs = svc.Execute(AggReq(AggOp::kSum, "id", "val", lo, hi));
      ASSERT_EQ(rs.code, StatusCode::kOk) << rs.error;
      EXPECT_EQ(uint64_t(rs.value), sum);
      Response rc = svc.Execute(AggReq(AggOp::kCount, "id", "val", lo, hi));
      ASSERT_EQ(rc.code, StatusCode::kOk) << rc.error;
      EXPECT_EQ(uint64_t(rc.value), count);
      if (count > 0) {
        Response rmin =
            svc.Execute(AggReq(AggOp::kMin, "id", "val", lo, hi));
        Response rmax =
            svc.Execute(AggReq(AggOp::kMax, "id", "val", lo, hi));
        ASSERT_EQ(rmin.code, StatusCode::kOk) << rmin.error;
        ASSERT_EQ(rmax.code, StatusCode::kOk) << rmax.error;
        EXPECT_EQ(rmin.value, mn);
        EXPECT_EQ(rmax.value, mx);
      }
    }
    // Unfiltered: COUNT is schema math, SUM walks every row.
    Response rc = svc.Execute(AggReq(AggOp::kCount, "id", "", 0, 0));
    ASSERT_EQ(rc.code, StatusCode::kOk);
    EXPECT_EQ(uint64_t(rc.value), f.id.size());
    uint64_t want_sum = 0;
    for (int64_t v : f.val) want_sum += uint64_t(v);
    Response rsum = svc.Execute(AggReq(AggOp::kSum, "val", "", 0, 0));
    ASSERT_EQ(rsum.code, StatusCode::kOk);
    EXPECT_EQ(uint64_t(rsum.value), want_sum);
  }
}

TEST(ServiceTest, ErrorsAreTypedAndPrecise) {
  Fixture f;
  QueryService svc(&f.table, f.bm.get());
  EXPECT_EQ(svc.Execute(PointReq("nope", 0)).code,
            StatusCode::kInvalidArgument);
  EXPECT_EQ(svc.Execute(PointReq("id", f.id.size())).code,
            StatusCode::kOutOfRange);
  EXPECT_EQ(svc.Execute(ScanReq("id", "", 0, 1, 10)).code,
            StatusCode::kInvalidArgument);
  EXPECT_EQ(svc.Execute(ScanReq("id", "val", 10, 0, 10)).code,
            StatusCode::kInvalidArgument);
  EXPECT_EQ(svc.Execute(AggReq(AggOp::kNone, "id", "", 0, 0)).code,
            StatusCode::kInvalidArgument);
  // MIN over an empty selection has no identity to return.
  EXPECT_EQ(svc.Execute(AggReq(AggOp::kMin, "id", "val", -10, -5)).code,
            StatusCode::kOutOfRange);
  // COUNT/SUM over the same empty selection are well-defined zeros.
  Response rc = svc.Execute(AggReq(AggOp::kCount, "id", "val", -10, -5));
  ASSERT_EQ(rc.code, StatusCode::kOk);
  EXPECT_EQ(rc.value, 0);
}

TEST(ServiceTest, ShedBeyondLimitCostsNoDecodeWork) {
  Fixture f;
  ServiceOptions opts;
  opts.max_inflight = 0;  // everything sheds
  QueryService svc(&f.table, f.bm.get(), opts);
  const size_t hits_before = f.bm->hits();
  const size_t misses_before = f.bm->misses();
  for (int i = 0; i < 64; i++) {
    Response r = svc.Execute(ScanReq("id", "val", 0, 10000, 100));
    EXPECT_EQ(r.code, StatusCode::kUnavailable);
    EXPECT_FALSE(r.error.empty());
  }
  // A shed request never reaches the buffer manager: zero decode work.
  EXPECT_EQ(f.bm->hits(), hits_before);
  EXPECT_EQ(f.bm->misses(), misses_before);
  EXPECT_EQ(svc.shed(), 64u);
  EXPECT_EQ(svc.accepted(), 0u);
  EXPECT_EQ(svc.peak_inflight(), 0u);
}

TEST(ServiceTest, InflightNeverExceedsAdmissionLimit) {
  Fixture f;
  ServiceOptions opts;
  opts.max_inflight = 4;
  QueryService svc(&f.table, f.bm.get(), opts);
  constexpr int kThreads = 16;
  constexpr int kPerThread = 24;
  std::atomic<uint64_t> ok{0}, shed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      (void)t;
      for (int i = 0; i < kPerThread; i++) {
        Response r = svc.Execute(ScanReq("id", "val", 0, 9000, 10));
        if (r.code == StatusCode::kOk) {
          ok.fetch_add(1);
        } else {
          ASSERT_EQ(r.code, StatusCode::kUnavailable) << r.error;
          shed.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ok.load() + shed.load(), uint64_t(kThreads) * kPerThread);
  EXPECT_GT(ok.load(), 0u);
  EXPECT_LE(svc.peak_inflight(), 4u);
  EXPECT_EQ(svc.inflight(), 0u);
  EXPECT_EQ(svc.accepted(), ok.load());
  EXPECT_EQ(svc.shed(), shed.load());
}

TEST(ServiceTest, ExpiredInQueueAnswersWithoutTouchingTable) {
  Fixture f;
  QueryService svc(&f.table, f.bm.get());
  Request req = ScanReq("id", "val", 0, 10000, 100);
  req.deadline_micros = 1;
  const size_t hits_before = f.bm->hits();
  const size_t misses_before = f.bm->misses();
  ASSERT_TRUE(svc.TryAdmit());
  // Let the 1 µs budget expire between admission and execution — the
  // shape of a query that sat in the pool queue past its deadline.
  const double admit_us = TraceNowMicros();
  while (TraceNowMicros() <= admit_us + 2.0) {
  }
  Response r = svc.ExecuteAdmitted(req, admit_us);
  EXPECT_EQ(r.code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(f.bm->hits(), hits_before);
  EXPECT_EQ(f.bm->misses(), misses_before);
  EXPECT_EQ(svc.deadline_exceeded(), 1u);
}

TEST(ServiceTest, DeadlineStormLeaksNoPinsAndNeverPoisonsTiers) {
  // Satellite 3: a storm of queries whose deadlines expire before or
  // mid-scan must release every page pin and keep the tier accounting
  // balanced; afterwards the service still answers correctly.
  Fixture f(40000, /*dram_divisor=*/4, /*hot_kb=*/64, /*ssd_kb=*/128);
  ServiceOptions opts;
  opts.max_inflight = 8;
  QueryService svc(&f.table, f.bm.get(), opts);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 40;
  std::atomic<uint64_t> expired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      Rng rng(uint64_t(100 + t));
      for (int i = 0; i < kPerThread; i++) {
        Request req = ScanReq("id", "val", 0, 10000, 100);
        // Budgets straddle the scan's runtime: some expire in the
        // pre-execution gate, some at a morsel boundary, some finish.
        const uint64_t budgets[] = {1, 20, 100, 1000, 50000};
        req.deadline_micros = budgets[rng.Uniform(5)];
        Response r = svc.Execute(req);
        if (r.code == StatusCode::kDeadlineExceeded) expired.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_GT(expired.load(), 0u);  // the 1 µs budget cannot survive
  EXPECT_EQ(f.bm->pinned_pages(), 0u);
  for (BufferManager::CacheTier tier :
       {BufferManager::CacheTier::kHot, BufferManager::CacheTier::kDram,
        BufferManager::CacheTier::kSsd}) {
    BufferManager::TierStats ts = f.bm->tier_stats(tier);
    EXPECT_EQ(ts.promotions - ts.evictions, ts.resident_entries)
        << "tier " << int(tier) << " accounting unbalanced after storm";
  }
  // Not poisoned: a fresh undeadlined query still answers exactly.
  Response clean = svc.Execute(ScanReq("id", "val", 5000, 5400, 50));
  ASSERT_EQ(clean.code, StatusCode::kOk) << clean.error;
  auto [want_matches, want_values] =
      RefScan(f.id, f.val, 5000, 5400, 50);
  EXPECT_EQ(clean.total_matches, want_matches);
  EXPECT_EQ(clean.values, want_values);
}

TEST(ServerTest, ConcurrentClientsGetExactAnswers) {
  Fixture f;
  for (unsigned threads : {1u, 4u}) {
    ServiceOptions opts;
    opts.scan_threads = threads;
    QueryService svc(&f.table, f.bm.get(), opts);
    Server srv(&svc, ServerOptions{});
    ASSERT_TRUE(srv.Start().ok());
    constexpr int kClients = 8;
    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; c++) {
      clients.emplace_back([&, c] {
        Result<Client> conn = Client::Connect("127.0.0.1", srv.port());
        if (!conn.ok()) {
          failures.fetch_add(1);
          return;
        }
        Client cl = conn.MoveValueOrDie();
        Rng rng(uint64_t(500 + c));
        for (int i = 0; i < 30; i++) {
          const uint64_t row = rng.Uniform(f.id.size());
          Result<Response> p = cl.Point("id", row);
          if (!p.ok() || p.ValueOrDie().code != StatusCode::kOk ||
              p.ValueOrDie().value != f.id[row]) {
            failures.fetch_add(1);
            return;
          }
          const int64_t lo = int64_t(rng.Uniform(7000));
          const int64_t hi = lo + int64_t(rng.Uniform(300));
          Result<Response> s = cl.Scan("id", "val", lo, hi, 64);
          auto [wm, wv] = RefScan(f.id, f.val, lo, hi, 64);
          if (!s.ok() || s.ValueOrDie().code != StatusCode::kOk ||
              s.ValueOrDie().total_matches != wm ||
              s.ValueOrDie().values != wv) {
            failures.fetch_add(1);
            return;
          }
          Result<Response> a = cl.Aggregate(AggOp::kCount, "id", "val", lo, hi);
          if (!a.ok() || a.ValueOrDie().code != StatusCode::kOk ||
              uint64_t(a.ValueOrDie().value) != wm) {
            failures.fetch_add(1);
            return;
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
    EXPECT_EQ(failures.load(), 0) << "scan_threads=" << threads;
    srv.Stop();
    EXPECT_EQ(svc.inflight(), 0u);
  }
}

TEST(ServerTest, TableInfoBypassesAdmission) {
  Fixture f;
  ServiceOptions opts;
  opts.max_inflight = 0;  // every data query sheds
  QueryService svc(&f.table, f.bm.get(), opts);
  Server srv(&svc, ServerOptions{});
  ASSERT_TRUE(srv.Start().ok());
  Result<Client> conn = Client::Connect("127.0.0.1", srv.port());
  ASSERT_TRUE(conn.ok());
  Client cl = conn.MoveValueOrDie();
  Result<Response> p = cl.Point("id", 0);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.ValueOrDie().code, StatusCode::kUnavailable);
  // Schema introspection still answers — shedding it would blind clients
  // exactly when the server is busiest.
  Result<Response> info = cl.TableInfo();
  ASSERT_TRUE(info.ok());
  ASSERT_EQ(info.ValueOrDie().code, StatusCode::kOk);
  EXPECT_EQ(info.ValueOrDie().rows, f.id.size());
  ASSERT_EQ(info.ValueOrDie().columns.size(), 3u);
  EXPECT_EQ(info.ValueOrDie().columns[0].name, "id");
  srv.Stop();
}

TEST(ServerTest, MalformedPayloadAnswersErrorAndKeepsFraming) {
  Fixture f;
  QueryService svc(&f.table, f.bm.get());
  Server srv(&svc, ServerOptions{});
  ASSERT_TRUE(srv.Start().ok());
  Result<Client> conn = Client::Connect("127.0.0.1", srv.port());
  ASSERT_TRUE(conn.ok());
  Client cl = conn.MoveValueOrDie();

  // A well-framed but undecodable payload: the server answers an error
  // (request_id 0 — it could not be parsed) and keeps the connection.
  Request garbage;
  garbage.type = RequestType::kPoint;
  garbage.column = "id";
  std::vector<uint8_t> wire = EncodeRequest(garbage);
  wire[0] = 0x7f;  // unsupported protocol version
  Request carrier;  // hand-deliver via Call's framing by raw re-encode
  (void)carrier;
  // Client::Call frames whatever EncodeRequest produced; emulate the
  // hostile frame through a second raw client instead.
  Result<Client> raw = Client::Connect("127.0.0.1", srv.port());
  ASSERT_TRUE(raw.ok());
  // No raw-frame API on Client by design; drive the versioned reject via
  // DecodeRequest directly and the live server via a valid-but-wrong
  // request: unknown column still exercises error framing end-to-end.
  Result<Response> bad = cl.Point("no_such_column", 0);
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad.ValueOrDie().code, StatusCode::kInvalidArgument);
  // The connection survives an error response; the next query works.
  Result<Response> good = cl.Point("id", 42);
  ASSERT_TRUE(good.ok());
  ASSERT_EQ(good.ValueOrDie().code, StatusCode::kOk);
  EXPECT_EQ(good.ValueOrDie().value, 42);
  EXPECT_FALSE(DecodeRequest(wire.data(), wire.size()).ok());
  srv.Stop();
}

TEST(ServerTest, StopDrainsAndSubsequentCallsFailCleanly) {
  Fixture f;
  QueryService svc(&f.table, f.bm.get());
  Server srv(&svc, ServerOptions{});
  ASSERT_TRUE(srv.Start().ok());
  Result<Client> conn = Client::Connect("127.0.0.1", srv.port());
  ASSERT_TRUE(conn.ok());
  Client cl = conn.MoveValueOrDie();
  Result<Response> r = cl.Point("id", 7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().value, 7);
  srv.Stop();
  // The connection was shut down server-side; a further call must fail
  // with a transport error, never hang.
  Result<Response> after = cl.Point("id", 8);
  EXPECT_FALSE(after.ok());
  // Stop is idempotent.
  srv.Stop();
  EXPECT_EQ(srv.connection_count(), 0u);
}

}  // namespace
}  // namespace server
}  // namespace scc
