#include "server/service.h"

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "storage/buffer_manager.h"
#include "storage/sim_disk.h"
#include "storage/table.h"
#include "sys/telemetry.h"
#include "kernel_isa_test_util.h"
#include "util/rng.h"

// scc_serve subsystem tests (docs/SERVICE.md): wire protocol round-trips,
// service correctness differentials against library-level reference
// answers across thread counts and forced kernel ISAs, admission-control
// overload behavior, deadline/pin-leak interaction with the tiered
// buffer manager, and end-to-end TCP behavior under concurrent clients
// including malformed frames and graceful shutdown.

namespace scc {
namespace server {
namespace {

// Request builders (request_id is informational; handlers echo it back).
Request PointReq(const std::string& col, uint64_t row) {
  Request r;
  r.type = RequestType::kPoint;
  r.request_id = 1;
  r.column = col;
  r.row = row;
  return r;
}
Request ScanReq(const std::string& col, const std::string& fcol, int64_t lo,
                int64_t hi, uint64_t limit) {
  Request r;
  r.type = RequestType::kScan;
  r.request_id = 2;
  r.column = col;
  r.filter_column = fcol;
  r.lo = lo;
  r.hi = hi;
  r.limit = limit;
  return r;
}
Request AggReq(AggOp op, const std::string& col, const std::string& fcol,
               int64_t lo, int64_t hi) {
  Request r;
  r.type = RequestType::kAggregate;
  r.agg_op = op;
  r.request_id = 3;
  r.column = col;
  r.filter_column = fcol;
  r.lo = lo;
  r.hi = hi;
  return r;
}

/// Serial reference for a scan: values of `value` where fv in [lo, hi],
/// in row order, truncated to `limit`.
template <typename V, typename F>
std::pair<uint64_t, std::vector<int64_t>> RefScan(const std::vector<V>& value,
                                                  const std::vector<F>& filter,
                                                  int64_t lo, int64_t hi,
                                                  uint64_t limit) {
  uint64_t matches = 0;
  std::vector<int64_t> out;
  for (size_t i = 0; i < filter.size(); i++) {
    if (int64_t(filter[i]) >= lo && int64_t(filter[i]) <= hi) {
      matches++;
      if (out.size() < limit) out.push_back(int64_t(value[i]));
    }
  }
  return {matches, out};
}

struct Fixture {
  Table table{4096};
  SimDisk disk{SimDisk::MidRangeRaid()};
  std::unique_ptr<BufferManager> bm;
  std::vector<int64_t> id;   // sequential — closed-form reference
  std::vector<int64_t> val;  // clustered with outliers
  std::vector<int32_t> sml;  // tiny domain, 32-bit type coverage

  explicit Fixture(size_t rows = 40000, size_t dram_divisor = 1,
                   size_t hot_kb = 64, size_t ssd_kb = 0) {
    Rng rng(7);
    id.resize(rows);
    val.resize(rows);
    sml.resize(rows);
    for (size_t i = 0; i < rows; i++) {
      id[i] = int64_t(i);
      val[i] = 5000 + int64_t(rng.Uniform(1000));
      if (rng.Bernoulli(0.01)) val[i] = int64_t(rng.Uniform(1u << 24));
      sml[i] = int32_t(rng.Uniform(16));
    }
    SCC_CHECK(
        table.AddColumn<int64_t>("id", id, ColumnCompression::kAuto).ok(),
        "id");
    SCC_CHECK(
        table.AddColumn<int64_t>("val", val, ColumnCompression::kAuto).ok(),
        "val");
    SCC_CHECK(
        table.AddColumn<int32_t>("sml", sml, ColumnCompression::kAuto).ok(),
        "sml");
    BufferManager::TierConfig tiers;
    tiers.hot_capacity_bytes = hot_kb * 1024;
    tiers.ssd_capacity_bytes = ssd_kb * 1024;
    bm = std::make_unique<BufferManager>(
        &disk, table.ByteSize() / dram_divisor + 1, Layout::kDSM, tiers);
  }
};

/// Spins on `pred` until it holds or `timeout_ms` elapses. The reactor
/// tears connections down asynchronously, so tests observe lifecycle
/// transitions by polling, never by sleeping a fixed amount.
bool PollUntil(const std::function<bool()>& pred, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

/// Live OS threads in this process (entries under /proc/self/task).
size_t OsThreadCount() {
  DIR* d = ::opendir("/proc/self/task");
  if (d == nullptr) return 0;
  size_t n = 0;
  while (dirent* e = ::readdir(d)) {
    if (e->d_name[0] != '.') n++;
  }
  ::closedir(d);
  return n;
}

/// Blocking TCP connect for tests that drive the wire protocol by hand.
/// A nonzero `rcvbuf_bytes` shrinks SO_RCVBUF before connecting (must be
/// set pre-connect to affect the advertised window) — the slow-reader
/// tests use it to make the server's responses back up.
int RawConnect(uint16_t port, int rcvbuf_bytes = 0) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (rcvbuf_bytes > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                 sizeof(rcvbuf_bytes));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool SendAll(int fd, const uint8_t* p, size_t n) {
  while (n > 0) {
    ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w > 0) {
      p += w;
      n -= size_t(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool RecvExact(int fd, uint8_t* p, size_t n) {
  while (n > 0) {
    ssize_t r = ::recv(fd, p, n, 0);
    if (r > 0) {
      p += r;
      n -= size_t(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

/// Reads one length-prefixed response frame off a raw socket.
Result<Response> RecvResponse(int fd) {
  uint8_t header[4];
  if (!RecvExact(fd, header, sizeof(header))) {
    return Status::IOError("connection lost reading frame header");
  }
  uint32_t n = 0;
  for (int i = 0; i < 4; i++) n |= uint32_t(header[i]) << (8 * i);
  if (n == 0 || n > kMaxFrameBytes) {
    return Status::InvalidArgument("bad frame length");
  }
  std::vector<uint8_t> body(n);
  if (!RecvExact(fd, body.data(), n)) {
    return Status::IOError("connection lost mid-frame");
  }
  return DecodeResponse(body.data(), body.size());
}

/// Hand-encodes a protocol v1 point-lookup frame: no tenant_id field —
/// exactly the bytes a pre-quota client puts on the wire.
std::vector<uint8_t> EncodeV1PointFrame(uint64_t request_id,
                                        const std::string& column,
                                        uint64_t row) {
  std::vector<uint8_t> payload;
  AppendU8(&payload, 1);  // version 1
  AppendU8(&payload, uint8_t(RequestType::kPoint));
  AppendU8(&payload, uint8_t(AggOp::kNone));
  AppendU8(&payload, 0);  // flags
  AppendU64(&payload, request_id);
  AppendU64(&payload, 0);  // deadline_micros
  AppendString(&payload, column);
  AppendU64(&payload, row);
  return FrameMessage(payload);
}

TEST(ProtocolTest, RequestRoundTripsEveryType) {
  for (const Request& req :
       {PointReq("id", 123), ScanReq("val", "id", -5, 999, 64),
        AggReq(AggOp::kSum, "val", "id", 0, 100)}) {
    std::vector<uint8_t> wire = EncodeRequest(req);
    Result<Request> back = DecodeRequest(wire.data(), wire.size());
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    const Request& r = back.ValueOrDie();
    EXPECT_EQ(int(r.type), int(req.type));
    EXPECT_EQ(int(r.agg_op), int(req.agg_op));
    EXPECT_EQ(r.request_id, req.request_id);
    EXPECT_EQ(r.column, req.column);
    EXPECT_EQ(r.row, req.row);
    EXPECT_EQ(r.filter_column, req.filter_column);
    EXPECT_EQ(r.lo, req.lo);
    EXPECT_EQ(r.hi, req.hi);
    EXPECT_EQ(r.limit, req.limit);
  }
}

TEST(ProtocolTest, ResponseRoundTripsPayloadAndError) {
  Response ok;
  ok.request_id = 9;
  ok.type = RequestType::kScan;
  ok.total_matches = 1000;
  ok.values = {1, -2, 3, std::numeric_limits<int64_t>::min()};
  std::vector<uint8_t> wire = EncodeResponse(ok);
  Result<Response> back = DecodeResponse(wire.data(), wire.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.ValueOrDie().total_matches, 1000u);
  EXPECT_EQ(back.ValueOrDie().values, ok.values);

  Response err;
  err.request_id = 10;
  err.type = RequestType::kPoint;
  err.code = StatusCode::kDeadlineExceeded;
  err.error = "budget spent";
  wire = EncodeResponse(err);
  back = DecodeResponse(wire.data(), wire.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.ValueOrDie().code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(back.ValueOrDie().error, "budget spent");
}

TEST(ProtocolTest, DecodersRejectTruncatedAndHostileFrames) {
  Request req;
  req.type = RequestType::kScan;
  req.column = "id";
  req.filter_column = "id";
  std::vector<uint8_t> wire = EncodeRequest(req);
  for (size_t cut = 0; cut < wire.size(); cut++) {
    Result<Request> r = DecodeRequest(wire.data(), cut);
    EXPECT_FALSE(r.ok()) << "cut at " << cut;
  }
  // Scan response whose count field promises more values than the frame
  // holds must fail cleanly, not over-read.
  Response resp;
  resp.type = RequestType::kScan;
  resp.values = {1, 2, 3};
  std::vector<uint8_t> w = EncodeResponse(resp);
  // count field: after request_id(8) + code + type + reserved(2) +
  // total_matches(8).
  w[20] = 0xff;
  Result<Response> r = DecodeResponse(w.data(), w.size());
  EXPECT_FALSE(r.ok());
}

TEST(ServiceTest, PointMatchesSourceAcrossTypes) {
  Fixture f;
  QueryService svc(&f.table, f.bm.get());
  Rng rng(99);
  for (int i = 0; i < 200; i++) {
    const uint64_t row = rng.Uniform(f.id.size());
    Response rid = svc.Execute(PointReq("id", row));
    ASSERT_EQ(rid.code, StatusCode::kOk) << rid.error;
    EXPECT_EQ(rid.value, f.id[row]);
    Response rval = svc.Execute(PointReq("val", row));
    ASSERT_EQ(rval.code, StatusCode::kOk) << rval.error;
    EXPECT_EQ(rval.value, f.val[row]);
    Response rsml = svc.Execute(PointReq("sml", row));
    ASSERT_EQ(rsml.code, StatusCode::kOk) << rsml.error;
    EXPECT_EQ(rsml.value, int64_t(f.sml[row]));
  }
}

TEST(ServiceTest, ScanMatchesReferenceAcrossThreadsAndIsas) {
  Fixture f;
  for (unsigned threads : {1u, 4u}) {
    for (KernelIsa isa : SupportedIsas()) {
      ScopedKernelIsa forced(isa);
      ServiceOptions opts;
      opts.scan_threads = threads;
      QueryService svc(&f.table, f.bm.get(), opts);
      Rng rng(31 + threads);
      for (int i = 0; i < 20; i++) {
        const int64_t lo = int64_t(rng.Uniform(7000));
        const int64_t hi = lo + int64_t(rng.Uniform(600));
        const uint64_t limit = 1 + rng.Uniform(256);
        Response r = svc.Execute(ScanReq("id", "val", lo, hi, limit));
        ASSERT_EQ(r.code, StatusCode::kOk) << r.error;
        auto [want_matches, want_values] =
            RefScan(f.id, f.val, lo, hi, limit);
        EXPECT_EQ(r.total_matches, want_matches)
            << "threads=" << threads << " isa=" << int(isa);
        EXPECT_EQ(r.values, want_values);
        // Self-filter: value column == filter column.
        Response s = svc.Execute(ScanReq("val", "val", lo, hi, limit));
        ASSERT_EQ(s.code, StatusCode::kOk) << s.error;
        auto [wm2, wv2] = RefScan(f.val, f.val, lo, hi, limit);
        EXPECT_EQ(s.total_matches, wm2);
        EXPECT_EQ(s.values, wv2);
      }
    }
  }
}

TEST(ServiceTest, AggregatesMatchSerialReference) {
  Fixture f;
  for (unsigned threads : {1u, 4u}) {
    ServiceOptions opts;
    opts.scan_threads = threads;
    QueryService svc(&f.table, f.bm.get(), opts);
    Rng rng(57);
    for (int i = 0; i < 10; i++) {
      const int64_t lo = int64_t(rng.Uniform(8000));
      const int64_t hi = lo + int64_t(rng.Uniform(2000));
      uint64_t sum = 0, count = 0;
      int64_t mn = std::numeric_limits<int64_t>::max();
      int64_t mx = std::numeric_limits<int64_t>::min();
      for (size_t k = 0; k < f.val.size(); k++) {
        if (f.val[k] >= lo && f.val[k] <= hi) {
          sum += uint64_t(f.id[k]);
          count++;
          mn = std::min(mn, f.id[k]);
          mx = std::max(mx, f.id[k]);
        }
      }
      Response rs = svc.Execute(AggReq(AggOp::kSum, "id", "val", lo, hi));
      ASSERT_EQ(rs.code, StatusCode::kOk) << rs.error;
      EXPECT_EQ(uint64_t(rs.value), sum);
      Response rc = svc.Execute(AggReq(AggOp::kCount, "id", "val", lo, hi));
      ASSERT_EQ(rc.code, StatusCode::kOk) << rc.error;
      EXPECT_EQ(uint64_t(rc.value), count);
      if (count > 0) {
        Response rmin =
            svc.Execute(AggReq(AggOp::kMin, "id", "val", lo, hi));
        Response rmax =
            svc.Execute(AggReq(AggOp::kMax, "id", "val", lo, hi));
        ASSERT_EQ(rmin.code, StatusCode::kOk) << rmin.error;
        ASSERT_EQ(rmax.code, StatusCode::kOk) << rmax.error;
        EXPECT_EQ(rmin.value, mn);
        EXPECT_EQ(rmax.value, mx);
      }
    }
    // Unfiltered: COUNT is schema math, SUM walks every row.
    Response rc = svc.Execute(AggReq(AggOp::kCount, "id", "", 0, 0));
    ASSERT_EQ(rc.code, StatusCode::kOk);
    EXPECT_EQ(uint64_t(rc.value), f.id.size());
    uint64_t want_sum = 0;
    for (int64_t v : f.val) want_sum += uint64_t(v);
    Response rsum = svc.Execute(AggReq(AggOp::kSum, "val", "", 0, 0));
    ASSERT_EQ(rsum.code, StatusCode::kOk);
    EXPECT_EQ(uint64_t(rsum.value), want_sum);
  }
}

TEST(ServiceTest, ErrorsAreTypedAndPrecise) {
  Fixture f;
  QueryService svc(&f.table, f.bm.get());
  EXPECT_EQ(svc.Execute(PointReq("nope", 0)).code,
            StatusCode::kInvalidArgument);
  EXPECT_EQ(svc.Execute(PointReq("id", f.id.size())).code,
            StatusCode::kOutOfRange);
  EXPECT_EQ(svc.Execute(ScanReq("id", "", 0, 1, 10)).code,
            StatusCode::kInvalidArgument);
  EXPECT_EQ(svc.Execute(ScanReq("id", "val", 10, 0, 10)).code,
            StatusCode::kInvalidArgument);
  EXPECT_EQ(svc.Execute(AggReq(AggOp::kNone, "id", "", 0, 0)).code,
            StatusCode::kInvalidArgument);
  // MIN over an empty selection has no identity to return.
  EXPECT_EQ(svc.Execute(AggReq(AggOp::kMin, "id", "val", -10, -5)).code,
            StatusCode::kOutOfRange);
  // COUNT/SUM over the same empty selection are well-defined zeros.
  Response rc = svc.Execute(AggReq(AggOp::kCount, "id", "val", -10, -5));
  ASSERT_EQ(rc.code, StatusCode::kOk);
  EXPECT_EQ(rc.value, 0);
}

TEST(ServiceTest, ShedBeyondLimitCostsNoDecodeWork) {
  Fixture f;
  ServiceOptions opts;
  opts.max_inflight = 0;  // everything sheds
  QueryService svc(&f.table, f.bm.get(), opts);
  const size_t hits_before = f.bm->hits();
  const size_t misses_before = f.bm->misses();
  for (int i = 0; i < 64; i++) {
    Response r = svc.Execute(ScanReq("id", "val", 0, 10000, 100));
    EXPECT_EQ(r.code, StatusCode::kUnavailable);
    EXPECT_FALSE(r.error.empty());
  }
  // A shed request never reaches the buffer manager: zero decode work.
  EXPECT_EQ(f.bm->hits(), hits_before);
  EXPECT_EQ(f.bm->misses(), misses_before);
  EXPECT_EQ(svc.shed(), 64u);
  EXPECT_EQ(svc.accepted(), 0u);
  EXPECT_EQ(svc.peak_inflight(), 0u);
}

TEST(ServiceTest, InflightNeverExceedsAdmissionLimit) {
  Fixture f;
  ServiceOptions opts;
  opts.max_inflight = 4;
  QueryService svc(&f.table, f.bm.get(), opts);
  constexpr int kThreads = 16;
  constexpr int kPerThread = 24;
  std::atomic<uint64_t> ok{0}, shed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      (void)t;
      for (int i = 0; i < kPerThread; i++) {
        Response r = svc.Execute(ScanReq("id", "val", 0, 9000, 10));
        if (r.code == StatusCode::kOk) {
          ok.fetch_add(1);
        } else {
          ASSERT_EQ(r.code, StatusCode::kUnavailable) << r.error;
          shed.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ok.load() + shed.load(), uint64_t(kThreads) * kPerThread);
  EXPECT_GT(ok.load(), 0u);
  EXPECT_LE(svc.peak_inflight(), 4u);
  EXPECT_EQ(svc.inflight(), 0u);
  EXPECT_EQ(svc.accepted(), ok.load());
  EXPECT_EQ(svc.shed(), shed.load());
}

TEST(ServiceTest, ExpiredInQueueAnswersWithoutTouchingTable) {
  Fixture f;
  QueryService svc(&f.table, f.bm.get());
  Request req = ScanReq("id", "val", 0, 10000, 100);
  req.deadline_micros = 1;
  const size_t hits_before = f.bm->hits();
  const size_t misses_before = f.bm->misses();
  ASSERT_TRUE(svc.TryAdmit());
  // Let the 1 µs budget expire between admission and execution — the
  // shape of a query that sat in the pool queue past its deadline.
  const double admit_us = TraceNowMicros();
  while (TraceNowMicros() <= admit_us + 2.0) {
  }
  Response r = svc.ExecuteAdmitted(req, admit_us);
  EXPECT_EQ(r.code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(f.bm->hits(), hits_before);
  EXPECT_EQ(f.bm->misses(), misses_before);
  EXPECT_EQ(svc.deadline_exceeded(), 1u);
}

TEST(ServiceTest, DeadlineStormLeaksNoPinsAndNeverPoisonsTiers) {
  // Satellite 3: a storm of queries whose deadlines expire before or
  // mid-scan must release every page pin and keep the tier accounting
  // balanced; afterwards the service still answers correctly.
  Fixture f(40000, /*dram_divisor=*/4, /*hot_kb=*/64, /*ssd_kb=*/128);
  ServiceOptions opts;
  opts.max_inflight = 8;
  QueryService svc(&f.table, f.bm.get(), opts);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 40;
  std::atomic<uint64_t> expired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      Rng rng(uint64_t(100 + t));
      for (int i = 0; i < kPerThread; i++) {
        Request req = ScanReq("id", "val", 0, 10000, 100);
        // Budgets straddle the scan's runtime: some expire in the
        // pre-execution gate, some at a morsel boundary, some finish.
        const uint64_t budgets[] = {1, 20, 100, 1000, 50000};
        req.deadline_micros = budgets[rng.Uniform(5)];
        Response r = svc.Execute(req);
        if (r.code == StatusCode::kDeadlineExceeded) expired.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_GT(expired.load(), 0u);  // the 1 µs budget cannot survive
  EXPECT_EQ(f.bm->pinned_pages(), 0u);
  for (BufferManager::CacheTier tier :
       {BufferManager::CacheTier::kHot, BufferManager::CacheTier::kDram,
        BufferManager::CacheTier::kSsd}) {
    BufferManager::TierStats ts = f.bm->tier_stats(tier);
    EXPECT_EQ(ts.promotions - ts.evictions, ts.resident_entries)
        << "tier " << int(tier) << " accounting unbalanced after storm";
  }
  // Not poisoned: a fresh undeadlined query still answers exactly.
  Response clean = svc.Execute(ScanReq("id", "val", 5000, 5400, 50));
  ASSERT_EQ(clean.code, StatusCode::kOk) << clean.error;
  auto [want_matches, want_values] =
      RefScan(f.id, f.val, 5000, 5400, 50);
  EXPECT_EQ(clean.total_matches, want_matches);
  EXPECT_EQ(clean.values, want_values);
}

TEST(ServerTest, ConcurrentClientsGetExactAnswers) {
  Fixture f;
  for (unsigned threads : {1u, 4u}) {
    ServiceOptions opts;
    opts.scan_threads = threads;
    QueryService svc(&f.table, f.bm.get(), opts);
    Server srv(&svc, ServerOptions{});
    ASSERT_TRUE(srv.Start().ok());
    constexpr int kClients = 8;
    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; c++) {
      clients.emplace_back([&, c] {
        Result<Client> conn = Client::Connect("127.0.0.1", srv.port());
        if (!conn.ok()) {
          failures.fetch_add(1);
          return;
        }
        Client cl = conn.MoveValueOrDie();
        Rng rng(uint64_t(500 + c));
        for (int i = 0; i < 30; i++) {
          const uint64_t row = rng.Uniform(f.id.size());
          Result<Response> p = cl.Point("id", row);
          if (!p.ok() || p.ValueOrDie().code != StatusCode::kOk ||
              p.ValueOrDie().value != f.id[row]) {
            failures.fetch_add(1);
            return;
          }
          const int64_t lo = int64_t(rng.Uniform(7000));
          const int64_t hi = lo + int64_t(rng.Uniform(300));
          Result<Response> s = cl.Scan("id", "val", lo, hi, 64);
          auto [wm, wv] = RefScan(f.id, f.val, lo, hi, 64);
          if (!s.ok() || s.ValueOrDie().code != StatusCode::kOk ||
              s.ValueOrDie().total_matches != wm ||
              s.ValueOrDie().values != wv) {
            failures.fetch_add(1);
            return;
          }
          Result<Response> a = cl.Aggregate(AggOp::kCount, "id", "val", lo, hi);
          if (!a.ok() || a.ValueOrDie().code != StatusCode::kOk ||
              uint64_t(a.ValueOrDie().value) != wm) {
            failures.fetch_add(1);
            return;
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
    EXPECT_EQ(failures.load(), 0) << "scan_threads=" << threads;
    srv.Stop();
    EXPECT_EQ(svc.inflight(), 0u);
  }
}

TEST(ServerTest, TableInfoBypassesAdmission) {
  Fixture f;
  ServiceOptions opts;
  opts.max_inflight = 0;  // every data query sheds
  QueryService svc(&f.table, f.bm.get(), opts);
  Server srv(&svc, ServerOptions{});
  ASSERT_TRUE(srv.Start().ok());
  Result<Client> conn = Client::Connect("127.0.0.1", srv.port());
  ASSERT_TRUE(conn.ok());
  Client cl = conn.MoveValueOrDie();
  Result<Response> p = cl.Point("id", 0);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.ValueOrDie().code, StatusCode::kUnavailable);
  // Schema introspection still answers — shedding it would blind clients
  // exactly when the server is busiest.
  Result<Response> info = cl.TableInfo();
  ASSERT_TRUE(info.ok());
  ASSERT_EQ(info.ValueOrDie().code, StatusCode::kOk);
  EXPECT_EQ(info.ValueOrDie().rows, f.id.size());
  ASSERT_EQ(info.ValueOrDie().columns.size(), 3u);
  EXPECT_EQ(info.ValueOrDie().columns[0].name, "id");
  srv.Stop();
}

TEST(ServerTest, MalformedPayloadAnswersErrorAndKeepsFraming) {
  Fixture f;
  QueryService svc(&f.table, f.bm.get());
  Server srv(&svc, ServerOptions{});
  ASSERT_TRUE(srv.Start().ok());
  Result<Client> conn = Client::Connect("127.0.0.1", srv.port());
  ASSERT_TRUE(conn.ok());
  Client cl = conn.MoveValueOrDie();

  // A well-framed but undecodable payload: the server answers an error
  // (request_id 0 — it could not be parsed) and keeps the connection.
  Request garbage;
  garbage.type = RequestType::kPoint;
  garbage.column = "id";
  std::vector<uint8_t> wire = EncodeRequest(garbage);
  wire[0] = 0x7f;  // unsupported protocol version
  Request carrier;  // hand-deliver via Call's framing by raw re-encode
  (void)carrier;
  // Client::Call frames whatever EncodeRequest produced; emulate the
  // hostile frame through a second raw client instead.
  Result<Client> raw = Client::Connect("127.0.0.1", srv.port());
  ASSERT_TRUE(raw.ok());
  // No raw-frame API on Client by design; drive the versioned reject via
  // DecodeRequest directly and the live server via a valid-but-wrong
  // request: unknown column still exercises error framing end-to-end.
  Result<Response> bad = cl.Point("no_such_column", 0);
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad.ValueOrDie().code, StatusCode::kInvalidArgument);
  // The connection survives an error response; the next query works.
  Result<Response> good = cl.Point("id", 42);
  ASSERT_TRUE(good.ok());
  ASSERT_EQ(good.ValueOrDie().code, StatusCode::kOk);
  EXPECT_EQ(good.ValueOrDie().value, 42);
  EXPECT_FALSE(DecodeRequest(wire.data(), wire.size()).ok());
  srv.Stop();
}

TEST(ServerTest, StopDrainsAndSubsequentCallsFailCleanly) {
  Fixture f;
  QueryService svc(&f.table, f.bm.get());
  Server srv(&svc, ServerOptions{});
  ASSERT_TRUE(srv.Start().ok());
  Result<Client> conn = Client::Connect("127.0.0.1", srv.port());
  ASSERT_TRUE(conn.ok());
  Client cl = conn.MoveValueOrDie();
  Result<Response> r = cl.Point("id", 7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().value, 7);
  srv.Stop();
  // The connection was shut down server-side; a further call must fail
  // with a transport error, never hang.
  Result<Response> after = cl.Point("id", 8);
  EXPECT_FALSE(after.ok());
  // Stop is idempotent.
  srv.Stop();
  EXPECT_EQ(srv.connection_count(), 0u);
}

// --- protocol v2 compatibility and framed encoders ----------------------

TEST(ProtocolTest, V1FramesDecodeWithDefaultTenant) {
  // A v1 payload (no tenant field) must decode with tenant_id 0 — the
  // bucket subject only to the global admission cap.
  std::vector<uint8_t> frame = EncodeV1PointFrame(77, "id", 123);
  Result<Request> back = DecodeRequest(frame.data() + 4, frame.size() - 4);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.ValueOrDie().tenant_id, 0u);
  EXPECT_EQ(back.ValueOrDie().request_id, 77u);
  EXPECT_EQ(back.ValueOrDie().row, 123u);

  // And end-to-end: a live reactor serves the v1 frame unchanged.
  Fixture f;
  QueryService svc(&f.table, f.bm.get());
  Server srv(&svc, ServerOptions{});
  ASSERT_TRUE(srv.Start().ok());
  int fd = RawConnect(srv.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendAll(fd, frame.data(), frame.size()));
  Result<Response> resp = RecvResponse(fd);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.ValueOrDie().code, StatusCode::kOk);
  EXPECT_EQ(resp.ValueOrDie().request_id, 77u);
  EXPECT_EQ(resp.ValueOrDie().value, f.id[123]);
  ::close(fd);
  srv.Stop();
}

TEST(ProtocolTest, FramedEncodersMatchLegacyFraming) {
  // The single-allocation framed encoders are wire-identical to
  // FrameMessage over the two-step encoders.
  for (const Request& req :
       {PointReq("id", 9), ScanReq("val", "id", -5, 999, 64),
        AggReq(AggOp::kMax, "val", "id", 0, 100)}) {
    std::vector<uint8_t> framed;
    EncodeRequestFramedInto(req, &framed);
    EXPECT_EQ(framed, FrameMessage(EncodeRequest(req)));
  }
  Response ok;
  ok.request_id = 5;
  ok.type = RequestType::kScan;
  ok.total_matches = 3;
  ok.values = {7, -9, 11};
  Response err;
  err.request_id = 6;
  err.type = RequestType::kPoint;
  err.code = StatusCode::kUnavailable;
  err.error = "shed";
  for (const Response& resp : {ok, err}) {
    EXPECT_EQ(EncodeResponseFramed(resp),
              FrameMessage(EncodeResponse(resp)));
  }
}

// --- per-tenant weighted admission ---------------------------------------

TEST(ServiceTest, TenantQuotaWeightedLimitsAreEnforced) {
  Fixture f;
  ServiceOptions opts;
  opts.max_inflight = 8;
  opts.tenant_quotas = {{1, 3}, {2, 1}};  // shares: 6/8 and 2/8
  QueryService svc(&f.table, f.bm.get(), opts);
  EXPECT_EQ(svc.tenant_limit(1), 6u);
  EXPECT_EQ(svc.tenant_limit(2), 2u);
  EXPECT_EQ(svc.tenant_limit(3), SIZE_MAX);  // unconfigured: global only

  for (int i = 0; i < 6; i++) EXPECT_TRUE(svc.TryAdmit(1)) << i;
  EXPECT_FALSE(svc.TryAdmit(1));  // at quota, global still has room
  EXPECT_EQ(svc.tenant_inflight(1), 6u);
  EXPECT_EQ(svc.tenant_shed(1), 1u);
  EXPECT_TRUE(svc.TryAdmit(2));  // sibling tenant is not starved
  EXPECT_EQ(svc.tenant_inflight(2), 1u);

  // Releasing via execution frees both the tenant and the global slot.
  Request rel = PointReq("id", 0);
  rel.tenant_id = 1;
  for (int i = 0; i < 6; i++) {
    Response r = svc.ExecuteAdmitted(rel, TraceNowMicros());
    EXPECT_EQ(r.code, StatusCode::kOk) << r.error;
  }
  rel.tenant_id = 2;
  svc.ExecuteAdmitted(rel, TraceNowMicros());
  EXPECT_EQ(svc.tenant_inflight(1), 0u);
  EXPECT_EQ(svc.tenant_inflight(2), 0u);
  EXPECT_EQ(svc.inflight(), 0u);
  EXPECT_EQ(svc.tenant_admitted(1), 6u);
  EXPECT_TRUE(svc.TryAdmit(1));  // quota is reusable after release
}

TEST(ServiceTest, TenantAdmissionRollsBackWhenGlobalCapHit) {
  Fixture f;
  ServiceOptions opts;
  opts.max_inflight = 2;
  opts.tenant_quotas = {{1, 1}};  // tenant limit 2 == global cap
  QueryService svc(&f.table, f.bm.get(), opts);
  ASSERT_TRUE(svc.TryAdmit());  // tenant 0 takes a global slot
  ASSERT_TRUE(svc.TryAdmit());  // global now full
  EXPECT_FALSE(svc.TryAdmit(1));
  // The tenant-side reservation must be rolled back, not leaked.
  EXPECT_EQ(svc.tenant_inflight(1), 0u);
  EXPECT_EQ(svc.tenant_shed(1), 1u);
}

TEST(ServiceTest, TenantQuotaStormIsolatesTenants) {
  Fixture f;
  ServiceOptions opts;
  opts.max_inflight = 4;
  opts.tenant_quotas = {{1, 3}, {2, 1}};  // limits 3 and 1
  QueryService svc(&f.table, f.bm.get(), opts);
  constexpr int kThreadsPerTenant = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (uint32_t tenant : {1u, 2u}) {
    for (int t = 0; t < kThreadsPerTenant; t++) {
      threads.emplace_back([&, tenant] {
        for (int i = 0; i < kPerThread; i++) {
          Request req = ScanReq("id", "val", 0, 9000, 10);
          req.tenant_id = tenant;
          svc.Execute(req);
        }
      });
    }
  }
  for (std::thread& t : threads) t.join();
  // Neither tenant ever exceeded its share, both made progress, and the
  // greedy tenant's overflow shed onto itself.
  EXPECT_LE(svc.tenant_peak_inflight(1), 3u);
  EXPECT_LE(svc.tenant_peak_inflight(2), 1u);
  EXPECT_LE(svc.peak_inflight(), 4u);
  EXPECT_GT(svc.tenant_admitted(1), 0u);
  EXPECT_GT(svc.tenant_admitted(2), 0u);
  EXPECT_GT(svc.tenant_shed(2), 0u);  // 4 threads racing into 1 slot
  EXPECT_EQ(svc.tenant_inflight(1), 0u);
  EXPECT_EQ(svc.tenant_inflight(2), 0u);
  EXPECT_EQ(svc.inflight(), 0u);
}

// --- reactor connection lifecycle ----------------------------------------

TEST(ReactorTest, SequentialChurnReapsConnectionsAndThreads) {
  // The bug this PR removes: the old thread-per-connection frontend kept
  // one OS thread per accepted socket alive until Stop. N sequential
  // connect/query/close cycles must leave the process thread count and
  // the connection gauge exactly where they started.
  Fixture f;
  QueryService svc(&f.table, f.bm.get());
  Server srv(&svc, ServerOptions{});
  ASSERT_TRUE(srv.Start().ok());
  {
    // Warm up lazily-started shared infrastructure (pool workers).
    Result<Client> warm = Client::Connect("127.0.0.1", srv.port());
    ASSERT_TRUE(warm.ok());
    ASSERT_TRUE(warm.ValueOrDie().Point("id", 0).ok());
  }
  ASSERT_TRUE(PollUntil([&] { return srv.connection_count() == 0; }));
  const size_t threads_before = OsThreadCount();
  ASSERT_GT(threads_before, 0u);
  for (int i = 0; i < 64; i++) {
    Result<Client> conn = Client::Connect("127.0.0.1", srv.port());
    ASSERT_TRUE(conn.ok()) << "cycle " << i;
    Client cl = conn.MoveValueOrDie();
    Result<Response> r = cl.Point("id", uint64_t(i));
    ASSERT_TRUE(r.ok()) << "cycle " << i;
    EXPECT_EQ(r.ValueOrDie().value, int64_t(i));
  }
  EXPECT_TRUE(PollUntil([&] { return srv.connection_count() == 0; }))
      << srv.connection_count() << " connections never reaped";
  EXPECT_TRUE(PollUntil([&] { return OsThreadCount() <= threads_before; }))
      << "thread count grew from " << threads_before << " to "
      << OsThreadCount() << " across 64 connection cycles";
  srv.Stop();
}

TEST(ReactorTest, ManyIdleConnectionsHoldReactorPoolThreads) {
  // Resident threads scale with the reactor pool, not the socket count.
  Fixture f;
  QueryService svc(&f.table, f.bm.get());
  Server srv(&svc, ServerOptions{});
  ASSERT_TRUE(srv.Start().ok());
  {
    Result<Client> warm = Client::Connect("127.0.0.1", srv.port());
    ASSERT_TRUE(warm.ok());
    ASSERT_TRUE(warm.ValueOrDie().Point("id", 0).ok());
  }
  ASSERT_TRUE(PollUntil([&] { return srv.connection_count() == 0; }));
  const size_t threads_before = OsThreadCount();
  constexpr size_t kConns = 200;
  std::vector<int> fds;
  for (size_t i = 0; i < kConns; i++) {
    int fd = RawConnect(srv.port());
    ASSERT_GE(fd, 0) << "connect " << i;
    fds.push_back(fd);
  }
  ASSERT_TRUE(PollUntil([&] { return srv.connection_count() == kConns; }))
      << "accepted " << srv.connection_count() << " of " << kConns;
  EXPECT_EQ(OsThreadCount(), threads_before)
      << kConns << " idle connections must not grow the thread count";
  // One of the idle crowd still gets served promptly.
  std::vector<uint8_t> frame = EncodeV1PointFrame(1, "id", 42);
  ASSERT_TRUE(SendAll(fds[kConns / 2], frame.data(), frame.size()));
  Result<Response> resp = RecvResponse(fds[kConns / 2]);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.ValueOrDie().value, 42);
  for (int fd : fds) ::close(fd);
  EXPECT_TRUE(PollUntil([&] { return srv.connection_count() == 0; }))
      << srv.connection_count() << " connections never reaped";
  srv.Stop();
}

TEST(ReactorTest, ConcurrentChurnStorm) {
  // Accept, query, and teardown race across reactors and the pool; run
  // under TSan in CI. Half the cycles abandon the connection with a
  // request still in flight.
  Fixture f;
  QueryService svc(&f.table, f.bm.get());
  Server srv(&svc, ServerOptions{});
  ASSERT_TRUE(srv.Start().ok());
  constexpr int kThreads = 8;
  constexpr int kCycles = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      Rng rng(uint64_t(900 + t));
      for (int i = 0; i < kCycles; i++) {
        if (rng.Bernoulli(0.5)) {
          Result<Client> conn = Client::Connect("127.0.0.1", srv.port());
          if (!conn.ok()) {
            failures.fetch_add(1);
            continue;
          }
          Client cl = conn.MoveValueOrDie();
          const uint64_t row = rng.Uniform(f.id.size());
          Result<Response> r = cl.Point("id", row);
          if (!r.ok() || r.ValueOrDie().value != f.id[row]) {
            failures.fetch_add(1);
          }
        } else {
          // Fire-and-abandon: close with the response still brewing.
          Result<PipelinedClient> conn =
              PipelinedClient::Connect("127.0.0.1", srv.port());
          if (!conn.ok()) {
            failures.fetch_add(1);
            continue;
          }
          PipelinedClient cl = conn.MoveValueOrDie();
          Request req = ScanReq("id", "val", 0, 9000, 32);
          req.request_id = 0;  // auto-assign
          if (!cl.Send(req).ok() || !cl.Flush().ok()) {
            failures.fetch_add(1);
            continue;
          }
          cl.Close();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(PollUntil([&] { return srv.connection_count() == 0; }));
  // The storm leaves a healthy server behind.
  Result<Client> conn = Client::Connect("127.0.0.1", srv.port());
  ASSERT_TRUE(conn.ok());
  Result<Response> r = conn.ValueOrDie().Point("id", 7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().value, 7);
  srv.Stop();
  EXPECT_EQ(svc.inflight(), 0u);
}

TEST(ServerTest, ConnectionGaugeTracksOpenSockets) {
  Fixture f;
  QueryService svc(&f.table, f.bm.get());
  Server srv(&svc, ServerOptions{});
  ASSERT_TRUE(srv.Start().ok());
  std::vector<Client> open;
  for (int i = 0; i < 5; i++) {
    Result<Client> conn = Client::Connect("127.0.0.1", srv.port());
    ASSERT_TRUE(conn.ok());
    open.push_back(conn.MoveValueOrDie());
  }
  ASSERT_TRUE(PollUntil([&] { return srv.connection_count() == 5; }))
      << "gauge stuck at " << srv.connection_count();
  open.resize(3);  // close two
  ASSERT_TRUE(PollUntil([&] { return srv.connection_count() == 3; }))
      << "gauge stuck at " << srv.connection_count();
  open.clear();
  ASSERT_TRUE(PollUntil([&] { return srv.connection_count() == 0; }));
  srv.Stop();
}

// --- hostile pipelined clients -------------------------------------------

TEST(ServerTest, InterleavedHalfFramesAcrossTwoRequestsReassemble) {
  // Two requests delivered as four fragments, each send() boundary
  // landing mid-frame: the reassembly buffer must stitch both frames and
  // answer each with its own request_id.
  Fixture f;
  QueryService svc(&f.table, f.bm.get());
  Server srv(&svc, ServerOptions{});
  ASSERT_TRUE(srv.Start().ok());
  int fd = RawConnect(srv.port());
  ASSERT_GE(fd, 0);
  Request a = PointReq("id", 11);
  a.request_id = 101;
  Request b = PointReq("id", 22);
  b.request_id = 202;
  std::vector<uint8_t> wire;
  EncodeRequestFramedInto(a, &wire);
  const size_t a_end = wire.size();
  EncodeRequestFramedInto(b, &wire);
  // Fragment boundaries: mid-header of A, mid-payload of A (spilling
  // into B's header), mid-payload of B, remainder.
  const size_t cuts[] = {2, a_end + 2, wire.size() - 3, wire.size()};
  size_t sent = 0;
  for (size_t cut : cuts) {
    ASSERT_TRUE(SendAll(fd, wire.data() + sent, cut - sent));
    sent = cut;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  std::unordered_map<uint64_t, int64_t> got;
  for (int i = 0; i < 2; i++) {
    Result<Response> resp = RecvResponse(fd);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_EQ(resp.ValueOrDie().code, StatusCode::kOk)
        << resp.ValueOrDie().error;
    got[resp.ValueOrDie().request_id] = resp.ValueOrDie().value;
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[101], 11);
  EXPECT_EQ(got[202], 22);
  ::close(fd);
  srv.Stop();
}

TEST(ServerTest, PipelinedOutOfOrderCompletionsCorrelate) {
  // A pool-queued scan and an inline-answered TableInfo sent in one
  // burst complete out of send order; request_id correlation is the only
  // valid way to match them.
  Fixture f;
  QueryService svc(&f.table, f.bm.get());
  Server srv(&svc, ServerOptions{});
  ASSERT_TRUE(srv.Start().ok());
  Result<PipelinedClient> conn =
      PipelinedClient::Connect("127.0.0.1", srv.port());
  ASSERT_TRUE(conn.ok());
  PipelinedClient cl = conn.MoveValueOrDie();
  Request scan = ScanReq("id", "val", 0, 10000, 64);
  scan.request_id = 0;
  Result<uint64_t> scan_id = cl.Send(scan);
  ASSERT_TRUE(scan_id.ok());
  Request info;
  info.type = RequestType::kTableInfo;
  Result<uint64_t> info_id = cl.Send(info);
  ASSERT_TRUE(info_id.ok());
  ASSERT_NE(scan_id.ValueOrDie(), info_id.ValueOrDie());

  Result<Response> first = cl.Next();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  Result<Response> second = cl.Next();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  // TableInfo bypasses the pool and is flushed while the scan still
  // executes — completion order inverts send order.
  EXPECT_EQ(first.ValueOrDie().request_id, info_id.ValueOrDie());
  EXPECT_EQ(second.ValueOrDie().request_id, scan_id.ValueOrDie());
  EXPECT_EQ(first.ValueOrDie().rows, f.id.size());
  auto [wm, wv] = RefScan(f.id, f.val, 0, 10000, 64);
  EXPECT_EQ(second.ValueOrDie().total_matches, wm);
  EXPECT_EQ(second.ValueOrDie().values, wv);
  EXPECT_EQ(cl.outstanding(), 0u);
  srv.Stop();
}

TEST(ServerTest, PipelinedClientClosesMidDrain) {
  // 100 pipelined requests, 10 responses read, then the client vanishes:
  // the server must retire the remaining 90 without crashing, leaking
  // the connection, or wedging admission.
  Fixture f;
  QueryService svc(&f.table, f.bm.get());
  Server srv(&svc, ServerOptions{});
  ASSERT_TRUE(srv.Start().ok());
  {
    Result<PipelinedClient> conn =
        PipelinedClient::Connect("127.0.0.1", srv.port());
    ASSERT_TRUE(conn.ok());
    PipelinedClient cl = conn.MoveValueOrDie();
    for (int i = 0; i < 100; i++) {
      Request req = ScanReq("id", "val", 0, 9000, 32);
      req.request_id = 0;
      ASSERT_TRUE(cl.Send(req).ok()) << i;
    }
    for (int i = 0; i < 10; i++) {
      Result<Response> r = cl.Next();
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
  }  // destructor closes with 90 responses undrained
  EXPECT_TRUE(PollUntil([&] { return srv.connection_count() == 0; }));
  EXPECT_TRUE(PollUntil([&] { return svc.inflight() == 0; }));
  // Admission slots all came back: a burst the size of the cap admits.
  Result<Client> conn2 = Client::Connect("127.0.0.1", srv.port());
  ASSERT_TRUE(conn2.ok());
  Result<Response> r = conn2.ValueOrDie().Point("id", 5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().code, StatusCode::kOk);
  srv.Stop();
}

TEST(ServerTest, SlowReaderWriteQueueCapDisconnects) {
  // A client that requests fast and never reads must be disconnected
  // once its un-flushed responses exceed the per-connection cap — the
  // server never buffers a slow reader without bound.
  Fixture f;
  QueryService svc(&f.table, f.bm.get());
  ServerOptions opts;
  opts.max_write_queue_bytes = 16 * 1024;
  opts.sndbuf_bytes = 16 * 1024;  // keep backpressure out of the kernel
  Server srv(&svc, opts);
  ASSERT_TRUE(srv.Start().ok());
  const uint64_t overflows_before = srv.write_queue_overflows();
  int fd = RawConnect(srv.port(), /*rcvbuf_bytes=*/4096);
  ASSERT_GE(fd, 0);
  // Each scan response carries up to 8192 values (~64 KB) — a handful
  // overwhelm the 16 KB cap once the socket stops draining.
  std::vector<uint8_t> burst;
  for (int i = 0; i < 64; i++) {
    Request req = ScanReq("id", "val", 0, 10000, 8192);
    req.request_id = uint64_t(i + 1);
    EncodeRequestFramedInto(req, &burst);
  }
  ASSERT_TRUE(SendAll(fd, burst.data(), burst.size()));
  EXPECT_TRUE(PollUntil(
      [&] { return srv.write_queue_overflows() > overflows_before; }))
      << "cap never tripped: " << srv.write_queue_overflows();
  EXPECT_TRUE(PollUntil([&] { return srv.connection_count() == 0; }))
      << "slow reader never disconnected";
  ::close(fd);
  // Well-behaved clients are unaffected.
  Result<Client> conn = Client::Connect("127.0.0.1", srv.port());
  ASSERT_TRUE(conn.ok());
  Result<Response> r = conn.ValueOrDie().Point("id", 3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().value, 3);
  srv.Stop();
}

TEST(ServerTest, WriteErrorTearsDownConnectionAndCounts) {
  // Satellite 3: response-write failures must be counted and tear the
  // connection down — never silently dropped. An RST while the server
  // still holds queued response bytes forces the failing sendmsg.
  Fixture f;
  QueryService svc(&f.table, f.bm.get());
  ServerOptions opts;
  opts.max_write_queue_bytes = 8 * 1024 * 1024;  // never trip the cap
  opts.sndbuf_bytes = 16 * 1024;  // tail parks in the write queue
  Server srv(&svc, opts);
  ASSERT_TRUE(srv.Start().ok());
  const uint64_t errors_before = srv.write_errors();
  bool saw_error = false;
  for (int attempt = 0; attempt < 10 && !saw_error; attempt++) {
    int fd = RawConnect(srv.port(), /*rcvbuf_bytes=*/4096);
    ASSERT_GE(fd, 0);
    // ~2 MB of responses against a 4 KB receive window and a 16 KB
    // server send buffer: the kernel can absorb only a sliver, so a
    // queued tail is guaranteed to remain server-side.
    std::vector<uint8_t> burst;
    for (int i = 0; i < 32; i++) {
      Request req = ScanReq("id", "val", 0, 10000, 8192);
      req.request_id = uint64_t(i + 1);
      EncodeRequestFramedInto(req, &burst);
    }
    if (!SendAll(fd, burst.data(), burst.size())) {
      ::close(fd);
      continue;
    }
    // Wait for every scan to finish (responses queued, flush attempted,
    // tail parked behind the closed window), read one byte so there is
    // unread data, then abort: close() with unread data sends RST, and
    // the server's next flush of the queued tail fails.
    PollUntil([&] { return svc.inflight() == 0; });
    uint8_t one;
    (void)::recv(fd, &one, 1, 0);
    linger lg{1, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    ::close(fd);
    saw_error = PollUntil(
        [&] { return srv.write_errors() > errors_before; }, 1000);
  }
  EXPECT_TRUE(saw_error) << "no write error surfaced in 10 RST attempts";
  EXPECT_TRUE(PollUntil([&] { return srv.connection_count() == 0; }));
  // The failure is isolated: the server still serves new connections.
  Result<Client> conn = Client::Connect("127.0.0.1", srv.port());
  ASSERT_TRUE(conn.ok());
  Result<Response> r = conn.ValueOrDie().Point("id", 9);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().value, 9);
  srv.Stop();
  EXPECT_EQ(svc.inflight(), 0u);
}

TEST(ServerTest, PipelinedDifferentialAgainstClosedLoop) {
  // The pipelined path must return byte-identical answers to the
  // one-outstanding-call path for an identical request stream.
  Fixture f;
  QueryService svc(&f.table, f.bm.get());
  Server srv(&svc, ServerOptions{});
  ASSERT_TRUE(srv.Start().ok());
  Result<Client> c1 = Client::Connect("127.0.0.1", srv.port());
  Result<PipelinedClient> c2 =
      PipelinedClient::Connect("127.0.0.1", srv.port());
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  Client closed = c1.MoveValueOrDie();
  PipelinedClient piped = c2.MoveValueOrDie();
  Rng rng(4242);
  constexpr int kOps = 64;
  std::vector<Request> stream;
  for (int i = 0; i < kOps; i++) {
    if (rng.Bernoulli(0.5)) {
      stream.push_back(PointReq("id", rng.Uniform(f.id.size())));
    } else {
      const int64_t lo = int64_t(rng.Uniform(7000));
      stream.push_back(
          ScanReq("id", "val", lo, lo + int64_t(rng.Uniform(400)), 32));
    }
    stream.back().request_id = uint64_t(i + 1);
  }
  std::unordered_map<uint64_t, Response> closed_got, piped_got;
  for (const Request& req : stream) {
    Result<Response> r = closed.Call(req);
    ASSERT_TRUE(r.ok());
    closed_got[req.request_id] = r.MoveValueOrDie();
  }
  for (const Request& req : stream) ASSERT_TRUE(piped.Send(req).ok());
  for (int i = 0; i < kOps; i++) {
    Result<Response> r = piped.Next();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    piped_got[r.ValueOrDie().request_id] = r.MoveValueOrDie();
  }
  ASSERT_EQ(closed_got.size(), piped_got.size());
  for (const auto& [id, want] : closed_got) {
    auto it = piped_got.find(id);
    ASSERT_NE(it, piped_got.end()) << "request " << id << " unanswered";
    EXPECT_EQ(EncodeResponse(it->second), EncodeResponse(want))
        << "request " << id << " diverged";
  }
  srv.Stop();
}

}  // namespace
}  // namespace server
}  // namespace scc
