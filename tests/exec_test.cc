#include "exec/parallel_scan.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/exec_metrics.h"
#include "exec/thread_pool.h"
#include "storage/buffer_manager.h"
#include "storage/sim_disk.h"
#include "storage/table.h"
#include "sys/telemetry.h"
#include "util/rng.h"

// Execution subsystem tests: the shared work-stealing pool (ParallelFor
// coverage, TaskGroup joins, nested waits) and the morsel-driven parallel
// scan in both emit modes, cross-checked against the source data.

namespace scc {
namespace {

Table MakeTable(size_t rows, size_t chunk_values = 8192) {
  Table t(chunk_values);
  Rng rng(42);
  std::vector<int64_t> a(rows), b(rows);
  std::vector<int32_t> c(rows);
  for (size_t i = 0; i < rows; i++) {
    a[i] = int64_t(i);                         // monotone -> PFOR-DELTA
    b[i] = 5000 + int64_t(rng.Uniform(1000));  // clustered -> PFOR
    c[i] = int32_t(rng.Uniform(4));            // tiny domain -> PDICT/PFOR
  }
  SCC_CHECK(t.AddColumn<int64_t>("a", a, ColumnCompression::kAuto).ok(), "a");
  SCC_CHECK(t.AddColumn<int64_t>("b", b, ColumnCompression::kAuto).ok(), "b");
  SCC_CHECK(t.AddColumn<int32_t>("c", c, ColumnCompression::kAuto).ok(), "c");
  return t;
}

TEST(ThreadPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  ThreadPool::Instance().ParallelFor(kN, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; i++) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForEdgeSizes) {
  std::atomic<size_t> ran{0};
  ThreadPool::Instance().ParallelFor(0, [&](size_t) { ran++; });
  EXPECT_EQ(ran.load(), 0u);
  ThreadPool::Instance().ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ran++;
  });
  EXPECT_EQ(ran.load(), 1u);
}

TEST(ThreadPoolTest, ParallelForHonorsWorkerCap) {
  // With helpers capped to 1, at most two threads (caller + one worker)
  // may ever be inside the body at once.
  std::atomic<int> inside{0};
  std::atomic<int> peak{0};
  ThreadPool::Instance().ParallelFor(
      256,
      [&](size_t) {
        int now = inside.fetch_add(1) + 1;
        int prev = peak.load();
        while (now > prev && !peak.compare_exchange_weak(prev, now)) {
        }
        inside.fetch_sub(1);
      },
      /*max_workers=*/1);
  EXPECT_LE(peak.load(), 2);
}

TEST(ThreadPoolTest, ParallelForZeroCapRunsSerialOnCaller) {
  // max_workers == 0 is a real cap (no pool-side helpers), distinct from
  // the kNoWorkerCap default: the caller runs every index itself, in
  // order, so total-thread-count knobs can map threads==1 to a cap of 0.
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<size_t> order;
  ThreadPool::Instance().ParallelFor(
      64,
      [&](size_t i) {
        ASSERT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
      },
      /*max_workers=*/0);
  ASSERT_EQ(order.size(), 64u);
  for (size_t i = 0; i < order.size(); i++) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, TaskGroupWaitsForAllTasks) {
  std::atomic<size_t> done{0};
  {
    TaskGroup group(ThreadPool::Instance());
    for (int i = 0; i < 200; i++) {
      group.Run([&] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    group.Wait();
    EXPECT_EQ(done.load(), 200u);
  }
  // Destructor re-Wait() on an already-drained group must be a no-op.
  EXPECT_EQ(done.load(), 200u);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // ParallelFor from inside pool tasks: the waiting owner helps execute
  // queued work, so nesting can never starve the pool.
  std::atomic<uint64_t> total{0};
  ThreadPool::Instance().ParallelFor(8, [&](size_t) {
    ThreadPool::Instance().ParallelFor(64, [&](size_t j) {
      total.fetch_add(j, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 8u * (63u * 64u / 2));
}

TEST(ThreadPoolTest, InWorkerDistinguishesPoolThreads) {
  EXPECT_FALSE(ThreadPool::InWorker());
  // Poll instead of TaskGroup::Wait: Wait() helps execute queued tasks,
  // so the caller itself could run the task (InWorker() == false there,
  // by design). Plain Submit + spin guarantees a pool thread ran it.
  std::atomic<int> state{0};  // 0 pending, 1 ran-in-worker, 2 ran-outside
  ThreadPool::Instance().Submit(
      [&] { state.store(ThreadPool::InWorker() ? 1 : 2); });
  while (state.load() == 0) {
    std::this_thread::yield();
  }
  EXPECT_EQ(state.load(), 1);
}

TEST(ParallelScanTest, UnorderedSlotPartialsMatchSourceData) {
  constexpr size_t kRows = 50000;  // 6 full chunks + an 848-row tail
  Table t = MakeTable(kRows);
  SimDisk disk;
  BufferManager bm(&disk, size_t(1) << 30, Layout::kDSM);

  // Expected sums straight from the generator (same seed as MakeTable).
  Rng rng(42);
  uint64_t want_a = 0, want_b = 0, want_c = 0;
  for (size_t i = 0; i < kRows; i++) {
    want_a += uint64_t(i);
    want_b += uint64_t(5000 + rng.Uniform(1000));
    want_c += uint64_t(rng.Uniform(4));
  }

  ParallelScan scan(&t, &bm, {"a", "b", "c"});
  struct Partial {
    uint64_t a = 0, b = 0, c = 0;
    size_t rows = 0;
    char pad[32];
  };
  std::vector<Partial> parts(scan.slot_count());
  scan.Run([&](const Batch& batch, size_t morsel, size_t slot) {
    ASSERT_LT(slot, parts.size());
    ASSERT_LT(morsel, scan.morsel_count());
    const int64_t* a = batch.col(0)->data<int64_t>();
    const int64_t* b = batch.col(1)->data<int64_t>();
    const int32_t* c = batch.col(2)->data<int32_t>();
    for (size_t i = 0; i < batch.rows; i++) {
      parts[slot].a += uint64_t(a[i]);
      parts[slot].b += uint64_t(b[i]);
      parts[slot].c += uint64_t(c[i]);
    }
    parts[slot].rows += batch.rows;
  });
  uint64_t got_a = 0, got_b = 0, got_c = 0;
  size_t got_rows = 0;
  for (const Partial& p : parts) {
    got_a += p.a;
    got_b += p.b;
    got_c += p.c;
    got_rows += p.rows;
  }
  EXPECT_EQ(got_rows, kRows);
  EXPECT_EQ(got_a, want_a);
  EXPECT_EQ(got_b, want_b);
  EXPECT_EQ(got_c, want_c);
  EXPECT_EQ(scan.morsel_count(), t.chunk_count());
  EXPECT_GT(scan.decompress_seconds(), 0.0);
}

TEST(ParallelScanTest, OrderedModeDeliversTableOrderSingleThreaded) {
  constexpr size_t kRows = 40000;
  Table t = MakeTable(kRows);
  SimDisk disk;
  BufferManager bm(&disk, size_t(1) << 30, Layout::kDSM);

  ParallelScan::Options opt;
  opt.ordered = true;
  opt.threads = 4;
  ParallelScan scan(&t, &bm, {"a"}, opt);
  std::vector<int64_t> got;
  got.reserve(kRows);
  size_t last_morsel = 0;
  scan.Run([&](const Batch& batch, size_t morsel, size_t slot) {
    // Ordered emission is single-threaded through slot 0 and morsels
    // arrive monotonically; no lock needed around `got`.
    EXPECT_EQ(slot, 0u);
    EXPECT_GE(morsel, last_morsel);
    last_morsel = morsel;
    const int64_t* a = batch.col(0)->data<int64_t>();
    got.insert(got.end(), a, a + batch.rows);
  });
  ASSERT_EQ(got.size(), kRows);
  for (size_t i = 0; i < kRows; i++) {
    ASSERT_EQ(got[i], int64_t(i)) << "row " << i;
  }
}

TEST(ParallelScanTest, PrefetcherIssuesAsyncFetches) {
  Table t = MakeTable(50000);
  SimDisk disk;
  BufferManager bm(&disk, size_t(1) << 30, Layout::kDSM);
  Counter& prefetches =
      MetricsRegistry::Instance().GetCounter("exec.scan.prefetches");
  const uint64_t before = prefetches.Value();

  ParallelScan::Options opt;
  opt.prefetch_depth = 2;
  ParallelScan scan(&t, &bm, {"a", "b"}, opt);
  std::atomic<size_t> rows{0};
  scan.Run([&](const Batch& batch, size_t, size_t) {
    rows.fetch_add(batch.rows, std::memory_order_relaxed);
  });
  EXPECT_EQ(rows.load(), 50000u);
#if SCC_TELEMETRY
  // Counter asserts only when metrics are compiled in (the
  // -DSCC_TELEMETRY=0 tree stubs Increment/Value out).
  EXPECT_GT(prefetches.Value(), before);
#else
  (void)before;
#endif
  // Prefetch must never double-charge the disk: every chunk of the two
  // columns is read at most once.
  EXPECT_LE(disk.read_count(), 2 * t.chunk_count());
}

TEST(ParallelScanTest, ThreadsOptionBoundsSlotCount) {
  Table t = MakeTable(50000);
  SimDisk disk;
  BufferManager bm(&disk, size_t(1) << 30, Layout::kDSM);
  ParallelScan::Options opt;
  opt.threads = 2;
  ParallelScan scan(&t, &bm, {"a"}, opt);
  EXPECT_LE(scan.slot_count(), 2u);
  EXPECT_GE(scan.slot_count(), 1u);
}

TEST(ParallelScanTest, CancelBeforeFirstMorselVisitsNothing) {
  // cancel_check fires before every claim, so a check that is already
  // failing stops the scan with zero morsels visited and zero pins held.
  Table t = MakeTable(50000);
  SimDisk disk;
  BufferManager bm(&disk, size_t(1) << 30, Layout::kDSM);
  ParallelScan::Options opt;
  opt.cancel_check = [] { return Status::DeadlineExceeded("expired"); };
  ParallelScan scan(&t, &bm, {"a", "b"}, opt);
  std::atomic<size_t> rows{0};
  Status st = scan.Run([&](const Batch& batch, size_t, size_t) {
    rows.fetch_add(batch.rows, std::memory_order_relaxed);
  });
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(rows.load(), 0u);
  EXPECT_EQ(bm.pinned_pages(), 0u);
}

TEST(ParallelScanTest, CancelMidScanReleasesEveryPin) {
  // Deterministic mid-scan expiry: the check trips after a fixed number
  // of morsel-boundary probes. In-flight morsels finish (their rows are
  // delivered), no further morsels are claimed, and every page pin is
  // back by the time Run returns — the invariant the service's deadline
  // path leans on.
  Table t = MakeTable(50000);  // 7 morsels at the 8192-value chunk size
  SimDisk disk;
  BufferManager bm(&disk, size_t(1) << 30, Layout::kDSM);
  std::atomic<int> probes{0};
  ParallelScan::Options opt;
  opt.threads = 4;
  opt.cancel_check = [&]() -> Status {
    if (probes.fetch_add(1, std::memory_order_relaxed) >= 2) {
      return Status::DeadlineExceeded("expired mid-scan");
    }
    return Status::OK();
  };
  ParallelScan scan(&t, &bm, {"a", "b", "c"}, opt);
  std::atomic<size_t> rows{0};
  Status st = scan.Run([&](const Batch& batch, size_t, size_t) {
    rows.fetch_add(batch.rows, std::memory_order_relaxed);
  });
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(rows.load(), 50000u);
  EXPECT_EQ(bm.pinned_pages(), 0u);
}

TEST(ParallelScanTest, OrderedCancelDoesNotDeadlock) {
  // Ordered mode parks workers on the emit window; cancellation must
  // wake them (they would otherwise wait forever for a head morsel whose
  // claimer already bailed).
  Table t = MakeTable(50000);
  SimDisk disk;
  BufferManager bm(&disk, size_t(1) << 30, Layout::kDSM);
  std::atomic<int> probes{0};
  ParallelScan::Options opt;
  opt.ordered = true;
  opt.threads = 4;
  opt.cancel_check = [&]() -> Status {
    if (probes.fetch_add(1, std::memory_order_relaxed) >= 3) {
      return Status::DeadlineExceeded("expired mid-scan");
    }
    return Status::OK();
  };
  ParallelScan scan(&t, &bm, {"a"}, opt);
  size_t last_morsel = 0;
  Status st = scan.Run([&](const Batch& batch, size_t morsel, size_t slot) {
    EXPECT_EQ(slot, 0u);
    EXPECT_GE(morsel, last_morsel);
    last_morsel = morsel;
    (void)batch;
  });
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(bm.pinned_pages(), 0u);
}

TEST(ParallelScanTest, NoCancelCheckStillReturnsOk) {
  Table t = MakeTable(20000);
  SimDisk disk;
  BufferManager bm(&disk, size_t(1) << 30, Layout::kDSM);
  ParallelScan scan(&t, &bm, {"a"});
  std::atomic<size_t> rows{0};
  Status st = scan.Run([&](const Batch& batch, size_t, size_t) {
    rows.fetch_add(batch.rows, std::memory_order_relaxed);
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(rows.load(), 20000u);
}

/// One parsed chrome-trace event. Relies on the serializer's fixed key
/// order (name, cat, ph, ts, dur, ..., args:{op, span, parent}).
struct ParsedEvent {
  std::string name;
  double ts = 0, dur = 0;
  uint64_t op = 0, span = 0, parent = 0;
};

std::vector<ParsedEvent> ParseEvents(const std::string& json,
                                     const std::string& name) {
  std::vector<ParsedEvent> out;
  const std::string needle = "\"name\":\"" + name + "\"";
  auto field = [&](size_t from, const char* key, double* v) {
    std::string k = std::string("\"") + key + "\":";
    size_t p = json.find(k, from);
    if (p == std::string::npos) return false;
    *v = std::atof(json.c_str() + p + k.size());
    return true;
  };
  size_t pos = 0;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    const size_t end = json.find('}', json.find("\"args\"", pos));
    ParsedEvent e;
    e.name = name;
    double op = 0, span = 0, parent = 0;
    if (field(pos, "ts", &e.ts) && field(pos, "dur", &e.dur) &&
        field(pos, "op", &op) && field(pos, "span", &span) &&
        field(pos, "parent", &parent) &&
        json.find("\"op\":", pos) < end) {
      e.op = uint64_t(op);
      e.span = uint64_t(span);
      e.parent = uint64_t(parent);
      out.push_back(e);
    }
    pos += needle.size();
  }
  return out;
}

TEST(ThreadPoolTest, TraceExportsPerOperationTreeWithQueueWaitRunSplit) {
  // The acceptance shape for task-scoped tracing: tasks submitted under
  // a TraceOperation must export as children of that operation — on
  // whichever worker thread they ran — and each task must be split into
  // an "exec.task.queue_wait" slice (submit -> dequeue) abutting an
  // "exec.task.run" slice (dequeue -> done).
#if !SCC_TELEMETRY
  GTEST_SKIP() << "tracing compiled out (-DSCC_TELEMETRY=0)";
#else
  TraceRecorder& tr = TraceRecorder::Instance();
  SetTraceEnabled(true);
  tr.Clear();
  constexpr int kTasks = 4;
  uint64_t op_id = 0;
  {
    TraceOperation op("test.exec.traced_op");
    op_id = op.id();
    TaskGroup group(ThreadPool::Instance());
    for (int i = 0; i < kTasks; i++) {
      group.Run([] {
        volatile uint64_t sink = 0;
        for (int j = 0; j < 20000; j++) sink = sink + uint64_t(j);
      });
    }
    group.Wait();
  }
  // Wait() returns when the last task's fn completes, but the worker
  // records that task's spans in Execute's epilogue just after — give the
  // full event set (1 op + per task: 2 slices + 2 flow endpoints) a
  // moment to land before exporting.
  const size_t want_events = 1 + size_t(kTasks) * 4;
  for (int spin = 0; spin < 2000 && tr.event_count() < want_events; spin++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  SetTraceEnabled(false);
  ASSERT_NE(op_id, 0u);
  const std::string json = tr.ToChromeTraceJson();

  std::vector<ParsedEvent> roots = ParseEvents(json, "test.exec.traced_op");
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0].op, op_id);
  EXPECT_EQ(roots[0].span, op_id);  // operation id doubles as root span
  EXPECT_EQ(roots[0].parent, 0u);

  std::vector<ParsedEvent> waits = ParseEvents(json, "exec.task.queue_wait");
  std::vector<ParsedEvent> runs = ParseEvents(json, "exec.task.run");
  ASSERT_EQ(runs.size(), size_t(kTasks));
  ASSERT_EQ(waits.size(), size_t(kTasks));
  for (const ParsedEvent& e : runs) {
    EXPECT_EQ(e.op, op_id) << "run span not linked to its operation";
    EXPECT_EQ(e.parent, op_id);
    EXPECT_NE(e.span, op_id);  // each task got its own span id
    // The run slice nests inside the operation slice.
    EXPECT_GE(e.ts, roots[0].ts - 0.01);
    EXPECT_LE(e.ts + e.dur, roots[0].ts + roots[0].dur + 0.01);
    // Its queue-wait slice ends exactly where the run begins (both are
    // computed from the same dequeue timestamp; 0.05 us covers the %.3f
    // serialization rounding).
    bool abuts = false;
    for (const ParsedEvent& w : waits) {
      if (w.op == op_id && std::abs(w.ts + w.dur - e.ts) < 0.05) {
        abuts = true;
        break;
      }
    }
    EXPECT_TRUE(abuts) << "no queue_wait slice ends at run start "
                       << std::setprecision(15) << e.ts;
  }
  // Flow arrows: one submit ("s") and one finish ("f") per task, binding
  // the submitting scope to the worker-side run slice.
  size_t flow_s = 0, flow_f = 0;
  for (size_t p = json.find("\"ph\":\"s\""); p != std::string::npos;
       p = json.find("\"ph\":\"s\"", p + 1)) {
    flow_s++;
  }
  for (size_t p = json.find("\"ph\":\"f\""); p != std::string::npos;
       p = json.find("\"ph\":\"f\"", p + 1)) {
    flow_f++;
  }
  EXPECT_EQ(flow_s, size_t(kTasks));
  EXPECT_EQ(flow_f, size_t(kTasks));
#endif
}

TEST(ThreadPoolTest, PoolHealthMetricsPopulate) {
  // exec.pool.* must fill in whenever telemetry is on: queue-wait and
  // run-time histograms get one observation per task, and the run time
  // lands on a per-worker counter (or the caller's, if the caller helped
  // drain the group).
#if !SCC_TELEMETRY
  GTEST_SKIP() << "metrics compiled out (-DSCC_TELEMETRY=0)";
#else
  SetTelemetryEnabled(true);
  ExecMetrics& em = ExecMetrics::Get();
  em.pool_queue_wait_ns->Reset();
  em.pool_task_run_ns->Reset();
  constexpr int kTasks = 8;
  TaskGroup group(ThreadPool::Instance());
  for (int i = 0; i < kTasks; i++) {
    group.Run([] {
      volatile uint64_t sink = 0;
      for (int j = 0; j < 10000; j++) sink = sink + uint64_t(j);
    });
  }
  group.Wait();
  // Same epilogue race as above: the final run-time observation lands
  // just after Wait() unblocks.
  for (int spin = 0;
       spin < 2000 && em.pool_task_run_ns->count() < uint64_t(kTasks);
       spin++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(em.pool_queue_wait_ns->count(), uint64_t(kTasks));
  EXPECT_EQ(em.pool_task_run_ns->count(), uint64_t(kTasks));
  EXPECT_GT(em.pool_task_run_ns->sum(), 0u);
  uint64_t attributed = em.pool_caller_run_ns->Value();
  ThreadPool& pool = ThreadPool::Instance();
  for (unsigned w = 0; w < pool.worker_count(); w++) {
    attributed += MetricsRegistry::Instance()
                      .GetCounter("exec.pool.worker." + std::to_string(w) +
                                  ".run_ns")
                      .Value();
  }
  EXPECT_GE(attributed, em.pool_task_run_ns->sum());
#endif
}

}  // namespace
}  // namespace scc
