#include "exec/parallel_scan.h"

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/thread_pool.h"
#include "storage/buffer_manager.h"
#include "storage/sim_disk.h"
#include "storage/table.h"
#include "sys/telemetry.h"
#include "util/rng.h"

// Execution subsystem tests: the shared work-stealing pool (ParallelFor
// coverage, TaskGroup joins, nested waits) and the morsel-driven parallel
// scan in both emit modes, cross-checked against the source data.

namespace scc {
namespace {

Table MakeTable(size_t rows, size_t chunk_values = 8192) {
  Table t(chunk_values);
  Rng rng(42);
  std::vector<int64_t> a(rows), b(rows);
  std::vector<int32_t> c(rows);
  for (size_t i = 0; i < rows; i++) {
    a[i] = int64_t(i);                         // monotone -> PFOR-DELTA
    b[i] = 5000 + int64_t(rng.Uniform(1000));  // clustered -> PFOR
    c[i] = int32_t(rng.Uniform(4));            // tiny domain -> PDICT/PFOR
  }
  SCC_CHECK(t.AddColumn<int64_t>("a", a, ColumnCompression::kAuto).ok(), "a");
  SCC_CHECK(t.AddColumn<int64_t>("b", b, ColumnCompression::kAuto).ok(), "b");
  SCC_CHECK(t.AddColumn<int32_t>("c", c, ColumnCompression::kAuto).ok(), "c");
  return t;
}

TEST(ThreadPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  ThreadPool::Instance().ParallelFor(kN, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; i++) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForEdgeSizes) {
  std::atomic<size_t> ran{0};
  ThreadPool::Instance().ParallelFor(0, [&](size_t) { ran++; });
  EXPECT_EQ(ran.load(), 0u);
  ThreadPool::Instance().ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ran++;
  });
  EXPECT_EQ(ran.load(), 1u);
}

TEST(ThreadPoolTest, ParallelForHonorsWorkerCap) {
  // With helpers capped to 1, at most two threads (caller + one worker)
  // may ever be inside the body at once.
  std::atomic<int> inside{0};
  std::atomic<int> peak{0};
  ThreadPool::Instance().ParallelFor(
      256,
      [&](size_t) {
        int now = inside.fetch_add(1) + 1;
        int prev = peak.load();
        while (now > prev && !peak.compare_exchange_weak(prev, now)) {
        }
        inside.fetch_sub(1);
      },
      /*max_workers=*/1);
  EXPECT_LE(peak.load(), 2);
}

TEST(ThreadPoolTest, ParallelForZeroCapRunsSerialOnCaller) {
  // max_workers == 0 is a real cap (no pool-side helpers), distinct from
  // the kNoWorkerCap default: the caller runs every index itself, in
  // order, so total-thread-count knobs can map threads==1 to a cap of 0.
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<size_t> order;
  ThreadPool::Instance().ParallelFor(
      64,
      [&](size_t i) {
        ASSERT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
      },
      /*max_workers=*/0);
  ASSERT_EQ(order.size(), 64u);
  for (size_t i = 0; i < order.size(); i++) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, TaskGroupWaitsForAllTasks) {
  std::atomic<size_t> done{0};
  {
    TaskGroup group(ThreadPool::Instance());
    for (int i = 0; i < 200; i++) {
      group.Run([&] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    group.Wait();
    EXPECT_EQ(done.load(), 200u);
  }
  // Destructor re-Wait() on an already-drained group must be a no-op.
  EXPECT_EQ(done.load(), 200u);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // ParallelFor from inside pool tasks: the waiting owner helps execute
  // queued work, so nesting can never starve the pool.
  std::atomic<uint64_t> total{0};
  ThreadPool::Instance().ParallelFor(8, [&](size_t) {
    ThreadPool::Instance().ParallelFor(64, [&](size_t j) {
      total.fetch_add(j, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 8u * (63u * 64u / 2));
}

TEST(ThreadPoolTest, InWorkerDistinguishesPoolThreads) {
  EXPECT_FALSE(ThreadPool::InWorker());
  // Poll instead of TaskGroup::Wait: Wait() helps execute queued tasks,
  // so the caller itself could run the task (InWorker() == false there,
  // by design). Plain Submit + spin guarantees a pool thread ran it.
  std::atomic<int> state{0};  // 0 pending, 1 ran-in-worker, 2 ran-outside
  ThreadPool::Instance().Submit(
      [&] { state.store(ThreadPool::InWorker() ? 1 : 2); });
  while (state.load() == 0) {
    std::this_thread::yield();
  }
  EXPECT_EQ(state.load(), 1);
}

TEST(ParallelScanTest, UnorderedSlotPartialsMatchSourceData) {
  constexpr size_t kRows = 50000;  // 6 full chunks + an 848-row tail
  Table t = MakeTable(kRows);
  SimDisk disk;
  BufferManager bm(&disk, size_t(1) << 30, Layout::kDSM);

  // Expected sums straight from the generator (same seed as MakeTable).
  Rng rng(42);
  uint64_t want_a = 0, want_b = 0, want_c = 0;
  for (size_t i = 0; i < kRows; i++) {
    want_a += uint64_t(i);
    want_b += uint64_t(5000 + rng.Uniform(1000));
    want_c += uint64_t(rng.Uniform(4));
  }

  ParallelScan scan(&t, &bm, {"a", "b", "c"});
  struct Partial {
    uint64_t a = 0, b = 0, c = 0;
    size_t rows = 0;
    char pad[32];
  };
  std::vector<Partial> parts(scan.slot_count());
  scan.Run([&](const Batch& batch, size_t morsel, size_t slot) {
    ASSERT_LT(slot, parts.size());
    ASSERT_LT(morsel, scan.morsel_count());
    const int64_t* a = batch.col(0)->data<int64_t>();
    const int64_t* b = batch.col(1)->data<int64_t>();
    const int32_t* c = batch.col(2)->data<int32_t>();
    for (size_t i = 0; i < batch.rows; i++) {
      parts[slot].a += uint64_t(a[i]);
      parts[slot].b += uint64_t(b[i]);
      parts[slot].c += uint64_t(c[i]);
    }
    parts[slot].rows += batch.rows;
  });
  uint64_t got_a = 0, got_b = 0, got_c = 0;
  size_t got_rows = 0;
  for (const Partial& p : parts) {
    got_a += p.a;
    got_b += p.b;
    got_c += p.c;
    got_rows += p.rows;
  }
  EXPECT_EQ(got_rows, kRows);
  EXPECT_EQ(got_a, want_a);
  EXPECT_EQ(got_b, want_b);
  EXPECT_EQ(got_c, want_c);
  EXPECT_EQ(scan.morsel_count(), t.chunk_count());
  EXPECT_GT(scan.decompress_seconds(), 0.0);
}

TEST(ParallelScanTest, OrderedModeDeliversTableOrderSingleThreaded) {
  constexpr size_t kRows = 40000;
  Table t = MakeTable(kRows);
  SimDisk disk;
  BufferManager bm(&disk, size_t(1) << 30, Layout::kDSM);

  ParallelScan::Options opt;
  opt.ordered = true;
  opt.threads = 4;
  ParallelScan scan(&t, &bm, {"a"}, opt);
  std::vector<int64_t> got;
  got.reserve(kRows);
  size_t last_morsel = 0;
  scan.Run([&](const Batch& batch, size_t morsel, size_t slot) {
    // Ordered emission is single-threaded through slot 0 and morsels
    // arrive monotonically; no lock needed around `got`.
    EXPECT_EQ(slot, 0u);
    EXPECT_GE(morsel, last_morsel);
    last_morsel = morsel;
    const int64_t* a = batch.col(0)->data<int64_t>();
    got.insert(got.end(), a, a + batch.rows);
  });
  ASSERT_EQ(got.size(), kRows);
  for (size_t i = 0; i < kRows; i++) {
    ASSERT_EQ(got[i], int64_t(i)) << "row " << i;
  }
}

TEST(ParallelScanTest, PrefetcherIssuesAsyncFetches) {
  Table t = MakeTable(50000);
  SimDisk disk;
  BufferManager bm(&disk, size_t(1) << 30, Layout::kDSM);
  Counter& prefetches =
      MetricsRegistry::Instance().GetCounter("exec.scan.prefetches");
  const uint64_t before = prefetches.Value();

  ParallelScan::Options opt;
  opt.prefetch_depth = 2;
  ParallelScan scan(&t, &bm, {"a", "b"}, opt);
  std::atomic<size_t> rows{0};
  scan.Run([&](const Batch& batch, size_t, size_t) {
    rows.fetch_add(batch.rows, std::memory_order_relaxed);
  });
  EXPECT_EQ(rows.load(), 50000u);
#if SCC_TELEMETRY
  // Counter asserts only when metrics are compiled in (the
  // -DSCC_TELEMETRY=0 tree stubs Increment/Value out).
  EXPECT_GT(prefetches.Value(), before);
#else
  (void)before;
#endif
  // Prefetch must never double-charge the disk: every chunk of the two
  // columns is read at most once.
  EXPECT_LE(disk.read_count(), 2 * t.chunk_count());
}

TEST(ParallelScanTest, ThreadsOptionBoundsSlotCount) {
  Table t = MakeTable(50000);
  SimDisk disk;
  BufferManager bm(&disk, size_t(1) << 30, Layout::kDSM);
  ParallelScan::Options opt;
  opt.threads = 2;
  ParallelScan scan(&t, &bm, {"a"}, opt);
  EXPECT_LE(scan.slot_count(), 2u);
  EXPECT_GE(scan.slot_count(), 1u);
}

}  // namespace
}  // namespace scc
