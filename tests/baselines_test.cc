#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/bitio.h"
#include "baselines/classic.h"
#include "baselines/huffman.h"
#include "baselines/lzrw1.h"
#include "baselines/lzss_huffman.h"
#include "baselines/varbyte.h"
#include "baselines/wordaligned.h"
#include "core/analyzer.h"
#include "util/rng.h"
#include "util/zipf.h"

// Round-trip and behavioural tests for every baseline codec the paper
// compares against: LZRW1, the LZSS+Huffman heavy codec, semi-static
// Huffman ("shuff"), Simple-9, carryover-12, vbyte, classic FOR, prefix
// suppression, and plain dictionary compression.

namespace scc {
namespace {

std::vector<uint8_t> TextLike(size_t n, uint64_t seed) {
  // Skewed byte distribution with repeated phrases: compressible by both
  // LZ and entropy coding.
  Rng rng(seed);
  const std::string words[] = {"the ",      "quick ",  "brown ", "fox ",
                               "jumps ",    "over ",   "lazy ",  "dog ",
                               "SELECT * ", "WHERE ",  "lineitem ",
                               "order ",    "ship ",   "1995-03-15 "};
  std::vector<uint8_t> v;
  v.reserve(n + 16);
  while (v.size() < n) {
    const std::string& w = words[rng.Uniform(std::size(words))];
    v.insert(v.end(), w.begin(), w.end());
  }
  v.resize(n);
  return v;
}

// ---------------------------------------------------------------------------
// Bit IO
// ---------------------------------------------------------------------------

TEST(BitIO, RoundTripMixedWidths) {
  std::vector<uint8_t> buf;
  BitWriter bw(&buf);
  Rng rng(1);
  std::vector<std::pair<uint64_t, int>> writes;
  for (int i = 0; i < 10000; i++) {
    int bits = 1 + int(rng.Uniform(57));
    uint64_t v = rng.Next() & ((1ull << bits) - 1);
    writes.emplace_back(v, bits);
    bw.Write(v, bits);
  }
  bw.Finish();
  BitReader br(buf.data(), buf.size());
  for (auto [v, bits] : writes) {
    ASSERT_EQ(br.Read(bits), v);
  }
}

TEST(BitIO, PeekSkipEquivalentToRead) {
  std::vector<uint8_t> buf;
  BitWriter bw(&buf);
  bw.Write(0b1011, 4);
  bw.Write(0xABCD, 16);
  bw.Finish();
  BitReader br(buf.data(), buf.size());
  EXPECT_EQ(br.Peek(4), 0b1011u);
  br.Skip(4);
  EXPECT_EQ(br.Read(16), 0xABCDu);
}

// ---------------------------------------------------------------------------
// LZRW1
// ---------------------------------------------------------------------------

TEST(Lzrw1Test, RoundTripText) {
  for (size_t n : {0u, 1u, 100u, 4096u, 100000u}) {
    auto in = TextLike(n, n + 1);
    std::vector<uint8_t> comp(Lzrw1::MaxCompressedSize(n));
    size_t csize = Lzrw1::Compress(in.data(), n, comp.data());
    std::vector<uint8_t> out(n + 1);
    auto r = Lzrw1::Decompress(comp.data(), csize, out.data(), n);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r.ValueOrDie(), n);
    out.resize(n);
    EXPECT_EQ(in, out);
  }
}

TEST(Lzrw1Test, CompressesRepetitiveData) {
  auto in = TextLike(100000, 3);
  std::vector<uint8_t> comp(Lzrw1::MaxCompressedSize(in.size()));
  size_t csize = Lzrw1::Compress(in.data(), in.size(), comp.data());
  EXPECT_LT(csize, in.size() / 2);
}

TEST(Lzrw1Test, IncompressibleDataExpandsBoundedly) {
  Rng rng(4);
  std::vector<uint8_t> in(50000);
  for (auto& b : in) b = uint8_t(rng.Next());
  std::vector<uint8_t> comp(Lzrw1::MaxCompressedSize(in.size()));
  size_t csize = Lzrw1::Compress(in.data(), in.size(), comp.data());
  EXPECT_LE(csize, Lzrw1::MaxCompressedSize(in.size()));
  std::vector<uint8_t> out(in.size());
  auto r = Lzrw1::Decompress(comp.data(), csize, out.data(), out.size());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(in, out);
}

TEST(Lzrw1Test, CorruptStreamRejected) {
  auto in = TextLike(1000, 5);
  std::vector<uint8_t> comp(Lzrw1::MaxCompressedSize(in.size()));
  size_t csize = Lzrw1::Compress(in.data(), in.size(), comp.data());
  // Too-small output buffer must be detected, not overrun.
  std::vector<uint8_t> out(10);
  auto r = Lzrw1::Decompress(comp.data(), csize, out.data(), out.size());
  EXPECT_FALSE(r.ok());
}

// ---------------------------------------------------------------------------
// LZSS + Huffman
// ---------------------------------------------------------------------------

TEST(LzssHuffmanTest, RoundTrip) {
  for (size_t n : {0u, 1u, 13u, 5000u, 200000u}) {
    auto in = TextLike(n, n + 11);
    auto comp = LzssHuffman::Compress(in.data(), n);
    std::vector<uint8_t> out;
    auto st = LzssHuffman::Decompress(comp.data(), comp.size(), &out);
    ASSERT_TRUE(st.ok()) << st.ToString() << " n=" << n;
    EXPECT_EQ(in, out);
  }
}

TEST(LzssHuffmanTest, BeatsLzrw1OnRatio) {
  // The heavy codec must land a clearly better ratio than LZRW1 on
  // compressible data (that is its role in the Figure 2 comparison).
  auto in = TextLike(300000, 17);
  auto heavy = LzssHuffman::Compress(in.data(), in.size());
  std::vector<uint8_t> fast(Lzrw1::MaxCompressedSize(in.size()));
  size_t fast_size = Lzrw1::Compress(in.data(), in.size(), fast.data());
  EXPECT_LT(heavy.size(), fast_size);
}

TEST(LzssHuffmanTest, RandomBinaryRoundTrip) {
  Rng rng(23);
  std::vector<uint8_t> in(65536);
  for (auto& b : in) b = uint8_t(rng.Next() & 0x3F);
  auto comp = LzssHuffman::Compress(in.data(), in.size());
  std::vector<uint8_t> out;
  ASSERT_TRUE(LzssHuffman::Decompress(comp.data(), comp.size(), &out).ok());
  EXPECT_EQ(in, out);
}

// ---------------------------------------------------------------------------
// Huffman
// ---------------------------------------------------------------------------

TEST(HuffmanTest, BytesRoundTrip) {
  for (size_t n : {1u, 300u, 100000u}) {
    auto in = TextLike(n, n);
    auto comp = HuffmanCompressBytes(in.data(), n);
    std::vector<uint8_t> out;
    ASSERT_TRUE(HuffmanDecompressBytes(comp.data(), comp.size(), &out).ok());
    EXPECT_EQ(in, out);
  }
}

TEST(HuffmanTest, SkewedInputApproachesEntropy) {
  // 90% of bytes are one symbol: coded size must be far below 8 bits/sym.
  Rng rng(9);
  std::vector<uint8_t> in(100000);
  for (auto& b : in) b = rng.Bernoulli(0.9) ? 'a' : uint8_t(rng.Uniform(256));
  auto comp = HuffmanCompressBytes(in.data(), in.size());
  EXPECT_LT(comp.size(), in.size() / 3);
}

TEST(HuffmanTest, SingleSymbolAlphabet) {
  std::vector<uint8_t> in(1000, 'x');
  auto comp = HuffmanCompressBytes(in.data(), in.size());
  std::vector<uint8_t> out;
  ASSERT_TRUE(HuffmanDecompressBytes(comp.data(), comp.size(), &out).ok());
  EXPECT_EQ(in, out);
  EXPECT_LT(comp.size(), 500u);  // ~1 bit per symbol plus header
}

TEST(HuffmanGapTest, RoundTripZipfGaps) {
  ZipfGenerator zipf(1000, 1.1, 7);
  std::vector<uint32_t> gaps(50000);
  for (auto& g : gaps) g = uint32_t(zipf.Next()) + 1;
  std::vector<uint8_t> comp;
  auto r = HuffmanGapCodec::Compress(gaps.data(), gaps.size(), &comp);
  ASSERT_TRUE(r.ok());
  std::vector<uint32_t> out(gaps.size());
  ASSERT_TRUE(
      HuffmanGapCodec::Decompress(comp.data(), comp.size(), out.data(),
                                  out.size())
          .ok());
  EXPECT_EQ(gaps, out);
}

TEST(HuffmanGapTest, LargeGapsRoundTrip) {
  std::vector<uint32_t> gaps = {1, 0xFFFFFFFFu, 2, 1u << 30, 7, 0, 3};
  std::vector<uint8_t> comp;
  ASSERT_TRUE(HuffmanGapCodec::Compress(gaps.data(), gaps.size(), &comp).ok());
  std::vector<uint32_t> out(gaps.size());
  ASSERT_TRUE(HuffmanGapCodec::Decompress(comp.data(), comp.size(),
                                          out.data(), out.size())
                  .ok());
  EXPECT_EQ(gaps, out);
}

// ---------------------------------------------------------------------------
// Word-aligned codes
// ---------------------------------------------------------------------------

std::vector<uint32_t> GapData(size_t n, uint64_t max_gap, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint32_t> v(n);
  for (auto& g : v) g = uint32_t(rng.Uniform(max_gap)) + 1;
  return v;
}

class WordAlignedTest : public ::testing::TestWithParam<size_t> {};

TEST_P(WordAlignedTest, Simple9RoundTrip) {
  size_t n = GetParam();
  auto in = GapData(n, 1000, n + 1);
  std::vector<uint32_t> comp;
  ASSERT_TRUE(Simple9::Compress(in.data(), n, &comp).ok());
  std::vector<uint32_t> out(n);
  ASSERT_TRUE(Simple9::Decompress(comp.data(), comp.size(), out.data(), n).ok());
  EXPECT_EQ(in, out);
}

TEST_P(WordAlignedTest, Carryover12RoundTrip) {
  size_t n = GetParam();
  auto in = GapData(n, 1000, n + 2);
  std::vector<uint32_t> comp;
  ASSERT_TRUE(Carryover12::Compress(in.data(), n, &comp).ok());
  std::vector<uint32_t> out(n);
  ASSERT_TRUE(
      Carryover12::Decompress(comp.data(), comp.size(), out.data(), n).ok());
  EXPECT_EQ(in, out);
}

INSTANTIATE_TEST_SUITE_P(Sizes, WordAlignedTest,
                         ::testing::Values(1, 2, 27, 28, 29, 100, 1000,
                                           65536, 100001));

TEST(WordAligned, MixedWidthBursts) {
  // Alternate tiny and large gaps to force many selector transitions.
  Rng rng(31);
  std::vector<uint32_t> in(20000);
  for (size_t i = 0; i < in.size(); i++) {
    in[i] = (i % 17 == 0) ? uint32_t(rng.Uniform(1u << 25)) + 1
                          : uint32_t(rng.Uniform(4)) + 1;
  }
  std::vector<uint32_t> c9, c12;
  ASSERT_TRUE(Simple9::Compress(in.data(), in.size(), &c9).ok() ||
              true);  // simple9 may reject values >= 2^28
  ASSERT_TRUE(Carryover12::Compress(in.data(), in.size(), &c12).ok());
  std::vector<uint32_t> out(in.size());
  ASSERT_TRUE(Carryover12::Decompress(c12.data(), c12.size(), out.data(),
                                      out.size())
                  .ok());
  EXPECT_EQ(in, out);
}

TEST(WordAligned, Simple9RejectsWideValues) {
  std::vector<uint32_t> in = {1u << 28};
  std::vector<uint32_t> comp;
  EXPECT_FALSE(Simple9::Compress(in.data(), in.size(), &comp).ok());
}

TEST(WordAligned, Carryover12RejectsWideValues) {
  std::vector<uint32_t> in = {1u << 26};
  std::vector<uint32_t> comp;
  EXPECT_FALSE(Carryover12::Compress(in.data(), in.size(), &comp).ok());
}

TEST(WordAligned, Carryover12DenserThanSimple9OnSmallGaps) {
  // On uniform small gaps, the carryover mechanism's 32-bit payload words
  // should use no more words than Simple-9's 28-bit payloads.
  auto in = GapData(100000, 6, 77);
  std::vector<uint32_t> c9, c12;
  ASSERT_TRUE(Simple9::Compress(in.data(), in.size(), &c9).ok());
  ASSERT_TRUE(Carryover12::Compress(in.data(), in.size(), &c12).ok());
  EXPECT_LE(c12.size(), c9.size() + c9.size() / 20);
}

TEST(WordAligned, TruncatedStreamRejected) {
  auto in = GapData(1000, 100, 5);
  std::vector<uint32_t> comp;
  ASSERT_TRUE(Carryover12::Compress(in.data(), in.size(), &comp).ok());
  std::vector<uint32_t> out(in.size());
  EXPECT_FALSE(Carryover12::Decompress(comp.data(), comp.size() / 2,
                                       out.data(), out.size())
                   .ok());
}

// ---------------------------------------------------------------------------
// VByte
// ---------------------------------------------------------------------------

TEST(VByteTest, RoundTripAllRanges) {
  std::vector<uint32_t> in = {0, 1, 127, 128, 16383, 16384, 0xFFFFFFFFu, 42};
  std::vector<uint8_t> comp;
  VByte::Compress(in.data(), in.size(), &comp);
  std::vector<uint32_t> out(in.size());
  ASSERT_TRUE(VByte::Decompress(comp.data(), comp.size(), out.data(),
                                out.size())
                  .ok());
  EXPECT_EQ(in, out);
}

TEST(VByteTest, SmallGapsUseOneByte) {
  auto in = GapData(1000, 100, 3);
  std::vector<uint8_t> comp;
  VByte::Compress(in.data(), in.size(), &comp);
  EXPECT_EQ(comp.size(), in.size());
}

// ---------------------------------------------------------------------------
// Classic FOR / PS / PlainDict
// ---------------------------------------------------------------------------

TEST(ClassicForTest, RoundTrip) {
  Rng rng(6);
  std::vector<int32_t> in(5000);
  for (auto& v : in) v = 1000 + int32_t(rng.Uniform(500));
  auto comp = ClassicFor<int32_t>::Compress(in);
  std::vector<int32_t> out;
  ASSERT_TRUE(ClassicFor<int32_t>::Decompress(comp.data(), comp.size(), &out).ok());
  EXPECT_EQ(in, out);
  EXPECT_LT(comp.size(), in.size() * 2);  // 9 bits/value + header
}

TEST(ClassicForTest, OneOutlierRuinsTheBlock) {
  // The paper's motivating weakness: FOR needs bits(max - min), so one
  // outlier blows up the width while PFOR stores it as an exception.
  Rng rng(7);
  std::vector<int32_t> tight(10000);
  for (auto& v : tight) v = int32_t(rng.Uniform(256));
  double tight_bits = ClassicFor<int32_t>::BitsPerValue(tight);
  auto with_outlier = tight;
  with_outlier[500] = 1 << 30;
  double outlier_bits = ClassicFor<int32_t>::BitsPerValue(with_outlier);
  EXPECT_LT(tight_bits, 9.0);
  EXPECT_GT(outlier_bits, 30.0);
}

TEST(ClassicForTest, WideRange64BitFallsBackToRaw) {
  std::vector<int64_t> in = {0, 1ll << 40, 17};
  auto comp = ClassicFor<int64_t>::Compress(in);
  std::vector<int64_t> out;
  ASSERT_TRUE(ClassicFor<int64_t>::Decompress(comp.data(), comp.size(), &out).ok());
  EXPECT_EQ(in, out);
}

TEST(PrefixSuppressionTest, RoundTrip) {
  std::vector<int64_t> in = {0, 255, 256, 65535, 65536, 1ll << 40, -1, 42};
  auto comp = PrefixSuppression<int64_t>::Compress(in);
  std::vector<int64_t> out;
  ASSERT_TRUE(
      PrefixSuppression<int64_t>::Decompress(comp.data(), comp.size(), &out).ok());
  EXPECT_EQ(in, out);
}

TEST(PrefixSuppressionTest, SmallValuesCompress) {
  // Prices in large decimals: PS drops the zero prefixes (Section 2.1).
  Rng rng(8);
  std::vector<int64_t> in(10000);
  for (auto& v : in) v = int64_t(rng.Uniform(200));
  auto comp = PrefixSuppression<int64_t>::Compress(in);
  // ~1 byte payload + 2 selector bits per value vs 8 raw bytes.
  EXPECT_LT(comp.size(), in.size() * 2);
}

TEST(PlainDictTest, RoundTrip) {
  Rng rng(10);
  std::vector<int64_t> domain = {5, -77, 12345678901ll, 0};
  std::vector<int64_t> in(8000);
  for (auto& v : in) v = domain[rng.Uniform(domain.size())];
  auto comp = PlainDict<int64_t>::Compress(in);
  ASSERT_TRUE(comp.ok());
  std::vector<int64_t> out;
  ASSERT_TRUE(PlainDict<int64_t>::Decompress(comp.ValueOrDie().data(),
                                             comp.ValueOrDie().size(), &out)
                  .ok());
  EXPECT_EQ(in, out);
  // 2 bits per value plus dictionary.
  EXPECT_LT(comp.ValueOrDie().size(), 8000u / 3);
}

TEST(PlainDictTest, DomainTooLargeRejected) {
  std::vector<int64_t> in(3000);
  std::iota(in.begin(), in.end(), 0);
  auto comp = PlainDict<int64_t>::Compress(in, /*max_dict=*/1000);
  EXPECT_FALSE(comp.ok());
  EXPECT_EQ(comp.status().code(), StatusCode::kResourceExhausted);
}

TEST(PlainDictTest, SkewPaysFullWidthUnlikePDict) {
  // 1000 distinct values but 99% of mass on 4 of them: plain dictionary
  // still pays 10 bits/value. (PDICT's advantage, Section 3.1.)
  Rng rng(11);
  std::vector<int32_t> in(20000);
  for (auto& v : in) {
    v = rng.Bernoulli(0.99) ? int32_t(rng.Uniform(4))
                            : int32_t(rng.Uniform(1000));
  }
  auto comp = PlainDict<int32_t>::Compress(in);
  ASSERT_TRUE(comp.ok());
  double bits = 8.0 * comp.ValueOrDie().size() / in.size();
  // ~200 distinct values -> 8 bits/value for plain dictionary...
  EXPECT_GT(bits, 7.5);
  // ...while PDICT's exceptions let it code the 4 heavy hitters in 2-3
  // bits and pay full width only for the 1% tail.
  auto choice = Analyzer<int32_t>::Analyze(in);
  EXPECT_EQ(choice.scheme, Scheme::kPDict);
  EXPECT_LT(choice.est_bits_per_value, bits * 0.6);
}

}  // namespace
}  // namespace scc
