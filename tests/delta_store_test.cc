#include "storage/merge_scan.h"

#include <vector>

#include <gtest/gtest.h>

#include "storage/string_dictionary.h"
#include "util/rng.h"

// Differential-update tests (paper Section 2.3): scans merge in-memory
// deltas with immutable compressed base tables; checkpoints fold the
// deltas back in. A fuzz test validates long random update sequences
// against a plain in-memory reference.

namespace scc {
namespace {

Table MakeBase(const std::vector<int64_t>& a, const std::vector<int32_t>& b,
               ColumnCompression mode = ColumnCompression::kAuto) {
  Table t(4096);
  SCC_CHECK(t.AddColumn<int64_t>("a", a, mode).ok(), "a");
  SCC_CHECK(t.AddColumn<int32_t>("b", b, mode).ok(), "b");
  return t;
}

struct Collected {
  std::vector<int64_t> a;
  std::vector<int32_t> b;
};

Collected CollectMergeScan(const Table& t, const DeltaStore& delta) {
  SimDisk disk;
  BufferManager bm(&disk, 1u << 30, Layout::kDSM);
  MergeScanOp scan(&t, &bm, {"a", "b"}, &delta, {0, 1});
  Collected out;
  Batch batch;
  while (size_t n = scan.Next(&batch)) {
    for (size_t i = 0; i < n; i++) {
      out.a.push_back(batch.col(0)->data<int64_t>()[i]);
      out.b.push_back(batch.col(1)->data<int32_t>()[i]);
    }
  }
  return out;
}

TEST(DeltaStoreTest, InsertsAppendAfterBase) {
  std::vector<int64_t> a = {10, 20, 30};
  std::vector<int32_t> b = {1, 2, 3};
  Table t = MakeBase(a, b);
  DeltaStore delta({TypeId::kInt64, TypeId::kInt32});
  ASSERT_TRUE(delta.Insert({40, 4}).ok());
  ASSERT_TRUE(delta.Insert({50, 5}).ok());
  Collected got = CollectMergeScan(t, delta);
  EXPECT_EQ(got.a, (std::vector<int64_t>{10, 20, 30, 40, 50}));
  EXPECT_EQ(got.b, (std::vector<int32_t>{1, 2, 3, 4, 5}));
}

TEST(DeltaStoreTest, DeletesFilterBaseRows) {
  std::vector<int64_t> a = {10, 20, 30, 40};
  std::vector<int32_t> b = {1, 2, 3, 4};
  Table t = MakeBase(a, b);
  DeltaStore delta({TypeId::kInt64, TypeId::kInt32});
  delta.Delete(1);
  delta.Delete(3);
  delta.Delete(3);  // idempotent
  Collected got = CollectMergeScan(t, delta);
  EXPECT_EQ(got.a, (std::vector<int64_t>{10, 30}));
  EXPECT_EQ(delta.delete_count(), 2u);
}

TEST(DeltaStoreTest, UpdateIsDeletePlusInsert) {
  std::vector<int64_t> a = {10, 20, 30};
  std::vector<int32_t> b = {1, 2, 3};
  Table t = MakeBase(a, b);
  DeltaStore delta({TypeId::kInt64, TypeId::kInt32});
  ASSERT_TRUE(delta.Update(1, {21, 12}).ok());
  Collected got = CollectMergeScan(t, delta);
  EXPECT_EQ(got.a, (std::vector<int64_t>{10, 30, 21}));
  EXPECT_EQ(got.b, (std::vector<int32_t>{1, 3, 12}));
}

TEST(DeltaStoreTest, ArityMismatchRejected) {
  DeltaStore delta({TypeId::kInt64, TypeId::kInt32});
  EXPECT_FALSE(delta.Insert({1}).ok());
}

TEST(DeltaStoreTest, CheckpointFoldsDeltasIn) {
  Rng rng(5);
  std::vector<int64_t> a(20000);
  std::vector<int32_t> b(20000);
  for (size_t i = 0; i < a.size(); i++) {
    a[i] = 1000 + int64_t(rng.Uniform(100));
    b[i] = int32_t(i);
  }
  Table t = MakeBase(a, b);
  DeltaStore delta({TypeId::kInt64, TypeId::kInt32});
  for (uint64_t r = 0; r < 20000; r += 7) delta.Delete(r);
  for (int64_t i = 0; i < 500; i++) {
    ASSERT_TRUE(delta.Insert({2000 + i, int32_t(100000 + i)}).ok());
  }
  SimDisk disk;
  BufferManager bm(&disk, 1u << 30, Layout::kDSM);
  auto merged = Checkpoint(t, delta, &bm, ColumnCompression::kAuto);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  const Table& m = merged.ValueOrDie();
  // The checkpointed table scanned plain equals the merge-scan view.
  Collected before = CollectMergeScan(t, delta);
  DeltaStore empty({TypeId::kInt64, TypeId::kInt32});
  Collected after = CollectMergeScan(m, empty);
  EXPECT_EQ(before.a, after.a);
  EXPECT_EQ(before.b, after.b);
  EXPECT_EQ(m.rows(), 20000 - (20000 + 6) / 7 + 500);
}

TEST(DeltaStoreTest, FuzzAgainstReference) {
  Rng rng(17);
  std::vector<int64_t> a(5000);
  std::vector<int32_t> b(5000);
  for (size_t i = 0; i < a.size(); i++) {
    a[i] = int64_t(rng.Uniform(1u << 20));
    b[i] = int32_t(rng.Uniform(100));
  }
  Table t = MakeBase(a, b);
  DeltaStore delta({TypeId::kInt64, TypeId::kInt32});
  // Reference: base rows flagged live + appended rows.
  std::vector<bool> live(a.size(), true);
  std::vector<std::pair<int64_t, int32_t>> appended;
  for (int op = 0; op < 3000; op++) {
    double r = rng.NextDouble();
    if (r < 0.4) {
      uint64_t row = rng.Uniform(a.size());
      delta.Delete(row);
      live[row] = false;
    } else if (r < 0.8) {
      int64_t va = int64_t(rng.Uniform(1u << 21));
      int32_t vb = int32_t(rng.Uniform(1000));
      ASSERT_TRUE(delta.Insert({va, vb}).ok());
      appended.emplace_back(va, vb);
    } else {
      uint64_t row = rng.Uniform(a.size());
      int64_t va = -int64_t(rng.Uniform(100));
      ASSERT_TRUE(delta.Update(row, {va, 7}).ok());
      live[row] = false;
      appended.emplace_back(va, 7);
    }
  }
  Collected got = CollectMergeScan(t, delta);
  std::vector<int64_t> want_a;
  std::vector<int32_t> want_b;
  for (size_t i = 0; i < a.size(); i++) {
    if (live[i]) {
      want_a.push_back(a[i]);
      want_b.push_back(b[i]);
    }
  }
  for (auto [va, vb] : appended) {
    want_a.push_back(va);
    want_b.push_back(vb);
  }
  EXPECT_EQ(got.a, want_a);
  EXPECT_EQ(got.b, want_b);
  EXPECT_GT(delta.ApproxBytes(), 0u);
  delta.Clear();
  EXPECT_EQ(delta.insert_count(), 0u);
}

// ---------------------------------------------------------------------------
// String dictionary
// ---------------------------------------------------------------------------

TEST(StringDictionaryTest, InternLookupRoundTrip) {
  StringDictionary dict;
  EXPECT_EQ(dict.Intern("MALE"), 0u);
  EXPECT_EQ(dict.Intern("FEMALE"), 1u);
  EXPECT_EQ(dict.Intern("MALE"), 0u);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.Lookup(1), "FEMALE");
  EXPECT_EQ(dict.Find("FEMALE"), 1u);
  EXPECT_EQ(dict.Find("OTHER"), StringDictionary::kNotFound);
}

TEST(StringDictionaryTest, ColumnEncodeDecodeThroughSegments) {
  // End-to-end: VARCHAR column -> codes -> compressed segment -> back.
  StringDictionary dict;
  std::vector<std::string> shipmodes = {"AIR",  "RAIL", "SHIP", "TRUCK",
                                        "MAIL", "FOB",  "REG AIR"};
  Rng rng(3);
  std::vector<std::string> column(50000);
  for (auto& s : column) s = shipmodes[rng.Uniform(shipmodes.size())];
  std::vector<int32_t> codes = dict.EncodeColumn(column);

  Table t(8192);
  ASSERT_TRUE(t.AddColumn<int32_t>("l_shipmode", codes,
                                   ColumnCompression::kAuto)
                  .ok());
  // 7 distinct values -> ~3 bits/value against 4 raw bytes.
  EXPECT_GT(t.CompressionRatio(), 8.0);

  SimDisk disk;
  BufferManager bm(&disk, 1u << 30, Layout::kDSM);
  TableScanOp scan(&t, &bm, {"l_shipmode"});
  Batch b;
  size_t pos = 0;
  while (size_t n = scan.Next(&b)) {
    const int32_t* got = b.col(0)->data<int32_t>();
    for (size_t i = 0; i < n; i++) {
      ASSERT_EQ(dict.Lookup(uint32_t(got[i])), column[pos + i]);
    }
    pos += n;
  }
  EXPECT_EQ(pos, column.size());
}

}  // namespace
}  // namespace scc
