#include <algorithm>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/segment_builder.h"
#include "core/segment_reader.h"
#include "engine/primitives.h"
#include "exec/parallel_scan.h"
#include "kernel_isa_test_util.h"
#include "storage/buffer_manager.h"
#include "storage/scan.h"
#include "storage/sim_disk.h"
#include "storage/table.h"
#include "util/rng.h"

// Compressed-domain selection pushdown tests. The reader-level battery is
// differential: SegmentReader::SelectBetween against decode-then-scalar-
// select over fuzzed segments of every scheme — with and without
// exceptions and summaries, on every supported kernel backend. On top sit
// format-validation negatives for the summary section and scan-level
// checks that TableScanOp / ParallelScan pushdown is invisible in results.

namespace scc {
namespace {

// Reference: decode the whole segment once, select scalar per query.
template <typename T>
void CheckSelectDifferential(const AlignedBuffer& seg,
                             const std::vector<T>& values, uint64_t seed,
                             int queries = 40) {
  auto reader = SegmentReader<T>::Open(seg.data(), seg.size());
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  const auto& r = reader.ValueOrDie();
  ASSERT_EQ(r.count(), values.size());
  const size_t n = values.size();
  Rng rng(seed);
  for (int q = 0; q < queries; q++) {
    const size_t start = rng.Uniform(n);
    const size_t len = 1 + rng.Uniform(n - start);
    // Sample the predicate bounds from the data so every selectivity from
    // empty to full shows up; occasionally push to the type limits.
    T a = values[rng.Uniform(n)];
    T b = values[rng.Uniform(n)];
    if (a > b) std::swap(a, b);
    if (rng.Bernoulli(0.1)) a = std::numeric_limits<T>::min();
    if (rng.Bernoulli(0.1)) b = std::numeric_limits<T>::max();
    if (rng.Bernoulli(0.1)) b = a;  // point query
    std::vector<uint32_t> want;
    for (size_t i = start; i < start + len; i++) {
      if (values[i] >= a && values[i] <= b) {
        want.push_back(uint32_t(i - start));
      }
    }
    for (KernelIsa isa : SupportedIsas()) {
      ScopedKernelIsa force(isa);
      std::vector<uint32_t> got(len, 0xCAFEF00D);
      const size_t cnt = r.SelectBetween(start, len, a, b, got.data());
      ASSERT_EQ(want.size(), cnt)
          << "isa=" << KernelIsaName(isa) << " q=" << q << " start=" << start
          << " len=" << len << " lo=" << int64_t(a) << " hi=" << int64_t(b);
      for (size_t i = 0; i < cnt; i++) {
        ASSERT_EQ(want[i], got[i])
            << "isa=" << KernelIsaName(isa) << " q=" << q << " i=" << i;
      }
    }
  }
  // Inverted bounds select nothing.
  if (n > 1) {
    std::vector<uint32_t> out(n);
    EXPECT_EQ(r.SelectBetween(0, n, T(1), T(0), out.data()), 0u);
  }
}

template <typename T>
std::vector<T> PForData(size_t n, int b, T base, double exc_rate,
                        uint64_t seed) {
  Rng rng(seed);
  std::vector<T> v(n);
  using U = std::make_unsigned_t<T>;
  const uint32_t mc = MaxCode(b);
  for (size_t i = 0; i < n; i++) {
    if (rng.Bernoulli(exc_rate)) {
      v[i] = T(U(base) + U(mc) + U(1 + rng.Uniform(1000)));
    } else {
      v[i] = T(U(base) + U(rng.Uniform(uint64_t(mc) + 1)));
    }
  }
  return v;
}

struct PForCase {
  size_t n;
  int b;
  double rate;
  bool summaries;
};

class PushdownPFor : public ::testing::TestWithParam<PForCase> {};

TEST_P(PushdownPFor, MatchesDecodeInt64) {
  auto [n, b, rate, summaries] = GetParam();
  auto in = PForData<int64_t>(n, b, int64_t(-500), rate, 31 * n + b);
  SegmentBuildOptions opts;
  opts.with_summaries = summaries;
  auto seg = SegmentBuilder<int64_t>::BuildPFor(
      in, PForParams<int64_t>{b, -500}, opts);
  ASSERT_TRUE(seg.ok()) << seg.status().ToString();
  CheckSelectDifferential(seg.ValueOrDie(), in, n + b);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PushdownPFor,
    ::testing::Values(PForCase{1, 8, 0.0, true}, PForCase{127, 8, 0.2, true},
                      PForCase{128, 8, 0.2, true},
                      PForCase{129, 8, 0.2, false},
                      PForCase{1000, 3, 0.0, true},
                      PForCase{5000, 8, 0.1, true},
                      PForCase{5000, 8, 0.1, false},
                      PForCase{3000, 12, 0.5, true},
                      PForCase{4096, 1, 0.05, true},
                      PForCase{2000, 27, 0.1, true},   // wide select kernels
                      PForCase{2000, 31, 0.1, true},
                      PForCase{1000, 0, 0.3, true},
                      PForCase{65536, 16, 0.01, true}));

TEST(Pushdown, PForNarrowTypesDecodeFallback) {
  // sizeof(T) < 4 never takes the code-interval kernel; still exact.
  auto in16 = PForData<int16_t>(3000, 7, int16_t(-100), 0.1, 77);
  auto seg16 = SegmentBuilder<int16_t>::BuildPFor(
      in16, PForParams<int16_t>{7, -100});
  ASSERT_TRUE(seg16.ok());
  CheckSelectDifferential(seg16.ValueOrDie(), in16, 16);

  std::vector<int8_t> in8(2000);
  Rng rng(5);
  for (auto& v : in8) v = int8_t(rng.Uniform(64)) - 32;
  auto seg8 = SegmentBuilder<int8_t>::BuildPFor(in8, PForParams<int8_t>{6, -32});
  ASSERT_TRUE(seg8.ok());
  CheckSelectDifferential(seg8.ValueOrDie(), in8, 8);
}

TEST(Pushdown, PForWrappingFrameFallsBackToDecode) {
  // Base near the type max: base + code wraps int32 ordering, so the
  // code-interval translation is invalid and the reader must decode.
  const int32_t base = std::numeric_limits<int32_t>::max() - 10;
  auto in = PForData<int32_t>(4000, 8, base, 0.05, 99);
  auto seg = SegmentBuilder<int32_t>::BuildPFor(
      in, PForParams<int32_t>{8, base});
  ASSERT_TRUE(seg.ok());
  CheckSelectDifferential(seg.ValueOrDie(), in, 32);
}

TEST(Pushdown, PForUnsignedFullWidth) {
  auto in = PForData<uint32_t>(3000, 20, 0u, 0.1, 123);
  auto seg = SegmentBuilder<uint32_t>::BuildPFor(in, PForParams<uint32_t>{20, 0});
  ASSERT_TRUE(seg.ok());
  CheckSelectDifferential(seg.ValueOrDie(), in, 20);
}

TEST(Pushdown, PForDeltaMatchesDecode) {
  // Mostly-sorted data with jumps: classic PFOR-DELTA shape (always the
  // decode fallback per group, but summaries still skip/accept groups).
  Rng rng(11);
  std::vector<int64_t> in(6000);
  int64_t acc = 0;
  for (auto& v : in) {
    acc += int64_t(rng.Uniform(20));
    if (rng.Bernoulli(0.02)) acc += int64_t(rng.Uniform(1 << 20));
    v = acc;
  }
  auto seg = SegmentBuilder<int64_t>::BuildPForDelta(
      in, PForParams<int64_t>{5, 0});
  ASSERT_TRUE(seg.ok());
  CheckSelectDifferential(seg.ValueOrDie(), in, 44);
}

TEST(Pushdown, PDictSmallDictUsesQualTable) {
  Rng rng(21);
  std::vector<int64_t> dict;
  for (int i = 0; i < 300; i++) dict.push_back(int64_t(i) * 37 - 4000);
  std::vector<int64_t> in(8000);
  for (auto& v : in) {
    v = rng.Bernoulli(0.08) ? int64_t(rng.Next() % 100000)  // exception
                            : dict[rng.Uniform(dict.size())];
  }
  auto seg = SegmentBuilder<int64_t>::BuildPDict(
      in, PDictParams<int64_t>{9, dict});
  ASSERT_TRUE(seg.ok()) << seg.status().ToString();
  CheckSelectDifferential(seg.ValueOrDie(), in, 21);
}

TEST(Pushdown, PDictOversizedDictDecodes) {
  // > 512 dictionary entries exceeds the qualifying-table budget.
  Rng rng(22);
  std::vector<int32_t> dict;
  for (int i = 0; i < 600; i++) dict.push_back(i * 13 - 3000);
  std::vector<int32_t> in(6000);
  for (auto& v : in) v = dict[rng.Uniform(dict.size())];
  auto seg = SegmentBuilder<int32_t>::BuildPDict(
      in, PDictParams<int32_t>{10, dict});
  ASSERT_TRUE(seg.ok()) << seg.status().ToString();
  CheckSelectDifferential(seg.ValueOrDie(), in, 22);
}

TEST(Pushdown, UncompressedScalarPath) {
  Rng rng(23);
  std::vector<int64_t> in(3000);
  for (auto& v : in) v = int64_t(rng.Next());
  auto seg = SegmentBuilder<int64_t>::BuildUncompressed(in);
  ASSERT_TRUE(seg.ok());
  CheckSelectDifferential(seg.ValueOrDie(), in, 23);
}

// ---------------------------------------------------------------------------
// Summary-section format validation.

TEST(PushdownFormat, SummariesPresentByDefaultAndSkippable) {
  std::vector<int64_t> in(1000, 7);
  auto with = SegmentBuilder<int64_t>::BuildPFor(in, PForParams<int64_t>{3, 0});
  ASSERT_TRUE(with.ok());
  SegmentBuildOptions opts;
  opts.with_summaries = false;
  auto without = SegmentBuilder<int64_t>::BuildPFor(
      in, PForParams<int64_t>{3, 0}, opts);
  ASSERT_TRUE(without.ok());
  auto r1 = SegmentReader<int64_t>::Open(with.ValueOrDie().data(),
                                         with.ValueOrDie().size());
  auto r2 = SegmentReader<int64_t>::Open(without.ValueOrDie().data(),
                                         without.ValueOrDie().size());
  EXPECT_TRUE(r1.ValueOrDie().has_summaries());
  EXPECT_FALSE(r2.ValueOrDie().has_summaries());
  EXPECT_GT(with.ValueOrDie().size(), without.ValueOrDie().size());
}

AlignedBuffer PatchHeader(const AlignedBuffer& orig,
                          void (*mutate)(SegmentHeader*)) {
  AlignedBuffer copy = orig;
  SegmentHeader hdr;
  std::memcpy(&hdr, copy.data(), sizeof(hdr));
  mutate(&hdr);
  std::memcpy(copy.data(), &hdr, sizeof(hdr));
  return copy;
}

TEST(PushdownFormat, BadSummaryFieldsRejected) {
  std::vector<int32_t> in(1000);
  for (size_t i = 0; i < in.size(); i++) in[i] = int32_t(i % 100);
  SegmentBuildOptions opts;
  opts.with_checksums = false;  // isolate structural validation
  auto seg = SegmentBuilder<int32_t>::BuildPFor(
      in, PForParams<int32_t>{7, 0}, opts);
  ASSERT_TRUE(seg.ok());
  const AlignedBuffer& good = seg.ValueOrDie();
  ASSERT_TRUE(SegmentReader<int32_t>::Open(good.data(), good.size()).ok());

  auto expect_reject = [&](AlignedBuffer bad, const char* what) {
    auto r = SegmentReader<int32_t>::Open(bad.data(), bad.size());
    EXPECT_FALSE(r.ok()) << what;
  };
  expect_reject(PatchHeader(good, [](SegmentHeader* h) {
                  h->summary_reserved = 1;
                }),
                "nonzero reserved word");
  expect_reject(PatchHeader(good, [](SegmentHeader* h) {
                  h->summary_offset += 1;  // breaks value-size alignment
                }),
                "unaligned summary_offset");
  expect_reject(PatchHeader(good, [](SegmentHeader* h) {
                  h->summary_offset = h->entries_offset;  // inside entries
                }),
                "summary overlaps entry points");
  expect_reject(PatchHeader(good, [](SegmentHeader* h) {
                  h->summary_offset = h->codes_offset;  // runs past codes
                }),
                "summary section past codes_offset");

  // Uncompressed segments must not claim a summary section at all.
  auto raw = SegmentBuilder<int32_t>::BuildUncompressed(in, opts);
  ASSERT_TRUE(raw.ok());
  expect_reject(PatchHeader(raw.ValueOrDie(), [](SegmentHeader* h) {
                  h->summary_offset = 64;
                }),
                "summary on uncompressed segment");
}

// ---------------------------------------------------------------------------
// Scan-level: pushdown must be invisible in results.

Table MakeTable(size_t rows, size_t chunk_values = 8192) {
  Table t(chunk_values);
  Rng rng(42);
  std::vector<int64_t> a(rows), b(rows);
  std::vector<int32_t> c(rows);
  for (size_t i = 0; i < rows; i++) {
    a[i] = int64_t(i);                         // monotone -> PFOR-DELTA
    b[i] = 5000 + int64_t(rng.Uniform(1000));  // clustered -> PFOR
    c[i] = int32_t(rng.Uniform(4));            // tiny domain -> PDICT/PFOR
  }
  SCC_CHECK(t.AddColumn<int64_t>("a", a, ColumnCompression::kAuto).ok(), "a");
  SCC_CHECK(t.AddColumn<int64_t>("b", b, ColumnCompression::kAuto).ok(), "b");
  SCC_CHECK(t.AddColumn<int32_t>("c", c, ColumnCompression::kAuto).ok(), "c");
  return t;
}

// Runs the scan with pushdown on `b` and compares selections + selected
// values against a plain scan filtered after decode.
void CheckScanPushdown(TableScanOp::Mode mode, int64_t lo, int64_t hi) {
  const size_t rows = 50000;
  Table t = MakeTable(rows);
  SimDisk d1, d2;
  BufferManager bm1(&d1, 1u << 30, Layout::kDSM);
  BufferManager bm2(&d2, 1u << 30, Layout::kDSM);
  TableScanOp pushed(&t, &bm1, {"b", "a", "c"}, mode);
  pushed.SetPushdownBetween("b", lo, hi);
  TableScanOp plain(&t, &bm2, {"b", "a", "c"}, mode);
  Batch pb, qb;
  SelVec want;
  size_t total = 0, matched = 0;
  while (true) {
    const size_t n1 = pushed.Next(&pb);
    const size_t n2 = plain.Next(&qb);
    ASSERT_EQ(n1, n2);
    if (n1 == 0) break;
    SelectBetween(qb.col(0)->data<int64_t>(), n2, lo, hi, &want);
    const SelVec& got = pushed.selection();
    ASSERT_EQ(want.count, got.count);
    for (size_t k = 0; k < want.count; k++) {
      const uint32_t i = want.idx[k];
      ASSERT_EQ(got.idx[k], i);
      // The pushdown batch contract: columns are valid at selected rows.
      ASSERT_EQ(pb.col(0)->data<int64_t>()[i], qb.col(0)->data<int64_t>()[i]);
      ASSERT_EQ(pb.col(1)->data<int64_t>()[i], qb.col(1)->data<int64_t>()[i]);
      ASSERT_EQ(pb.col(2)->data<int32_t>()[i], qb.col(2)->data<int32_t>()[i]);
    }
    total += n1;
    matched += want.count;
  }
  EXPECT_EQ(total, rows);
  EXPECT_GT(matched, 0u);
  EXPECT_LT(matched, rows);
}

TEST(ScanPushdown, VectorWiseMatchesPlainScan) {
  CheckScanPushdown(TableScanOp::Mode::kVectorWise, 5100, 5400);
}

TEST(ScanPushdown, PageWiseMatchesPlainScan) {
  CheckScanPushdown(TableScanOp::Mode::kPageWise, 5100, 5400);
}

TEST(ScanPushdown, EmptyAndFullRanges) {
  const size_t rows = 20000;
  Table t = MakeTable(rows);
  SimDisk disk;
  BufferManager bm(&disk, 1u << 30, Layout::kDSM);
  {
    TableScanOp scan(&t, &bm, {"b"});
    scan.SetPushdownBetween("b", 10, 20);  // below the data: empty
    Batch batch;
    size_t total = 0, sel = 0;
    while (size_t n = scan.Next(&batch)) {
      total += n;
      sel += scan.selection().count;
    }
    EXPECT_EQ(total, rows);
    EXPECT_EQ(sel, 0u);
  }
  {
    TableScanOp scan(&t, &bm, {"b"});
    scan.SetPushdownBetween("b", std::numeric_limits<int64_t>::min(),
                            std::numeric_limits<int64_t>::max());
    Batch batch;
    size_t sel = 0;
    while (scan.Next(&batch)) sel += scan.selection().count;
    EXPECT_EQ(sel, rows);  // all-qualify: every row selected
  }
}

TEST(ScanPushdown, ParallelScanMatchesSerial) {
  const size_t rows = 60000;
  Table t = MakeTable(rows);
  const int64_t lo = 5100, hi = 5400;

  // Serial reference: sum of `a` over qualifying rows.
  SimDisk d1;
  BufferManager bm1(&d1, 1u << 30, Layout::kDSM);
  TableScanOp ref(&t, &bm1, {"b", "a"});
  ref.SetPushdownBetween("b", lo, hi);
  Batch batch;
  int64_t want_sum = 0;
  size_t want_cnt = 0;
  while (ref.Next(&batch)) {
    const SelVec& sel = ref.selection();
    const int64_t* a = batch.col(1)->data<int64_t>();
    for (size_t k = 0; k < sel.count; k++) want_sum += a[sel.idx[k]];
    want_cnt += sel.count;
  }
  ASSERT_GT(want_cnt, 0u);

  for (unsigned threads : {1u, 4u}) {
    SimDisk d2;
    BufferManager bm2(&d2, 1u << 30, Layout::kDSM);
    ParallelScan::Options opt;
    opt.threads = threads;
    ParallelScan scan(&t, &bm2, {"b", "a"}, opt);
    scan.SetPushdownBetween("b", lo, hi);
    std::vector<int64_t> sums(scan.slot_count(), 0);
    std::vector<size_t> cnts(scan.slot_count(), 0);
    scan.Run([&](const Batch& b, size_t /*morsel*/, size_t slot) {
      const SelVec& sel = scan.selection(slot);
      const int64_t* a = b.col(1)->data<int64_t>();
      for (size_t k = 0; k < sel.count; k++) sums[slot] += a[sel.idx[k]];
      cnts[slot] += sel.count;
    });
    int64_t got_sum = 0;
    size_t got_cnt = 0;
    for (size_t s = 0; s < sums.size(); s++) {
      got_sum += sums[s];
      got_cnt += cnts[s];
    }
    EXPECT_EQ(want_sum, got_sum) << "threads=" << threads;
    EXPECT_EQ(want_cnt, got_cnt) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace scc
