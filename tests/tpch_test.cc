#include "tpch/queries.h"

#include <unordered_map>

#include <gtest/gtest.h>

#include "tpch/dbgen.h"

// TPC-H substrate tests: generator invariants, per-query correctness
// (compressed results must equal uncompressed results), and the storage
// effects the paper relies on (compression ratio ~3-4x on the query
// columns, DSM reading fewer bytes than PAX).

namespace scc {
namespace {

class TpchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new TpchData(GenerateTpch(0.002));
    compressed_ = new TpchDatabase(
        TpchDatabase::Build(*data_, ColumnCompression::kAuto, 4096));
    raw_ = new TpchDatabase(
        TpchDatabase::Build(*data_, ColumnCompression::kNone, 4096));
  }
  static void TearDownTestSuite() {
    delete data_;
    delete compressed_;
    delete raw_;
    data_ = nullptr;
    compressed_ = nullptr;
    raw_ = nullptr;
  }

  static TpchData* data_;
  static TpchDatabase* compressed_;
  static TpchDatabase* raw_;
};

TpchData* TpchTest::data_ = nullptr;
TpchDatabase* TpchTest::compressed_ = nullptr;
TpchDatabase* TpchTest::raw_ = nullptr;

TEST_F(TpchTest, GeneratorInvariants) {
  const auto& li = data_->lineitem;
  const auto& od = data_->orders;
  EXPECT_EQ(od.rows(), 3000u);
  EXPECT_GT(li.rows(), od.rows());      // 1..7 lines per order
  EXPECT_LT(li.rows(), od.rows() * 8);
  for (size_t i = 1; i < li.rows(); i++) {
    ASSERT_GE(li.orderkey[i], li.orderkey[i - 1]);  // clustered by order
  }
  for (size_t i = 0; i < li.rows(); i += 7) {
    ASSERT_GE(li.quantity[i], 1);
    ASSERT_LE(li.quantity[i], 50);
    ASSERT_GE(li.discount[i], 0);
    ASSERT_LE(li.discount[i], 10);
    ASSERT_GT(li.shipdate[i], li.orderkey.empty() ? 0 : -1);
    ASSERT_GT(li.receiptdate[i], li.shipdate[i]);
    ASSERT_EQ(li.extendedprice[i],
              data_->part.retailprice[li.partkey[i] - 1] * li.quantity[i]);
  }
  // Sparse orderkeys: 8 used per 32.
  EXPECT_GT(od.orderkey.back(), int64_t(od.rows()) * 3);
}

TEST_F(TpchTest, DateArithmetic) {
  EXPECT_EQ(TpchDate(1992, 1, 1), 0);
  EXPECT_EQ(TpchDate(1992, 2, 1), 31);
  EXPECT_EQ(TpchDate(1993, 1, 1), 366);  // 1992 is a leap year
  EXPECT_EQ(TpchDate(1995, 3, 15) - TpchDate(1995, 3, 1), 14);
  EXPECT_GT(TpchDate(1998, 8, 2), TpchDate(1998, 8, 1));
}

TEST_F(TpchTest, CompressionRatioInPaperBallpark) {
  // Query columns compress ~3-4x (Table 2's DSM ratio column).
  double ratio = compressed_->lineitem.CompressionRatio(
      {"l_shipdate", "l_returnflag", "l_linestatus", "l_quantity",
       "l_extendedprice", "l_discount", "l_tax"});
  EXPECT_GT(ratio, 2.0) << "lineitem Q1 columns";
  EXPECT_LT(ratio, 12.0);
  // The whole database shrinks, but comments hold the PAX ratio down.
  EXPECT_LT(compressed_->ByteSize(), raw_->ByteSize());
}

TEST_F(TpchTest, Q1ManualReference) {
  // Recompute Q1 with plain scalar code and compare aggregates.
  const auto& li = data_->lineitem;
  const int32_t cutoff = TpchDate(1998, 9, 2);
  int64_t count[8] = {0}, sum_qty[8] = {0};
  for (size_t i = 0; i < li.rows(); i++) {
    if (li.shipdate[i] > cutoff) continue;
    int g = li.returnflag[i] * 2 + li.linestatus[i];
    count[g]++;
    sum_qty[g] += li.quantity[i];
  }
  SimDisk disk;
  BufferManager bm(&disk, 1u << 30, Layout::kDSM);
  QueryStats s =
      RunTpchQuery(1, *compressed_, &bm, TableScanOp::Mode::kVectorWise);
  size_t nonempty = 0;
  for (int g = 0; g < 8; g++) nonempty += (count[g] > 0);
  EXPECT_EQ(s.result_rows, nonempty);
  // Checksum covers the full aggregate set; recompute it here for the
  // two heaviest groups at least via the public stats.
  EXPECT_GT(s.checksum, 0u);
}

TEST_F(TpchTest, AllQueriesAgreeCompressedVsUncompressed) {
  for (int q : TpchQuerySet()) {
    SimDisk d1, d2;
    BufferManager bm1(&d1, 1u << 30, Layout::kDSM);
    BufferManager bm2(&d2, 1u << 30, Layout::kDSM);
    QueryStats a =
        RunTpchQuery(q, *compressed_, &bm1, TableScanOp::Mode::kVectorWise);
    QueryStats b =
        RunTpchQuery(q, *raw_, &bm2, TableScanOp::Mode::kVectorWise);
    EXPECT_EQ(a.checksum, b.checksum) << "Q" << q;
    EXPECT_EQ(a.result_rows, b.result_rows) << "Q" << q;
    // Compression reads fewer bytes for the same answer.
    EXPECT_LT(d1.bytes_read(), d2.bytes_read()) << "Q" << q;
  }
}

TEST_F(TpchTest, PageWiseAgreesWithVectorWise) {
  for (int q : {1, 6, 18}) {
    SimDisk d1, d2;
    BufferManager bm1(&d1, 1u << 30, Layout::kDSM);
    BufferManager bm2(&d2, 1u << 30, Layout::kDSM);
    QueryStats a =
        RunTpchQuery(q, *compressed_, &bm1, TableScanOp::Mode::kVectorWise);
    QueryStats b =
        RunTpchQuery(q, *compressed_, &bm2, TableScanOp::Mode::kPageWise);
    EXPECT_EQ(a.checksum, b.checksum) << "Q" << q;
  }
}

TEST_F(TpchTest, PaxReadsMoreThanDsm) {
  // A narrow query over a wide table: PAX must fetch whole row groups.
  SimDisk d1, d2;
  BufferManager dsm(&d1, 1u << 30, Layout::kDSM);
  BufferManager pax(&d2, 1u << 30, Layout::kPAX);
  QueryStats a =
      RunTpchQuery(6, *compressed_, &dsm, TableScanOp::Mode::kVectorWise);
  QueryStats b =
      RunTpchQuery(6, *compressed_, &pax, TableScanOp::Mode::kVectorWise);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_GT(d2.bytes_read(), d1.bytes_read() * 3);
}

TEST_F(TpchTest, Q6ManualReference) {
  const auto& li = data_->lineitem;
  const int32_t lo = TpchDate(1994, 1, 1), hi = TpchDate(1995, 1, 1);
  int64_t revenue = 0;
  size_t qualifying = 0;
  for (size_t i = 0; i < li.rows(); i++) {
    if (li.shipdate[i] >= lo && li.shipdate[i] < hi && li.discount[i] >= 5 &&
        li.discount[i] <= 7 && li.quantity[i] < 24) {
      revenue += li.extendedprice[i] * li.discount[i];
      qualifying++;
    }
  }
  EXPECT_GT(qualifying, 0u);  // the filter actually selects something
  SimDisk disk;
  BufferManager bm(&disk, 1u << 30, Layout::kDSM);
  QueryStats s =
      RunTpchQuery(6, *compressed_, &bm, TableScanOp::Mode::kVectorWise);
  uint64_t expect = 0;
  auto mix = [](uint64_t* h, uint64_t v) {
    *h = (*h ^ v) * 0x100000001B3ull;
    *h ^= *h >> 31;
  };
  mix(&expect, uint64_t(revenue));
  EXPECT_EQ(s.checksum, expect);
}

TEST_F(TpchTest, Q21ManualReference) {
  // Scalar reference for the correlated EXISTS / NOT EXISTS pair.
  const auto& li = data_->lineitem;
  const auto& od = data_->orders;
  const auto& su = data_->supplier;
  constexpr int kNationSaudi = 20;
  // Order -> status.
  std::unordered_map<int64_t, int8_t> status;
  for (size_t i = 0; i < od.rows(); i++) status[od.orderkey[i]] = od.orderstatus[i];
  // Group lines by order (clustered).
  std::vector<int64_t> numwait(su.rows() + 1, 0);
  size_t i = 0;
  while (i < li.rows()) {
    size_t j = i;
    while (j < li.rows() && li.orderkey[j] == li.orderkey[i]) j++;
    if (status[li.orderkey[i]] == 1) {
      bool multi_supplier = false;
      int32_t late_supp = -1;
      bool multi_late = false;
      for (size_t k = i; k < j; k++) {
        if (li.suppkey[k] != li.suppkey[i]) multi_supplier = true;
        if (li.receiptdate[k] > li.commitdate[k]) {
          if (late_supp < 0) late_supp = li.suppkey[k];
          else if (late_supp != li.suppkey[k]) multi_late = true;
        }
      }
      if (multi_supplier && late_supp >= 0 && !multi_late &&
          su.nationkey[late_supp - 1] == kNationSaudi) {
        for (size_t k = i; k < j; k++) {
          if (li.receiptdate[k] > li.commitdate[k]) numwait[late_supp]++;
        }
      }
    }
    i = j;
  }
  int64_t total_wait = 0;
  size_t suppliers = 0;
  for (int64_t w : numwait) {
    total_wait += w;
    suppliers += (w > 0);
  }
  SimDisk disk;
  BufferManager bm(&disk, 1u << 30, Layout::kDSM);
  QueryStats s =
      RunTpchQuery(21, *compressed_, &bm, TableScanOp::Mode::kVectorWise);
  EXPECT_EQ(s.result_rows, std::min<size_t>(100, suppliers));
  // The checksum is over (suppkey, numwait) pairs; spot-verify via the
  // uncompressed run (covered by AllQueriesAgree) and the row count here.
  EXPECT_GT(total_wait, 0);
}

TEST_F(TpchTest, StatsAccounting) {
  SimDisk disk(SimDisk::LowEndRaid());
  BufferManager bm(&disk, 1u << 30, Layout::kDSM);
  QueryStats s =
      RunTpchQuery(1, *compressed_, &bm, TableScanOp::Mode::kVectorWise);
  EXPECT_GT(s.cpu_seconds, 0.0);
  EXPECT_GE(s.cpu_seconds, s.decompress_seconds);
  EXPECT_GT(s.io_seconds, 0.0);
  EXPECT_GT(s.bytes_read, 0u);
  EXPECT_EQ(s.TotalSeconds(), std::max(s.cpu_seconds, s.io_seconds));
}

TEST_F(TpchTest, QueryColumnsCoverEveryQuery) {
  for (int q : TpchQuerySet()) {
    auto cols = QueryColumns(q);
    EXPECT_FALSE(cols.empty()) << "Q" << q;
    for (const auto& [table, col] : cols) {
      const Table* t = nullptr;
      if (table == "lineitem") t = &compressed_->lineitem;
      if (table == "orders") t = &compressed_->orders;
      if (table == "customer") t = &compressed_->customer;
      if (table == "supplier") t = &compressed_->supplier;
      if (table == "part") t = &compressed_->part;
      if (table == "partsupp") t = &compressed_->partsupp;
      ASSERT_NE(t, nullptr) << table;
      EXPECT_NE(t->column(col), nullptr) << table << "." << col;
    }
  }
}

}  // namespace
}  // namespace scc
