#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/analyzer.h"
#include "core/kernels.h"
#include "core/segment_builder.h"
#include "core/segment_reader.h"
#include "kernel_isa_test_util.h"
#include "util/rng.h"
#include "util/zipf.h"

// Property-based suites over randomized inputs:
//   * structural invariants of the segment format (entry-point
//     monotonicity, in-group gap bounds, section bounds)
//   * equivalence of the production segment path with the flat Section-3
//     kernels and with a scalar reference
//   * point access == range access == full decode, for every scheme
//   * approximate optimality of the analyzer against a brute-force grid
//
// Distributions are drawn per-iteration from a family of generators so
// each run covers uniform, clustered, monotone, zipfian and adversarial
// shapes.

namespace scc {
namespace {

// A distribution family indexed by `kind`.
std::vector<int64_t> MakeDistribution(int kind, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> v(n);
  switch (kind % 6) {
    case 0:  // uniform small domain
      for (auto& x : v) x = int64_t(rng.Uniform(1000));
      break;
    case 1:  // clustered with outliers
      for (auto& x : v) {
        x = 500000 + int64_t(rng.Uniform(300));
        if (rng.Bernoulli(0.02)) x = int64_t(rng.Next());
      }
      break;
    case 2: {  // monotone with jumps
      int64_t acc = -1000;
      for (auto& x : v) {
        acc += int64_t(rng.Uniform(50));
        if (rng.Bernoulli(0.01)) acc += 1 << 20;
        x = acc;
      }
      break;
    }
    case 3: {  // zipf-skewed domain
      ZipfGenerator zipf(2000, 1.2, seed + 1);
      for (auto& x : v) x = int64_t(zipf.Next()) * 7919 - 40000;
      break;
    }
    case 4:  // adversarial: alternating tiny/huge
      for (size_t i = 0; i < n; i++) {
        v[i] = (i % 2 == 0) ? int64_t(i % 7) : (int64_t(1) << 50) + int64_t(i);
      }
      break;
    default:  // constant with a single outlier
      std::fill(v.begin(), v.end(), 123456);
      if (n > 3) v[n / 3] = -987654321;
      break;
  }
  return v;
}

class SegmentPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SegmentPropertyTest, AnalyzeBuildDecodeScalarReference) {
  const int kind = GetParam();
  for (size_t n : {size_t(1), size_t(257), size_t(5000), size_t(40000)}) {
    auto v = MakeDistribution(kind, n, kind * 1000 + n);
    auto choice = Analyzer<int64_t>::Analyze(
        std::span<const int64_t>(v.data(), std::min(n, size_t(16384))));
    auto seg = SegmentBuilder<int64_t>::Build(v, choice);
    ASSERT_TRUE(seg.ok()) << choice.ToString();
    auto reader = SegmentReader<int64_t>::Open(seg.ValueOrDie().data(),
                                               seg.ValueOrDie().size());
    ASSERT_TRUE(reader.ok());
    const auto& r = reader.ValueOrDie();
    std::vector<int64_t> out(n);
    r.DecompressAll(out.data());
    ASSERT_EQ(out, v) << "kind=" << kind << " n=" << n << " "
                      << choice.ToString();
  }
}

TEST_P(SegmentPropertyTest, PointRangeFullDecodeAgree) {
  const int kind = GetParam();
  const size_t n = 10000;
  auto v = MakeDistribution(kind, n, kind * 77 + 5);
  for (Scheme scheme : {Scheme::kPFor, Scheme::kPForDelta}) {
    CompressionChoice<int64_t> choice;
    choice.scheme = scheme;
    choice.pfor = PForParams<int64_t>{7, 0};
    auto seg = SegmentBuilder<int64_t>::Build(v, choice);
    ASSERT_TRUE(seg.ok());
    auto reader = SegmentReader<int64_t>::Open(seg.ValueOrDie().data(),
                                               seg.ValueOrDie().size());
    ASSERT_TRUE(reader.ok());
    const auto& r = reader.ValueOrDie();
    std::vector<int64_t> full(n);
    r.DecompressAll(full.data());
    ASSERT_EQ(full, v);
    Rng rng(3);
    for (int t = 0; t < 200; t++) {
      size_t i = rng.Uniform(n);
      ASSERT_EQ(r.Get(i), v[i]) << SchemeName(scheme) << " i=" << i;
      size_t len = 1 + rng.Uniform(300);
      if (i + len > n) len = n - i;
      std::vector<int64_t> range(len);
      r.DecompressRange(i, len, range.data());
      for (size_t k = 0; k < len; k++) {
        ASSERT_EQ(range[k], v[i + k]) << SchemeName(scheme);
      }
    }
  }
}

TEST_P(SegmentPropertyTest, StructuralInvariants) {
  const int kind = GetParam();
  const size_t n = 128 * 100 + 37;
  auto v = MakeDistribution(kind, n, kind + 123);
  const int b = 5;
  auto seg = SegmentBuilder<int64_t>::BuildPFor(v, PForParams<int64_t>{b, 0});
  ASSERT_TRUE(seg.ok());
  const AlignedBuffer& buf = seg.ValueOrDie();
  SegmentHeader hdr;
  std::memcpy(&hdr, buf.data(), sizeof(hdr));
  ASSERT_TRUE(hdr.Validate(buf.size()).ok());

  const uint32_t* entries =
      reinterpret_cast<const uint32_t*>(buf.data() + hdr.entries_offset);
  // Entry-point exception indices are cumulative and monotone; the final
  // group's range ends at exception_count.
  uint32_t prev = 0;
  for (uint32_t g = 0; g < hdr.entry_count; g++) {
    uint32_t idx = EntryExceptionIndex(entries[g]);
    ASSERT_GE(idx, prev) << "group " << g;
    ASSERT_LE(idx, hdr.exception_count);
    uint32_t first = EntryFirstOffset(entries[g]);
    ASSERT_TRUE(first == kNoException || first < kEntryGroup);
    prev = idx;
  }
  // Walk every group's list: gaps must respect 2^b and stay in-group.
  std::vector<uint32_t> codes(AlignUp(n, 32));
  BitUnpack(reinterpret_cast<const uint32_t*>(buf.data() + hdr.codes_offset),
            n, b, codes.data());
  for (uint32_t g = 0; g < hdr.entry_count; g++) {
    const size_t glo = size_t(g) * kEntryGroup;
    const size_t glen = std::min(kEntryGroup, n - glo);
    uint32_t first = EntryFirstOffset(entries[g]);
    uint32_t count =
        (g + 1 < hdr.entry_count ? EntryExceptionIndex(entries[g + 1])
                                 : hdr.exception_count) -
        EntryExceptionIndex(entries[g]);
    if (count == 0) continue;
    size_t cur = first;
    for (uint32_t k = 0; k < count; k++) {
      ASSERT_LT(cur, glen) << "group " << g;
      size_t gap = size_t(codes[glo + cur]) + 1;
      ASSERT_LE(gap, MaxExceptionGap(b));
      cur += gap;
    }
  }
}

TEST_P(SegmentPropertyTest, SegmentMatchesFlatKernels) {
  // The production segment pipeline and the flat Section-3 kernels must
  // agree on the decoded values for PFOR.
  const int kind = GetParam();
  const size_t n = 4096;  // one flat block, multiple segment groups
  auto v = MakeDistribution(kind, n, kind * 31 + 9);
  const int b = 9;
  const int64_t base = 0;

  std::vector<uint32_t> code(n), miss(n);
  std::vector<int64_t> exc(n), flat_out(n);
  size_t first = 0;
  size_t nexc = CompressPred(v.data(), n, b, base, code.data(), exc.data(),
                             &first, miss.data());
  DecompressPatched(code.data(), n, ForCodec<int64_t>(base), exc.data(),
                    first, nexc, flat_out.data());

  auto seg = SegmentBuilder<int64_t>::BuildPFor(v, PForParams<int64_t>{b, base});
  ASSERT_TRUE(seg.ok());
  auto reader = SegmentReader<int64_t>::Open(seg.ValueOrDie().data(),
                                             seg.ValueOrDie().size());
  std::vector<int64_t> seg_out(n);
  reader.ValueOrDie().DecompressAll(seg_out.data());

  ASSERT_EQ(flat_out, v);
  ASSERT_EQ(seg_out, v);
  // The segment may hold a few more exceptions (gaps bounded per group,
  // lists restart); never fewer than the data demands.
  EXPECT_GE(reader.ValueOrDie().exception_count() + 2 * n / kEntryGroup + 2,
            nexc);
}

TEST_P(SegmentPropertyTest, BackendsAgreeOnSegmentDecode) {
  // The dispatched SIMD backends must decode every scheme byte-identically
  // to the scalar backend — fused unpack+FOR, gap recovery from decoded
  // output, prefix sum, everything.
  const int kind = GetParam();
  for (size_t n : {size_t(1), size_t(129), size_t(4096), size_t(20000)}) {
    auto v = MakeDistribution(kind, n, kind * 311 + n);
    auto choice = Analyzer<int64_t>::Analyze(
        std::span<const int64_t>(v.data(), std::min(n, size_t(16384))));
    auto seg = SegmentBuilder<int64_t>::Build(v, choice);
    ASSERT_TRUE(seg.ok());
    auto reader = SegmentReader<int64_t>::Open(seg.ValueOrDie().data(),
                                               seg.ValueOrDie().size());
    ASSERT_TRUE(reader.ok());
    const auto& r = reader.ValueOrDie();
    std::vector<int64_t> want(n);
    {
      ScopedKernelIsa force(KernelIsa::kScalar);
      r.DecompressAll(want.data());
    }
    ASSERT_EQ(want, v);
    for (KernelIsa isa : SupportedIsas()) {
      ScopedKernelIsa force(isa);
      std::vector<int64_t> got(n, -1);
      r.DecompressAll(got.data());
      ASSERT_EQ(want, got) << "isa=" << KernelIsaName(isa) << " kind="
                           << kind << " n=" << n << " " << choice.ToString();
    }
  }
}

TEST_P(SegmentPropertyTest, BackendsAgreeOnFlatKernels) {
  // DecompressPatched / DecompressPatchedDelta differential across every
  // supported backend, for both value widths with dedicated kernels.
  const int kind = GetParam();
  const size_t n = 4096 + 37;
  auto v64 = MakeDistribution(kind, n, kind * 13 + 1);
  std::vector<int32_t> v32(n);
  for (size_t i = 0; i < n; i++) v32[i] = int32_t(v64[i]);
  const int b = 7;
  auto check = [&](auto tag) {
    using T = decltype(tag);
    std::vector<T> in(n);
    for (size_t i = 0; i < n; i++) in[i] = T(v64[i]);
    std::vector<uint32_t> code(n), miss(n);
    std::vector<T> exc(n);
    size_t first = 0;
    const T base = T(0);
    size_t nexc = CompressPred(in.data(), n, b, base, code.data(),
                               exc.data(), &first, miss.data());
    // Delta input: the same codes interpreted as deltas is still a valid
    // stream; compare backends against scalar rather than round-trip.
    std::vector<T> want(n), want_delta(n);
    {
      ScopedKernelIsa force(KernelIsa::kScalar);
      DecompressPatched(code.data(), n, ForCodec<T>(base), exc.data(),
                        first, nexc, want.data());
      DecompressPatchedDelta(code.data(), n, ForCodec<T>(base), exc.data(),
                             first, nexc, T(42), want_delta.data());
    }
    ASSERT_EQ(want, in);
    for (KernelIsa isa : SupportedIsas()) {
      ScopedKernelIsa force(isa);
      std::vector<T> got(n), got_delta(n);
      DecompressPatched(code.data(), n, ForCodec<T>(base), exc.data(),
                        first, nexc, got.data());
      DecompressPatchedDelta(code.data(), n, ForCodec<T>(base), exc.data(),
                             first, nexc, T(42), got_delta.data());
      ASSERT_EQ(want, got) << "isa=" << KernelIsaName(isa) << " kind="
                           << kind << " width=" << sizeof(T);
      ASSERT_EQ(want_delta, got_delta)
          << "isa=" << KernelIsaName(isa) << " kind=" << kind
          << " width=" << sizeof(T);
    }
  };
  check(int32_t(0));
  check(int64_t(0));
}

INSTANTIATE_TEST_SUITE_P(Distributions, SegmentPropertyTest,
                         ::testing::Range(0, 12));

TEST(AnalyzerProperty, ChoiceNearBruteForceOptimum) {
  // The analyzer's pick must achieve a compressed size within 15% of the
  // best over a brute-force grid of (scheme, bit width) alternatives.
  for (int kind = 0; kind < 6; kind++) {
    const size_t n = 30000;
    auto v = MakeDistribution(kind, n, kind * 7 + 2);
    auto choice = Analyzer<int64_t>::Analyze(
        std::span<const int64_t>(v.data(), 16384));
    auto chosen = SegmentBuilder<int64_t>::Build(v, choice);
    ASSERT_TRUE(chosen.ok());
    size_t best = SIZE_MAX;
    for (int b = 0; b <= 24; b += (b < 8 ? 1 : 4)) {
      // PFOR at the column minimum.
      int64_t mn = *std::min_element(v.begin(), v.end());
      auto p = SegmentBuilder<int64_t>::BuildPFor(v, PForParams<int64_t>{b, mn});
      if (p.ok()) best = std::min(best, p.ValueOrDie().size());
      auto d = SegmentBuilder<int64_t>::BuildPForDelta(
          v, PForParams<int64_t>{b, 0});
      if (d.ok()) best = std::min(best, d.ValueOrDie().size());
    }
    auto raw = SegmentBuilder<int64_t>::BuildUncompressed(v);
    best = std::min(best, raw.ValueOrDie().size());
    EXPECT_LE(double(chosen.ValueOrDie().size()), double(best) * 1.15 + 1024)
        << "kind=" << kind << " " << choice.ToString();
  }
}

}  // namespace
}  // namespace scc
