#include <vector>

#include <gtest/gtest.h>

#include "core/segment_builder.h"
#include "core/segment_reader.h"
#include "engine/primitives.h"
#include "util/rng.h"

// Compressed execution (paper Section 2.1): evaluating predicates
// directly on the integer codes of a dictionary-compressed column
// ("gender = 1 instead of gender = FEMALE"), falling back to stored
// exception values only where the patch list says so. These tests prove
// the code-level scan selects exactly the same rows as a full
// decompress-then-compare plan.

namespace scc {
namespace {

TEST(CompressedExec, CodesMatchEncoding) {
  // PFOR: codes must be value - base wherever the position is not an
  // exception.
  Rng rng(1);
  std::vector<int32_t> values(10000);
  for (auto& v : values) {
    v = 100 + int32_t(rng.Uniform(200));
    if (rng.Bernoulli(0.05)) v = 1 << 25;
  }
  auto seg = SegmentBuilder<int32_t>::BuildPFor(values,
                                                PForParams<int32_t>{8, 100});
  ASSERT_TRUE(seg.ok());
  auto reader = SegmentReader<int32_t>::Open(seg.ValueOrDie().data(),
                                             seg.ValueOrDie().size());
  ASSERT_TRUE(reader.ok());
  const auto& r = reader.ValueOrDie();

  std::vector<uint32_t> codes(values.size());
  std::vector<uint32_t> exc_pos;
  ASSERT_TRUE(r.DecompressCodes(0, values.size(), codes.data(), &exc_pos).ok());
  std::vector<bool> is_exc(values.size(), false);
  for (uint32_t p : exc_pos) is_exc[p] = true;
  size_t checked = 0;
  for (size_t i = 0; i < values.size(); i++) {
    if (!is_exc[i]) {
      ASSERT_EQ(int32_t(codes[i]) + 100, values[i]) << i;
      checked++;
    }
  }
  EXPECT_GT(checked, values.size() / 2);
  EXPECT_EQ(exc_pos.size(), r.exception_count());
}

TEST(CompressedExec, SelectionOnDictCodesEqualsFullDecode) {
  // A low-cardinality "shipmode" column compressed with PDICT; select
  // rows equal to one dictionary value by comparing codes only.
  std::vector<int64_t> dict = {111, 222, 333, 444};
  Rng rng(2);
  std::vector<int64_t> values(200000);
  for (auto& v : values) {
    v = rng.Bernoulli(0.02) ? int64_t(rng.Uniform(1u << 30)) + 1000
                            : dict[rng.Uniform(dict.size())];
  }
  auto seg = SegmentBuilder<int64_t>::BuildPDict(
      values, PDictParams<int64_t>{2, dict});
  ASSERT_TRUE(seg.ok());
  auto reader = SegmentReader<int64_t>::Open(seg.ValueOrDie().data(),
                                             seg.ValueOrDie().size());
  ASSERT_TRUE(reader.ok());
  const auto& r = reader.ValueOrDie();

  // Plan A (classical): decompress everything, compare values.
  std::vector<int64_t> decoded(values.size());
  r.DecompressAll(decoded.data());
  std::vector<uint32_t> want;
  for (size_t i = 0; i < decoded.size(); i++) {
    if (decoded[i] == 333) want.push_back(uint32_t(i));
  }

  // Plan B (compressed execution): compare codes against Find(333) == 2,
  // overriding the exception positions with their stored values.
  std::vector<uint32_t> codes(values.size());
  std::vector<uint32_t> exc_pos;
  ASSERT_TRUE(r.DecompressCodes(0, values.size(), codes.data(), &exc_pos).ok());
  // Exception positions carry gap codes; mask them out of the code scan.
  for (uint32_t p : exc_pos) codes[p] = 0xFFFFFFFFu;
  std::vector<uint32_t> got;
  for (size_t i = 0; i < codes.size(); i++) {
    if (codes[i] == 2) got.push_back(uint32_t(i));
  }
  // Exceptions can never equal a dictionary member by construction of
  // PDICT (values in the dictionary are always encoded); verify anyway.
  for (uint32_t p : exc_pos) {
    if (r.Get(p) == 333) got.push_back(p);
  }
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, want);

  // The dictionary accessor exposes decode without materialization.
  ASSERT_EQ(r.dict_size(), dict.size());
  EXPECT_EQ(r.dictionary()[2], 333);
}

TEST(CompressedExec, RangeSubsets) {
  Rng rng(3);
  std::vector<int32_t> values(3000);
  for (auto& v : values) v = int32_t(rng.Uniform(64));
  values[100] = 1 << 20;
  values[2500] = 1 << 21;
  auto seg =
      SegmentBuilder<int32_t>::BuildPFor(values, PForParams<int32_t>{6, 0});
  ASSERT_TRUE(seg.ok());
  auto reader = SegmentReader<int32_t>::Open(seg.ValueOrDie().data(),
                                             seg.ValueOrDie().size());
  const auto& r = reader.ValueOrDie();
  // Unaligned window covering the first exception only.
  std::vector<uint32_t> codes(300);
  std::vector<uint32_t> exc_pos;
  ASSERT_TRUE(r.DecompressCodes(50, 300, codes.data(), &exc_pos).ok());
  ASSERT_EQ(exc_pos.size(), 1u);
  EXPECT_EQ(exc_pos[0], 50u);  // absolute 100 relative to start 50
  for (size_t i = 0; i < 300; i++) {
    if (i == 50) continue;
    ASSERT_EQ(int32_t(codes[i]), values[50 + i]);
  }
}

TEST(CompressedExec, DeltaSchemeRejected) {
  std::vector<int32_t> values = {1, 2, 3, 4};
  auto seg = SegmentBuilder<int32_t>::BuildPForDelta(
      values, PForParams<int32_t>{4, 0});
  ASSERT_TRUE(seg.ok());
  auto reader = SegmentReader<int32_t>::Open(seg.ValueOrDie().data(),
                                             seg.ValueOrDie().size());
  std::vector<uint32_t> codes(4);
  std::vector<uint32_t> exc_pos;
  EXPECT_FALSE(reader.ValueOrDie()
                   .DecompressCodes(0, 4, codes.data(), &exc_pos)
                   .ok());
}

}  // namespace
}  // namespace scc
