#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "bitpack/bitpack.h"
#include "core/analyzer.h"
#include "core/kernels.h"
#include "core/segment_builder.h"
#include "core/segment_reader.h"
#include "storage/bulk_load.h"
#include "kernel_isa_test_util.h"
#include "util/rng.h"

// Write-path differential battery (PR 5). The contract under test: the
// compression pipeline produces BYTE-IDENTICAL segments no matter which
// kernel ISA packs them, which flat-kernel variant finds the exceptions,
// or how many threads the bulk loader fans out — so replicas built on
// heterogeneous hardware can be compared by checksum alone.

namespace scc {
namespace {

// ---------------------------------------------------------------------------
// Reference packer: one bit at a time, no shared code with the kernels.
// ---------------------------------------------------------------------------

std::vector<uint32_t> ReferencePack(const std::vector<uint32_t>& in, int b) {
  std::vector<uint32_t> out(PackedByteSize(in.size(), b) / 4, 0);
  for (size_t i = 0; i < in.size(); i++) {
    const uint64_t mask = b == 32 ? ~uint64_t(0) : (uint64_t(1) << b) - 1;
    const uint64_t v = uint64_t(in[i]) & mask;
    const size_t bit0 = (i / 32) * size_t(b) * 32 + (i % 32) * size_t(b);
    for (int k = 0; k < b; k++) {
      const size_t bit = bit0 + size_t(k);
      if ((v >> k) & 1) out[bit / 32] |= uint32_t(1) << (bit % 32);
    }
  }
  return out;
}

TEST(PackKernelsDifferential, BitPackMatchesReferenceOnEveryIsa) {
  Rng rng(1);
  for (size_t n : {size_t(1), size_t(31), size_t(32), size_t(33),
                   size_t(127), size_t(128), size_t(129), size_t(1000),
                   size_t(4096)}) {
    std::vector<uint32_t> in(n);
    for (auto& v : in) v = uint32_t(rng.Next());
    for (int b = 0; b <= kMaxBitWidth; b++) {
      const std::vector<uint32_t> want = ReferencePack(in, b);
      for (KernelIsa isa : SupportedIsas()) {
        ScopedKernelIsa pin(isa);
        // Poisoned exact-size buffer: a kernel that skips pad lanes (or
        // fails to mask stray high bits) leaves 0xAB bytes behind.
        std::vector<uint32_t> got(want.size(), 0xABABABABu);
        uint32_t dummy;  // b == 0 packs zero bytes; keep the pointer valid
        BitPack(in.data(), n, b, got.empty() ? &dummy : got.data());
        ASSERT_TRUE(want == got)
            << "isa=" << KernelIsaName(isa) << " n=" << n << " b=" << b;
      }
    }
  }
}

TEST(PackKernelsDifferential, FusedForEncodeMatchesSubtractThenPack) {
  Rng rng(2);
  const uint32_t base32 = 0x80001234u;
  const uint64_t base64 = (uint64_t(1) << 41) + 17;
  for (size_t n : {size_t(1), size_t(32), size_t(33), size_t(127),
                   size_t(128), size_t(1000)}) {
    std::vector<uint32_t> in32(n);
    std::vector<uint64_t> in64(n);
    for (size_t i = 0; i < n; i++) {
      in32[i] = base32 + uint32_t(rng.Uniform(1u << 20));
      in64[i] = base64 + rng.Uniform(1u << 20);
    }
    for (int b : {0, 1, 5, 8, 12, 16, 20, 32}) {
      std::vector<uint32_t> codes32(n), codes64(n);
      for (size_t i = 0; i < n; i++) {
        codes32[i] = in32[i] - base32;
        codes64[i] = uint32_t(in64[i] - base64);
      }
      const std::vector<uint32_t> want32 = ReferencePack(codes32, b);
      const std::vector<uint32_t> want64 = ReferencePack(codes64, b);
      for (KernelIsa isa : SupportedIsas()) {
        ScopedKernelIsa pin(isa);
        std::vector<uint32_t> got(want32.size(), 0xABABABABu);
        uint32_t dummy;
        ForEncodePack32(in32.data(), n, b, base32,
                        got.empty() ? &dummy : got.data());
        ASSERT_TRUE(want32 == got)
            << "ForEncodePack32 isa=" << KernelIsaName(isa) << " n=" << n
            << " b=" << b;
        got.assign(want64.size(), 0xABABABABu);
        ForEncodePack64(in64.data(), n, b, base64,
                        got.empty() ? &dummy : got.data());
        ASSERT_TRUE(want64 == got)
            << "ForEncodePack64 isa=" << KernelIsaName(isa) << " n=" << n
            << " b=" << b;
      }
    }
  }
}

TEST(PackKernelsDifferential, DeltaEncodeInvertsPrefixSum) {
  Rng rng(3);
  for (size_t n : {size_t(1), size_t(7), size_t(64), size_t(1000)}) {
    std::vector<uint32_t> in32(n), d32(n, 0xDEADBEEFu);
    std::vector<uint64_t> in64(n), d64(n);
    uint32_t a32 = 100;
    uint64_t a64 = uint64_t(1) << 40;
    for (size_t i = 0; i < n; i++) {
      a32 += uint32_t(rng.Uniform(1000));
      a64 += rng.Uniform(1000);
      in32[i] = a32;
      in64[i] = a64;
    }
    for (KernelIsa isa : SupportedIsas()) {
      ScopedKernelIsa pin(isa);
      DeltaEncode32(in32.data(), n, 42, d32.data());
      DeltaEncode64(in64.data(), n, 7, d64.data());
      // prev seeds the first delta...
      EXPECT_EQ(d32[0], in32[0] - 42u) << KernelIsaName(isa);
      EXPECT_EQ(d64[0], in64[0] - 7u) << KernelIsaName(isa);
      for (size_t i = 1; i < n; i++) {
        ASSERT_EQ(d32[i], in32[i] - in32[i - 1]) << KernelIsaName(isa);
        ASSERT_EQ(d64[i], in64[i] - in64[i - 1]) << KernelIsaName(isa);
      }
      // ...and PrefixSum inverts the transform exactly.
      PrefixSum32(d32.data(), n, 42);
      PrefixSum64(d64.data(), n, 7);
      EXPECT_EQ(0, std::memcmp(d32.data(), in32.data(), n * 4));
      EXPECT_EQ(0, std::memcmp(d64.data(), in64.data(), n * 8));
    }
  }
}

// Exact-size HEAP buffers: under ASan, a pack kernel that writes even one
// byte past PackedByteSize(n, b) aborts the test. This is the write-side
// analog of BitUnpackExact's tail contract — SIMD kernels may only use
// their 16-byte write slack when the driver gives them staging room,
// never on the caller's buffer.
TEST(PackKernelsSlack, TrailingGroupNeverWritesPastPackedSize) {
  Rng rng(4);
  for (size_t n : {size_t(1), size_t(17), size_t(33), size_t(96),
                   size_t(100), size_t(129)}) {
    std::vector<uint32_t> in(n);
    for (auto& v : in) v = uint32_t(rng.Next());
    std::vector<uint64_t> big(n, (uint64_t(1) << 40) | 5);
    for (int b = 0; b <= kMaxBitWidth; b++) {
      const size_t words = PackedByteSize(n, b) / 4;
      for (KernelIsa isa : SupportedIsas()) {
        ScopedKernelIsa pin(isa);
        auto exact = std::make_unique<uint32_t[]>(words);
        BitPack(in.data(), n, b, exact.get());
        auto exact2 = std::make_unique<uint32_t[]>(words);
        ForEncodePack64(big.data(), n, b, uint64_t(1) << 40, exact2.get());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Segment-level byte identity.
// ---------------------------------------------------------------------------

template <typename T>
std::vector<uint8_t> BuildBytes(std::span<const T> values) {
  CompressionChoice<T> choice = Analyzer<T>::Analyze(values);
  auto seg = SegmentBuilder<T>::Build(values, choice);
  EXPECT_TRUE(seg.ok()) << seg.status().ToString();
  AlignedBuffer buf = seg.MoveValueOrDie();
  return std::vector<uint8_t>(buf.data(), buf.data() + buf.size());
}

TEST(SegmentPipelineCrossIsa, SegmentsAreByteIdenticalAcrossIsas) {
  Rng rng(5);
  const size_t n = 20000;
  // One column per scheme the analyzer can pick.
  std::vector<int64_t> pfor_vals(n), delta_vals(n), dict_vals(n);
  const std::vector<int64_t> domain = {1ll << 60, -(1ll << 59), 17, -42};
  int64_t acc = int64_t(1) << 41;
  for (size_t i = 0; i < n; i++) {
    pfor_vals[i] = 730000 + int64_t(rng.Uniform(1000));
    if (rng.Bernoulli(0.01)) pfor_vals[i] = int64_t(rng.Next());
    acc += 1 + int64_t(rng.Uniform(100));
    delta_vals[i] = acc;
    dict_vals[i] = domain[rng.Uniform(domain.size())];
  }
  for (std::span<const int64_t> column :
       {std::span<const int64_t>(pfor_vals), std::span<const int64_t>(delta_vals),
        std::span<const int64_t>(dict_vals)}) {
    std::vector<uint8_t> want;
    Scheme scheme{};
    for (KernelIsa isa : SupportedIsas()) {
      ScopedKernelIsa pin(isa);
      std::vector<uint8_t> got = BuildBytes(column);
      auto reader = SegmentReader<int64_t>::Open(got.data(), got.size());
      ASSERT_TRUE(reader.ok());
      if (want.empty()) {
        want = got;
        scheme = reader.ValueOrDie().scheme();
        continue;
      }
      // memcmp covers codes, exceptions, entry points, header — and the
      // v2 CRC32C section checksums, so replicas can diff by checksum.
      ASSERT_EQ(want.size(), got.size()) << KernelIsaName(isa);
      ASSERT_EQ(0, std::memcmp(want.data(), got.data(), want.size()))
          << "scheme=" << int(scheme) << " isa=" << KernelIsaName(isa);
    }
    // The three columns must actually exercise three different schemes.
    SCOPED_TRACE(int(scheme));
  }
}

TEST(SegmentPipelineCrossIsa, FusedAndPatchedPathsRoundTrip) {
  // Exception-free data takes the fused pack path; the same data with
  // planted outliers forces the patched path. Both must decode exactly.
  Rng rng(6);
  for (double rate : {0.0, 0.02}) {
    std::vector<int64_t> v(5000);
    for (auto& x : v) {
      x = 1000 + int64_t(rng.Uniform(4000));
      if (rate > 0 && rng.Bernoulli(rate)) x = int64_t(rng.Next());
    }
    for (KernelIsa isa : SupportedIsas()) {
      ScopedKernelIsa pin(isa);
      CompressionChoice<int64_t> choice = Analyzer<int64_t>::Analyze(v);
      auto seg = SegmentBuilder<int64_t>::Build(v, choice);
      ASSERT_TRUE(seg.ok());
      auto reader = SegmentReader<int64_t>::Open(seg.ValueOrDie().data(),
                                                 seg.ValueOrDie().size());
      ASSERT_TRUE(reader.ok());
      std::vector<int64_t> out(v.size());
      reader.ValueOrDie().DecompressAll(out.data());
      ASSERT_EQ(0, std::memcmp(v.data(), out.data(), v.size() * 8))
          << "rate=" << rate << " isa=" << KernelIsaName(isa);
    }
  }
}

// ---------------------------------------------------------------------------
// Flat-kernel variants.
// ---------------------------------------------------------------------------

TEST(FlatKernelCompress, PredAndDoubleCursorAreByteIdentical) {
  Rng rng(7);
  const int b = 8;
  const int64_t base = -500;
  for (double rate : {0.0, 0.05, 0.5}) {
    for (size_t n : {size_t(1), size_t(100), size_t(101), size_t(4096)}) {
      std::vector<int64_t> in(n);
      for (auto& x : in) {
        x = base + int64_t(rng.Uniform(200));
        if (rng.Bernoulli(rate)) x = base + 100000 + int64_t(rng.Uniform(50));
      }
      std::vector<uint32_t> code_p(n), code_d(n), miss0(n), miss1(n);
      std::vector<int64_t> exc_p(n), exc_d(n);
      size_t first_p = 0, first_d = 0;
      const size_t np = CompressPred(in.data(), n, b, base, code_p.data(),
                                     exc_p.data(), &first_p, miss0.data());
      const size_t nd =
          CompressDC(in.data(), n, b, base, code_d.data(), exc_d.data(),
                     &first_d, miss0.data(), miss1.data());
      // PRED and DC must agree bit for bit: same codes, same exception
      // stream, same list head. (NAIVE intentionally differs — escape
      // codes, not patch lists — so it is round-tripped below instead.)
      ASSERT_EQ(np, nd);
      ASSERT_EQ(first_p, first_d);
      ASSERT_EQ(0, std::memcmp(code_p.data(), code_d.data(), n * 4));
      ASSERT_EQ(0, std::memcmp(exc_p.data(), exc_d.data(), np * 8));
    }
  }
}

TEST(FlatKernelCompress, NaiveRoundTrips) {
  Rng rng(8);
  const int b = 8;
  const int64_t base = -500;
  for (double rate : {0.0, 0.3, 1.0}) {
    const size_t n = 4096;
    std::vector<int64_t> in(n);
    for (auto& x : in) {
      x = base + int64_t(rng.Uniform(200));
      if (rng.Bernoulli(rate)) x = base + 100000 + int64_t(rng.Uniform(50));
    }
    std::vector<uint32_t> code(n);
    std::vector<int64_t> exc(n), out(n);
    CompressNaive(in.data(), n, b, base, code.data(), exc.data());
    DecompressNaive(code.data(), n, b, ForCodec<int64_t>(base), exc.data(),
                    out.data());
    ASSERT_EQ(0, std::memcmp(in.data(), out.data(), n * 8));
  }
}

// ---------------------------------------------------------------------------
// Bulk-load determinism.
// ---------------------------------------------------------------------------

TEST(BulkLoadDeterminism, SegmentBytesIdenticalForEveryThreadCount) {
  Rng rng(9);
  const size_t rows = 300000, chunk = 16 * 1024;
  std::vector<int64_t> ts(rows), price(rows);
  int64_t t = int64_t(1) << 41;
  for (size_t i = 0; i < rows; i++) {
    t += int64_t(rng.Uniform(1u << 12));
    ts[i] = t;
    price[i] = 100 + int64_t(rng.Uniform(900));
    if (rng.Bernoulli(0.01)) price[i] = int64_t(rng.Uniform(1u << 30));
  }
  // The serial Table::AddColumn build is the reference.
  Table ref(chunk);
  ASSERT_TRUE(
      ref.AddColumn<int64_t>("ts", ts, ColumnCompression::kAuto).ok());
  ASSERT_TRUE(
      ref.AddColumn<int64_t>("price", price, ColumnCompression::kPFor).ok());
  for (unsigned threads : {1u, 2u, 8u}) {
    Table table(chunk);
    BulkLoadOptions opts;
    opts.threads = threads;
    opts.mode = ColumnCompression::kAuto;
    ASSERT_TRUE(BulkLoadColumn<int64_t>(&table, "ts", ts, opts).ok());
    opts.mode = ColumnCompression::kPFor;
    ASSERT_TRUE(BulkLoadColumn<int64_t>(&table, "price", price, opts).ok());
    ASSERT_EQ(table.rows(), ref.rows());
    for (size_t c = 0; c < ref.column_count(); c++) {
      const StoredColumn* want = ref.column(c);
      const StoredColumn* got = table.column(c);
      ASSERT_EQ(want->chunk_count(), got->chunk_count());
      for (size_t ci = 0; ci < want->chunk_count(); ci++) {
        ASSERT_EQ(want->chunks[ci].size(), got->chunks[ci].size());
        ASSERT_EQ(0,
                  std::memcmp(want->chunks[ci].data(), got->chunks[ci].data(),
                              want->chunks[ci].size()))
            << "threads=" << threads << " col=" << want->name
            << " chunk=" << ci;
      }
    }
  }
}

TEST(BulkLoadDeterminism, ChunkBuildErrorsPropagate) {
  // A column whose row count disagrees with the table must be rejected,
  // not silently adopted.
  Table table(1024);
  std::vector<int64_t> a(5000, 1), b(6000, 2);
  ASSERT_TRUE(BulkLoadColumn<int64_t>(&table, "a", a, {}).ok());
  EXPECT_FALSE(BulkLoadColumn<int64_t>(&table, "b", b, {}).ok());
  EXPECT_EQ(table.column_count(), 1u);
}

}  // namespace
}  // namespace scc
