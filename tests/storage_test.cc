#include "storage/scan.h"

#include <vector>

#include <gtest/gtest.h>

#include "storage/buffer_manager.h"
#include "storage/sim_disk.h"
#include "storage/table.h"
#include "util/rng.h"

// ColumnBM storage tests: chunked compressed tables, the LRU buffer
// manager under DSM and PAX layouts, the simulated disk's accounting, and
// the scan operator in both decompression modes.

namespace scc {
namespace {

Table MakeTable(size_t rows, ColumnCompression mode,
                size_t chunk_values = 8192) {
  Table t(chunk_values);
  Rng rng(42);
  std::vector<int64_t> a(rows), b(rows);
  std::vector<int32_t> c(rows);
  for (size_t i = 0; i < rows; i++) {
    a[i] = int64_t(i);                          // monotone -> PFOR-DELTA
    b[i] = 5000 + int64_t(rng.Uniform(1000));   // clustered -> PFOR
    c[i] = int32_t(rng.Uniform(4));             // tiny domain -> PDICT/PFOR
  }
  SCC_CHECK(t.AddColumn<int64_t>("a", a, mode).ok(), "a");
  SCC_CHECK(t.AddColumn<int64_t>("b", b, mode).ok(), "b");
  SCC_CHECK(t.AddColumn<int32_t>("c", c, mode).ok(), "c");
  return t;
}

TEST(TableTest, CompressionShrinksStorage) {
  Table comp = MakeTable(100000, ColumnCompression::kAuto);
  Table raw = MakeTable(100000, ColumnCompression::kNone);
  EXPECT_LT(comp.ByteSize() * 3, raw.ByteSize());
  EXPECT_GT(comp.CompressionRatio(), 3.0);
  EXPECT_NEAR(raw.CompressionRatio(), 1.0, 0.01);
}

TEST(TableTest, ChunkAccounting) {
  Table t = MakeTable(20000, ColumnCompression::kAuto, 8192);
  EXPECT_EQ(t.chunk_count(), 3u);
  EXPECT_EQ(t.column("a")->ChunkRows(0), 8192u);
  EXPECT_EQ(t.column("a")->ChunkRows(2), 20000u - 2 * 8192u);
  EXPECT_GT(t.RowGroupBytes(0), 0u);
}

TEST(TableTest, MismatchedRowCountRejected) {
  Table t;
  std::vector<int64_t> a(100), b(50);
  ASSERT_TRUE(t.AddColumn<int64_t>("a", a, ColumnCompression::kNone).ok());
  EXPECT_FALSE(t.AddColumn<int64_t>("b", b, ColumnCompression::kNone).ok());
}

TEST(SimDiskTest, TimeAccounting) {
  SimDisk disk(SimDisk::Config{100.0, 10.0});  // 100 MB/s, 10 ms seek
  disk.ReadChunk(100 * 1024 * 1024);
  EXPECT_NEAR(disk.io_seconds(), 1.01, 1e-6);
  EXPECT_EQ(disk.bytes_read(), size_t(100) * 1024 * 1024);
  EXPECT_EQ(disk.read_count(), 1u);
  disk.Reset();
  EXPECT_EQ(disk.io_seconds(), 0.0);
}

TEST(BufferManagerTest, DsmChargesOnlyTouchedColumns) {
  Table t = MakeTable(50000, ColumnCompression::kAuto, 8192);
  SimDisk disk;
  BufferManager bm(&disk, 1u << 30, Layout::kDSM);
  bm.Fetch(&t, t.column("a"), 0);
  EXPECT_EQ(disk.bytes_read(), t.column("a")->chunks[0].size());
  // Second fetch hits the cache: no more I/O.
  bm.Fetch(&t, t.column("a"), 0);
  EXPECT_EQ(disk.read_count(), 1u);
  EXPECT_EQ(bm.hits(), 1u);
}

TEST(BufferManagerTest, PaxChargesWholeRowGroup) {
  Table t = MakeTable(50000, ColumnCompression::kAuto, 8192);
  SimDisk disk;
  BufferManager bm(&disk, 1u << 30, Layout::kPAX);
  bm.Fetch(&t, t.column("a"), 0);
  EXPECT_EQ(disk.bytes_read(), t.RowGroupBytes(0));
  // Other columns of the same row group are now resident.
  bm.Fetch(&t, t.column("b"), 0);
  bm.Fetch(&t, t.column("c"), 0);
  EXPECT_EQ(disk.read_count(), 1u);
  EXPECT_EQ(bm.hits(), 2u);
}

TEST(BufferManagerTest, LruEvictsUnderPressure) {
  Table t = MakeTable(100000, ColumnCompression::kNone, 8192);
  size_t one_chunk = t.column("a")->chunks[0].size();
  SimDisk disk;
  // Room for only ~2 chunks.
  BufferManager bm(&disk, one_chunk * 2 + 100, Layout::kDSM);
  bm.Fetch(&t, t.column("a"), 0);
  bm.Fetch(&t, t.column("a"), 1);
  bm.Fetch(&t, t.column("a"), 2);  // evicts chunk 0
  bm.Fetch(&t, t.column("a"), 0);  // miss again
  EXPECT_EQ(disk.read_count(), 4u);
  EXPECT_LE(bm.resident_bytes(), one_chunk * 2 + 100);
}

TEST(BufferManagerTest, CountsEvictionsAndBytes) {
  Table t = MakeTable(100000, ColumnCompression::kNone, 8192);
  size_t one_chunk = t.column("a")->chunks[0].size();
  SimDisk disk;
  BufferManager bm(&disk, one_chunk * 2 + 100, Layout::kDSM);
  bm.Fetch(&t, t.column("a"), 0);
  bm.Fetch(&t, t.column("a"), 1);
  EXPECT_EQ(bm.evictions(), 0u);
  bm.Fetch(&t, t.column("a"), 2);  // evicts chunk 0
  bm.Fetch(&t, t.column("a"), 3);  // evicts chunk 1
  EXPECT_EQ(bm.evictions(), 2u);
  EXPECT_EQ(bm.evicted_bytes(), 2 * one_chunk);
  // bytes_read counts every miss, including re-reads after eviction.
  EXPECT_EQ(bm.bytes_read(), 4 * one_chunk);
  EXPECT_EQ(bm.bytes_read(), disk.bytes_read());
}

TEST(BufferManagerTest, PaxEvictionAccounting) {
  Table t = MakeTable(50000, ColumnCompression::kNone, 8192);
  SimDisk disk;
  // Capacity for exactly one full row group.
  BufferManager bm(&disk, t.RowGroupBytes(0), Layout::kPAX);
  bm.Fetch(&t, t.column("a"), 0);
  size_t resident0 = bm.resident_bytes();
  EXPECT_EQ(resident0, t.RowGroupBytes(0));
  // Fetching a different row group must push out the first one's columns.
  bm.Fetch(&t, t.column("a"), 1);
  EXPECT_EQ(bm.evictions(), t.column_count());
  EXPECT_EQ(bm.evicted_bytes(), resident0);
  EXPECT_EQ(bm.bytes_read(), t.RowGroupBytes(0) + t.RowGroupBytes(1));
}

TEST(BufferManagerTest, ItemLargerThanCapacityIsStillAdmitted) {
  Table t = MakeTable(100000, ColumnCompression::kNone, 8192);
  size_t one_chunk = t.column("a")->chunks[0].size();
  SimDisk disk;
  // Capacity below a single chunk: the manager overcommits rather than
  // refuse service, holding at most that one oversized item.
  BufferManager bm(&disk, one_chunk / 2, Layout::kDSM);
  const AlignedBuffer* seg = bm.Fetch(&t, t.column("a"), 0).ValueOrDie();
  ASSERT_NE(seg, nullptr);
  EXPECT_EQ(bm.resident_bytes(), one_chunk);  // over capacity by design
  // It stays cached until the next insert under pressure...
  bm.Fetch(&t, t.column("a"), 0);
  EXPECT_EQ(bm.hits(), 1u);
  // ...then becomes the first victim.
  bm.Fetch(&t, t.column("a"), 1);
  EXPECT_EQ(bm.evictions(), 1u);
  EXPECT_EQ(bm.evicted_bytes(), one_chunk);
  EXPECT_EQ(bm.resident_bytes(), one_chunk);  // only the new chunk
}

TEST(BufferManagerTest, ClearKeepsStatsResetStatsKeepsCache) {
  Table t = MakeTable(50000, ColumnCompression::kNone, 8192);
  SimDisk disk;
  BufferManager bm(&disk, 1u << 30, Layout::kDSM);
  bm.Fetch(&t, t.column("a"), 0);
  bm.Fetch(&t, t.column("a"), 0);
  EXPECT_EQ(bm.hits(), 1u);
  EXPECT_EQ(bm.misses(), 1u);

  // Clear() = power off the cache: pages gone, counters intact.
  bm.Clear();
  EXPECT_EQ(bm.resident_bytes(), 0u);
  EXPECT_EQ(bm.hits(), 1u);
  EXPECT_EQ(bm.misses(), 1u);
  bm.Fetch(&t, t.column("a"), 0);
  EXPECT_EQ(bm.misses(), 2u);  // cold again

  // ResetStats() = fresh measurement window: counters zeroed, cache warm.
  bm.ResetStats();
  EXPECT_EQ(bm.hits(), 0u);
  EXPECT_EQ(bm.misses(), 0u);
  EXPECT_EQ(bm.bytes_read(), 0u);
  EXPECT_GT(bm.resident_bytes(), 0u);
  bm.Fetch(&t, t.column("a"), 0);
  EXPECT_EQ(bm.hits(), 1u);  // still resident: no disk I/O
  EXPECT_EQ(bm.misses(), 0u);
}

TEST(ScanTest, VectorWiseMatchesSource) {
  const size_t rows = 50000;
  Table t = MakeTable(rows, ColumnCompression::kAuto, 8192);
  SimDisk disk;
  BufferManager bm(&disk, 1u << 30, Layout::kDSM);
  TableScanOp scan(&t, &bm, {"a", "b", "c"});
  Batch batch;
  size_t pos = 0;
  Rng rng(42);  // regenerate the expected data in lockstep
  std::vector<int64_t> ea(rows), eb(rows);
  std::vector<int32_t> ec(rows);
  for (size_t i = 0; i < rows; i++) {
    ea[i] = int64_t(i);
    eb[i] = 5000 + int64_t(rng.Uniform(1000));
    ec[i] = int32_t(rng.Uniform(4));
  }
  while (size_t n = scan.Next(&batch)) {
    ASSERT_EQ(batch.columns.size(), 3u);
    for (size_t i = 0; i < n; i++) {
      ASSERT_EQ(batch.col(0)->data<int64_t>()[i], ea[pos + i]);
      ASSERT_EQ(batch.col(1)->data<int64_t>()[i], eb[pos + i]);
      ASSERT_EQ(batch.col(2)->data<int32_t>()[i], ec[pos + i]);
    }
    pos += n;
  }
  EXPECT_EQ(pos, rows);
  EXPECT_GT(scan.decompress_seconds(), 0.0);
}

TEST(ScanTest, PageWiseProducesSameData) {
  const size_t rows = 30000;
  Table t = MakeTable(rows, ColumnCompression::kAuto, 8192);
  SimDisk d1, d2;
  BufferManager bm1(&d1, 1u << 30, Layout::kDSM);
  BufferManager bm2(&d2, 1u << 30, Layout::kDSM);
  TableScanOp vw(&t, &bm1, {"a", "b"}, TableScanOp::Mode::kVectorWise);
  TableScanOp pw(&t, &bm2, {"a", "b"}, TableScanOp::Mode::kPageWise);
  Batch b1, b2;
  while (true) {
    size_t n1 = vw.Next(&b1);
    size_t n2 = pw.Next(&b2);
    ASSERT_EQ(n1, n2);
    if (n1 == 0) break;
    for (size_t i = 0; i < n1; i++) {
      ASSERT_EQ(b1.col(0)->data<int64_t>()[i], b2.col(0)->data<int64_t>()[i]);
      ASSERT_EQ(b1.col(1)->data<int64_t>()[i], b2.col(1)->data<int64_t>()[i]);
    }
  }
  // Both modes read the same compressed bytes from "disk".
  EXPECT_EQ(d1.bytes_read(), d2.bytes_read());
}

TEST(ScanTest, UncompressedReadsMoreBytes) {
  const size_t rows = 100000;
  Table comp = MakeTable(rows, ColumnCompression::kAuto, 8192);
  Table raw = MakeTable(rows, ColumnCompression::kNone, 8192);
  SimDisk d1, d2;
  BufferManager bm1(&d1, 1u << 30, Layout::kDSM);
  BufferManager bm2(&d2, 1u << 30, Layout::kDSM);
  TableScanOp s1(&comp, &bm1, {"a", "b", "c"});
  TableScanOp s2(&raw, &bm2, {"a", "b", "c"});
  Batch b;
  while (s1.Next(&b)) {
  }
  while (s2.Next(&b)) {
  }
  EXPECT_LT(d1.bytes_read() * 3, d2.bytes_read());
  EXPECT_LT(d1.io_seconds(), d2.io_seconds());
}

TEST(ScanTest, ScanPipesIntoAggregation) {
  // End-to-end: scan compressed storage into a group-by aggregation.
  const size_t rows = 40000;
  Table t = MakeTable(rows, ColumnCompression::kAuto, 8192);
  SimDisk disk;
  BufferManager bm(&disk, 1u << 30, Layout::kDSM);
  TableScanOp scan(&t, &bm, {"c", "a"});
  HashAggregateOp agg(&scan, {0}, {4}, {{AggKind::kCount, 0},
                                        {AggKind::kSum, 1}});
  Batch b;
  int64_t total_count = 0, total_sum = 0;
  while (size_t n = agg.Next(&b)) {
    for (size_t i = 0; i < n; i++) {
      total_count += b.col(1)->data<int64_t>()[i];
      total_sum += b.col(2)->data<int64_t>()[i];
    }
  }
  EXPECT_EQ(total_count, int64_t(rows));
  EXPECT_EQ(total_sum, int64_t(rows) * (rows - 1) / 2);
}

}  // namespace
}  // namespace scc
