#include "storage/file_store.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "storage/buffer_manager.h"
#include "storage/scan.h"
#include "util/rng.h"

// Persistence round-trip tests: tables saved to a directory and loaded
// back must scan identically; corrupted files must be rejected on load.

namespace scc {
namespace {

namespace fs = std::filesystem;

class FileStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("scc_store_" + std::to_string(::testing::UnitTest::GetInstance()
                                              ->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

Table MakeTable(size_t rows) {
  Rng rng(1);
  std::vector<int64_t> a(rows);
  std::vector<int8_t> b(rows);
  for (size_t i = 0; i < rows; i++) {
    a[i] = int64_t(i) * 3 + 7;
    b[i] = int8_t(rng.Uniform(5));
  }
  Table t(8192);
  SCC_CHECK(t.AddColumn<int64_t>("a", a, ColumnCompression::kAuto).ok(), "a");
  SCC_CHECK(t.AddColumn<int8_t>("b", b, ColumnCompression::kAuto).ok(), "b");
  return t;
}

TEST_F(FileStoreTest, SaveLoadScanRoundTrip) {
  Table t = MakeTable(50000);
  ASSERT_TRUE(FileStore::Save(t, dir_.string()).ok());
  auto loaded = FileStore::Load(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Table& l = loaded.ValueOrDie();
  ASSERT_EQ(l.rows(), t.rows());
  ASSERT_EQ(l.column_count(), t.column_count());
  EXPECT_EQ(l.ByteSize(), t.ByteSize());

  SimDisk d1, d2;
  BufferManager bm1(&d1, 1u << 30, Layout::kDSM);
  BufferManager bm2(&d2, 1u << 30, Layout::kDSM);
  TableScanOp s1(&t, &bm1, {"a", "b"});
  TableScanOp s2(&l, &bm2, {"a", "b"});
  Batch b1, b2;
  while (true) {
    size_t n1 = s1.Next(&b1);
    size_t n2 = s2.Next(&b2);
    ASSERT_EQ(n1, n2);
    if (n1 == 0) break;
    for (size_t i = 0; i < n1; i++) {
      ASSERT_EQ(b1.col(0)->data<int64_t>()[i], b2.col(0)->data<int64_t>()[i]);
      ASSERT_EQ(b1.col(1)->data<int8_t>()[i], b2.col(1)->data<int8_t>()[i]);
    }
  }
}

TEST_F(FileStoreTest, MissingDirRejected) {
  auto loaded = FileStore::Load((dir_ / "nope").string());
  EXPECT_FALSE(loaded.ok());
}

TEST_F(FileStoreTest, CorruptChunkRejected) {
  Table t = MakeTable(20000);
  ASSERT_TRUE(FileStore::Save(t, dir_.string()).ok());
  // Flip a byte inside column a's first chunk header region.
  fs::path colfile = dir_ / "a.col";
  ASSERT_TRUE(fs::exists(colfile));
  {
    std::fstream f(colfile, std::ios::in | std::ios::out | std::ios::binary);
    // 8 bytes magic+count, then the size index; the first chunk's header
    // starts after 8 + 8*nchunks. Corrupt its magic.
    uint32_t nchunks = 0;
    f.seekg(4);
    f.read(reinterpret_cast<char*>(&nchunks), 4);
    f.seekp(std::streamoff(8 + 8 * nchunks));
    char zero = 0;
    f.write(&zero, 1);
  }
  auto loaded = FileStore::Load(dir_.string());
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(FileStoreTest, TruncatedColumnRejected) {
  Table t = MakeTable(20000);
  ASSERT_TRUE(FileStore::Save(t, dir_.string()).ok());
  fs::path colfile = dir_ / "a.col";
  fs::resize_file(colfile, fs::file_size(colfile) / 2);
  auto loaded = FileStore::Load(dir_.string());
  EXPECT_FALSE(loaded.ok());
}

TEST_F(FileStoreTest, PayloadCorruptionCaughtByChecksums) {
  Table t = MakeTable(20000);
  ASSERT_TRUE(FileStore::Save(t, dir_.string()).ok());
  // Flip a byte deep inside the first chunk's PAYLOAD (past the header
  // and checksum block): only the section CRCs can catch this.
  fs::path colfile = dir_ / "a.col";
  uint32_t nchunks = 0;
  {
    std::fstream f(colfile, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(4);
    f.read(reinterpret_cast<char*>(&nchunks), 4);
    const std::streamoff chunk0 = std::streamoff(8 + 8 * nchunks);
    f.seekg(chunk0 + 100);
    char byte = 0;
    f.read(&byte, 1);
    byte = char(byte ^ 0x10);
    f.seekp(chunk0 + 100);
    f.write(&byte, 1);
  }
  auto loaded = FileStore::Load(dir_.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos)
      << loaded.status().ToString();
  // Opting out of verification reproduces the legacy behavior: the
  // header still validates, so the corrupt chunk loads silently.
  auto unverified =
      FileStore::Load(dir_.string(), {.verify_checksums = false});
  EXPECT_TRUE(unverified.ok()) << unverified.status().ToString();
}

TEST_F(FileStoreTest, LegacyUnversionedChunksStillLoad) {
  Table t = MakeTable(20000);
  ASSERT_TRUE(FileStore::Save(t, dir_.string()).ok());
  // Rewrite every chunk of column a as a pre-versioning (v1) segment:
  // zero the flags byte. The stale checksum block bytes become dead
  // space inside the body, which v1 readers never look at.
  fs::path colfile = dir_ / "a.col";
  {
    std::fstream f(colfile, std::ios::in | std::ios::out | std::ios::binary);
    uint32_t nchunks = 0;
    f.seekg(4);
    f.read(reinterpret_cast<char*>(&nchunks), 4);
    std::vector<uint64_t> sizes(nchunks);
    for (auto& s : sizes) {
      f.read(reinterpret_cast<char*>(&s), 8);
    }
    std::streamoff off = std::streamoff(8 + 8 * nchunks);
    const char zero = 0;
    for (uint64_t size : sizes) {
      f.seekp(off + 7);  // offsetof(SegmentHeader, flags)
      f.write(&zero, 1);
      off += std::streamoff(size);
    }
  }
  // Default load verifies checksums — vacuously for v1 chunks.
  auto loaded = FileStore::Load(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // The rewritten column still scans bit-exact against the original.
  const Table& l = loaded.ValueOrDie();
  SimDisk d1, d2;
  BufferManager bm1(&d1, 1u << 30, Layout::kDSM);
  BufferManager bm2(&d2, 1u << 30, Layout::kDSM);
  TableScanOp s1(&t, &bm1, {"a"});
  TableScanOp s2(&l, &bm2, {"a"});
  Batch b1, b2;
  while (true) {
    size_t n1 = s1.Next(&b1);
    size_t n2 = s2.Next(&b2);
    ASSERT_EQ(n1, n2);
    if (n1 == 0) break;
    for (size_t i = 0; i < n1; i++) {
      ASSERT_EQ(b1.col(0)->data<int64_t>()[i], b2.col(0)->data<int64_t>()[i]);
    }
  }
}

TEST_F(FileStoreTest, ManifestGarbageRejected) {
  fs::create_directories(dir_);
  std::ofstream(dir_ / "MANIFEST") << "not a column line\n";
  auto loaded = FileStore::Load(dir_.string());
  EXPECT_FALSE(loaded.ok());
}

}  // namespace
}  // namespace scc
