#include "storage/file_store.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "storage/buffer_manager.h"
#include "storage/scan.h"
#include "util/rng.h"

// Persistence round-trip tests: tables saved to a directory and loaded
// back must scan identically; corrupted files must be rejected on load.

namespace scc {
namespace {

namespace fs = std::filesystem;

class FileStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("scc_store_" + std::to_string(::testing::UnitTest::GetInstance()
                                              ->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

Table MakeTable(size_t rows) {
  Rng rng(1);
  std::vector<int64_t> a(rows);
  std::vector<int8_t> b(rows);
  for (size_t i = 0; i < rows; i++) {
    a[i] = int64_t(i) * 3 + 7;
    b[i] = int8_t(rng.Uniform(5));
  }
  Table t(8192);
  SCC_CHECK(t.AddColumn<int64_t>("a", a, ColumnCompression::kAuto).ok(), "a");
  SCC_CHECK(t.AddColumn<int8_t>("b", b, ColumnCompression::kAuto).ok(), "b");
  return t;
}

TEST_F(FileStoreTest, SaveLoadScanRoundTrip) {
  Table t = MakeTable(50000);
  ASSERT_TRUE(FileStore::Save(t, dir_.string()).ok());
  auto loaded = FileStore::Load(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Table& l = loaded.ValueOrDie();
  ASSERT_EQ(l.rows(), t.rows());
  ASSERT_EQ(l.column_count(), t.column_count());
  EXPECT_EQ(l.ByteSize(), t.ByteSize());

  SimDisk d1, d2;
  BufferManager bm1(&d1, 1u << 30, Layout::kDSM);
  BufferManager bm2(&d2, 1u << 30, Layout::kDSM);
  TableScanOp s1(&t, &bm1, {"a", "b"});
  TableScanOp s2(&l, &bm2, {"a", "b"});
  Batch b1, b2;
  while (true) {
    size_t n1 = s1.Next(&b1);
    size_t n2 = s2.Next(&b2);
    ASSERT_EQ(n1, n2);
    if (n1 == 0) break;
    for (size_t i = 0; i < n1; i++) {
      ASSERT_EQ(b1.col(0)->data<int64_t>()[i], b2.col(0)->data<int64_t>()[i]);
      ASSERT_EQ(b1.col(1)->data<int8_t>()[i], b2.col(1)->data<int8_t>()[i]);
    }
  }
}

TEST_F(FileStoreTest, MissingDirRejected) {
  auto loaded = FileStore::Load((dir_ / "nope").string());
  EXPECT_FALSE(loaded.ok());
}

TEST_F(FileStoreTest, CorruptChunkRejected) {
  Table t = MakeTable(20000);
  ASSERT_TRUE(FileStore::Save(t, dir_.string()).ok());
  // Flip a byte inside column a's first chunk header region.
  fs::path colfile = dir_ / "a.col";
  ASSERT_TRUE(fs::exists(colfile));
  {
    std::fstream f(colfile, std::ios::in | std::ios::out | std::ios::binary);
    // 8 bytes magic+count, then the size index; the first chunk's header
    // starts after 8 + 8*nchunks. Corrupt its magic.
    uint32_t nchunks = 0;
    f.seekg(4);
    f.read(reinterpret_cast<char*>(&nchunks), 4);
    f.seekp(std::streamoff(8 + 8 * nchunks));
    char zero = 0;
    f.write(&zero, 1);
  }
  auto loaded = FileStore::Load(dir_.string());
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(FileStoreTest, TruncatedColumnRejected) {
  Table t = MakeTable(20000);
  ASSERT_TRUE(FileStore::Save(t, dir_.string()).ok());
  fs::path colfile = dir_ / "a.col";
  fs::resize_file(colfile, fs::file_size(colfile) / 2);
  auto loaded = FileStore::Load(dir_.string());
  EXPECT_FALSE(loaded.ok());
}

TEST_F(FileStoreTest, ManifestGarbageRejected) {
  fs::create_directories(dir_);
  std::ofstream(dir_ / "MANIFEST") << "not a column line\n";
  auto loaded = FileStore::Load(dir_.string());
  EXPECT_FALSE(loaded.ok());
}

}  // namespace
}  // namespace scc
