#include "util/status.h"

#include <gtest/gtest.h>

#include "scc.h"  // umbrella header must compile standalone
#include "util/aligned_buffer.h"

// Tests for the error-handling primitives and the aligned buffer, plus a
// compile check that the umbrella header is self-contained.

namespace scc {
namespace {

TEST(StatusTest, OkAndErrors) {
  Status ok = Status::OK();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");

  Status bad = Status::InvalidArgument("b too large");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.message(), "b too large");
  EXPECT_EQ(bad.ToString(), "InvalidArgument: b too large");

  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);

  Status io = Status::IOError("disk unplugged");
  EXPECT_FALSE(io.ok());
  EXPECT_EQ(io.code(), StatusCode::kIOError);
  EXPECT_EQ(io.ToString(), "IOError: disk unplugged");

  // The service-layer codes must stay distinct from each other and from
  // ResourceExhausted: clients route on the difference (retry elsewhere
  // vs. this query ran out of its own budget).
  Status shed = Status::Unavailable("admission limit");
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable);
  EXPECT_EQ(shed.ToString(), "Unavailable: admission limit");
  Status late = Status::DeadlineExceeded("budget spent");
  EXPECT_EQ(late.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(late.ToString(), "DeadlineExceeded: budget spent");
  EXPECT_NE(shed.code(), late.code());
  EXPECT_NE(shed.code(), StatusCode::kResourceExhausted);
}

TEST(ResultTest, ValueAndError) {
  Result<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.ValueOrDie(), 42);
  EXPECT_TRUE(v.status().ok());

  Result<int> e = Status::Corruption("bad");
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kCorruption);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = r.MoveValueOrDie();
  EXPECT_EQ(*p, 7);
}

Status Propagates(bool fail) {
  SCC_RETURN_NOT_OK(fail ? Status::Internal("inner") : Status::OK());
  return Status::OK();
}

Result<int> Assigns(bool fail) {
  SCC_ASSIGN_OR_RETURN(int v, Result<int>(fail ? Result<int>(Status::Internal(
                                                     "nope"))
                                               : Result<int>(5)));
  return v + 1;
}

TEST(StatusMacros, ReturnNotOkAndAssignOrReturn) {
  EXPECT_TRUE(Propagates(false).ok());
  EXPECT_EQ(Propagates(true).code(), StatusCode::kInternal);
  EXPECT_EQ(Assigns(false).ValueOrDie(), 6);
  EXPECT_FALSE(Assigns(true).ok());
}

TEST(AlignedBufferTest, AlignmentCopyMove) {
  AlignedBuffer a(100);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a.data()) % AlignedBuffer::kAlignment,
            0u);
  EXPECT_EQ(a.size(), 100u);
  for (size_t i = 0; i < 100; i++) a.data()[i] = uint8_t(i);

  AlignedBuffer b = a;  // copy
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.data()[42], 42);
  b.data()[42] = 0;
  EXPECT_EQ(a.data()[42], 42);  // deep copy

  AlignedBuffer c = std::move(a);  // move
  EXPECT_EQ(c.size(), 100u);
  EXPECT_EQ(c.data()[42], 42);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): spec'd empty

  c.Resize(16);
  EXPECT_EQ(c.size(), 16u);
  c.Resize(1 << 20);  // grow reallocates
  EXPECT_EQ(c.size(), 1u << 20);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(c.data()) % AlignedBuffer::kAlignment,
            0u);
}

TEST(UmbrellaHeader, CoreSymbolsVisible) {
  // scc.h pulled in the codec stack; exercise one symbol from each layer.
  EXPECT_EQ(SchemeName(Scheme::kPFor), std::string("PFOR"));
  EXPECT_EQ(MaxCode(8), 255u);
  EXPECT_EQ(PackedByteSize(32, 8), 32u);
  EXPECT_GT(EffectiveExceptionRate(0.1, 1), 0.1);
}

}  // namespace
}  // namespace scc
