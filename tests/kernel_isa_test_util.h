#ifndef SCC_TESTS_KERNEL_ISA_TEST_UTIL_H_
#define SCC_TESTS_KERNEL_ISA_TEST_UTIL_H_

#include <vector>

#include "bitpack/bitpack.h"

// Helpers for differential tests that pin the kernel dispatch to a
// specific backend. Tests iterate SupportedIsas() so the same binary
// exercises whatever the host CPU (or an SCC_FORCE_SCALAR build) offers,
// and CI forces individual backends via the SCC_KERNEL_ISA env var.

namespace scc {

inline std::vector<KernelIsa> SupportedIsas() {
  std::vector<KernelIsa> isas;
  for (int i = 0; i < kNumKernelIsas; i++) {
    if (KernelIsaSupported(KernelIsa(i))) isas.push_back(KernelIsa(i));
  }
  return isas;
}

/// Forces a backend for the enclosing scope, restoring the previously
/// active one (which may itself come from SCC_KERNEL_ISA) on exit.
class ScopedKernelIsa {
 public:
  explicit ScopedKernelIsa(KernelIsa isa) : prev_(ActiveKernelIsa()) {
    SetKernelIsa(isa);
  }
  ~ScopedKernelIsa() { SetKernelIsa(prev_); }
  ScopedKernelIsa(const ScopedKernelIsa&) = delete;
  ScopedKernelIsa& operator=(const ScopedKernelIsa&) = delete;

 private:
  KernelIsa prev_;
};

}  // namespace scc

#endif  // SCC_TESTS_KERNEL_ISA_TEST_UTIL_H_
