#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/float_codec.h"
#include "core/parallel.h"
#include "exec/exec_metrics.h"
#include "engine/merge_join.h"
#include "engine/ordered_aggregate.h"
#include "util/rng.h"
#include "util/zipf.h"

// Tests for the extension features: sort-merge join, parallel segment
// decompression, and floating-point compression (the paper's stated
// future work).

namespace scc {
namespace {

// ---------------------------------------------------------------------------
// MergeJoinOp
// ---------------------------------------------------------------------------

TEST(MergeJoinTest, MatchesHashJoinOnSortedKeys) {
  // Left: sorted fact keys with duplicates; right: unique sorted dims.
  Rng rng(1);
  std::vector<int64_t> lkey, lval;
  int64_t k = 0;
  for (int i = 0; i < 20000; i++) {
    k += rng.Uniform(3);  // duplicates and gaps
    lkey.push_back(k);
    lval.push_back(i);
  }
  std::vector<int64_t> rkey, rval;
  for (int64_t key = 0; key <= k; key += 1 + int64_t(rng.Uniform(2))) {
    rkey.push_back(key);
    rval.push_back(key * 10);
  }
  MemorySource left({TypeId::kInt64, TypeId::kInt64},
                    {lkey.data(), lval.data()}, lkey.size());
  MemorySource right({TypeId::kInt64, TypeId::kInt64},
                     {rkey.data(), rval.data()}, rkey.size());
  MergeJoinOp merge(&left, 0, &right, 0);

  std::vector<std::tuple<int64_t, int64_t, int64_t>> got;
  Batch b;
  while (size_t n = merge.Next(&b)) {
    for (size_t i = 0; i < n; i++) {
      got.emplace_back(b.col(0)->data<int64_t>()[i],
                       b.col(1)->data<int64_t>()[i],
                       b.col(2)->data<int64_t>()[i]);
    }
  }
  // Reference via hash join.
  MemorySource left2({TypeId::kInt64, TypeId::kInt64},
                     {lkey.data(), lval.data()}, lkey.size());
  MemorySource right2({TypeId::kInt64, TypeId::kInt64},
                      {rkey.data(), rval.data()}, rkey.size());
  HashJoinOp hash(&left2, 0, &right2, 0);
  std::vector<std::tuple<int64_t, int64_t, int64_t>> want;
  while (size_t n = hash.Next(&b)) {
    for (size_t i = 0; i < n; i++) {
      want.emplace_back(b.col(0)->data<int64_t>()[i],
                        b.col(1)->data<int64_t>()[i],
                        b.col(2)->data<int64_t>()[i]);
    }
  }
  std::sort(want.begin(), want.end());
  auto got_sorted = got;
  std::sort(got_sorted.begin(), got_sorted.end());
  ASSERT_EQ(got_sorted, want);
  // Merge join preserves left key order.
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end(),
                             [](const auto& a, const auto& b2) {
                               return std::get<0>(a) < std::get<0>(b2);
                             }));
  EXPECT_GT(got.size(), 1000u);
}

TEST(MergeJoinTest, EmptyInputs) {
  std::vector<int64_t> none;
  std::vector<int64_t> some = {1, 2, 3};
  {
    MemorySource left({TypeId::kInt64}, {none.data()}, 0);
    MemorySource right({TypeId::kInt64}, {some.data()}, 3);
    MergeJoinOp join(&left, 0, &right, 0);
    Batch b;
    EXPECT_EQ(join.Next(&b), 0u);
  }
  {
    MemorySource left({TypeId::kInt64}, {some.data()}, 3);
    MemorySource right({TypeId::kInt64}, {none.data()}, 0);
    MergeJoinOp join(&left, 0, &right, 0);
    Batch b;
    EXPECT_EQ(join.Next(&b), 0u);
  }
}

TEST(MergeJoinTest, ResetReplays) {
  std::vector<int64_t> key = {1, 2, 3, 4};
  MemorySource left({TypeId::kInt64}, {key.data()}, 4);
  MemorySource right({TypeId::kInt64}, {key.data()}, 4);
  MergeJoinOp join(&left, 0, &right, 0);
  Batch b;
  size_t n1 = 0, n2 = 0;
  while (size_t n = join.Next(&b)) n1 += n;
  join.Reset();
  while (size_t n = join.Next(&b)) n2 += n;
  EXPECT_EQ(n1, 4u);
  EXPECT_EQ(n1, n2);
}

// ---------------------------------------------------------------------------
// OrderedAggregateOp
// ---------------------------------------------------------------------------

TEST(OrderedAggregateTest, MatchesHashAggregateOnClusteredInput) {
  // Clustered keys (like lineitem's orderkey): runs of 1..6 rows.
  Rng rng(7);
  std::vector<int64_t> key, val;
  int64_t k = 100;
  while (key.size() < 30000) {
    size_t run = 1 + rng.Uniform(6);
    for (size_t i = 0; i < run; i++) {
      key.push_back(k);
      val.push_back(int64_t(rng.Uniform(1000)));
    }
    k += 1 + int64_t(rng.Uniform(40));
  }
  MemorySource src({TypeId::kInt64, TypeId::kInt64},
                   {key.data(), val.data()}, key.size());
  OrderedAggregateOp ordered(&src, 0,
                             {{AggKind::kSum, 1},
                              {AggKind::kCount, 0},
                              {AggKind::kMax, 1}});
  std::vector<std::tuple<int64_t, int64_t, int64_t, int64_t>> got;
  Batch b;
  while (size_t n = ordered.Next(&b)) {
    for (size_t i = 0; i < n; i++) {
      got.emplace_back(b.col(0)->data<int64_t>()[i],
                       b.col(1)->data<int64_t>()[i],
                       b.col(2)->data<int64_t>()[i],
                       b.col(3)->data<int64_t>()[i]);
    }
  }
  // Scalar reference.
  std::vector<std::tuple<int64_t, int64_t, int64_t, int64_t>> want;
  size_t i = 0;
  while (i < key.size()) {
    size_t j = i;
    int64_t sum = 0, count = 0, mx = INT64_MIN;
    while (j < key.size() && key[j] == key[i]) {
      sum += val[j];
      count++;
      mx = std::max(mx, val[j]);
      j++;
    }
    want.emplace_back(key[i], sum, count, mx);
    i = j;
  }
  ASSERT_EQ(got, want);
}

TEST(OrderedAggregateTest, AllDistinctKeysSpanOutputBatches) {
  // Every row its own group: the output fills mid-input-batch and must
  // resume without dropping rows.
  const size_t n = 5 * kVectorSize + 123;
  std::vector<int32_t> key(n);
  std::vector<int64_t> val(n);
  for (size_t i = 0; i < n; i++) {
    key[i] = int32_t(i);
    val[i] = int64_t(i) * 3;
  }
  MemorySource src({TypeId::kInt32, TypeId::kInt64},
                   {key.data(), val.data()}, n);
  OrderedAggregateOp ordered(&src, 0, {{AggKind::kSum, 1}});
  size_t total = 0;
  Batch b;
  while (size_t m = ordered.Next(&b)) {
    for (size_t i = 0; i < m; i++) {
      ASSERT_EQ(b.col(0)->data<int64_t>()[i], int64_t(total + i));
      ASSERT_EQ(b.col(1)->data<int64_t>()[i], int64_t(total + i) * 3);
    }
    total += m;
  }
  EXPECT_EQ(total, n);
}

TEST(OrderedAggregateTest, EmptyAndSingleRow) {
  std::vector<int64_t> none;
  MemorySource empty({TypeId::kInt64}, {none.data()}, 0);
  OrderedAggregateOp agg0(&empty, 0, {{AggKind::kCount, 0}});
  Batch b;
  EXPECT_EQ(agg0.Next(&b), 0u);

  std::vector<int64_t> one = {42};
  MemorySource single({TypeId::kInt64}, {one.data()}, 1);
  OrderedAggregateOp agg1(&single, 0, {{AggKind::kCount, 0}});
  ASSERT_EQ(agg1.Next(&b), 1u);
  EXPECT_EQ(b.col(0)->data<int64_t>()[0], 42);
  EXPECT_EQ(b.col(1)->data<int64_t>()[0], 1);
  EXPECT_EQ(agg1.Next(&b), 0u);
}

// ---------------------------------------------------------------------------
// Parallel decompression
// ---------------------------------------------------------------------------

TEST(ParallelDecompressTest, MatchesSerialAnyThreadCount) {
  Rng rng(2);
  std::vector<int32_t> all;
  std::vector<AlignedBuffer> segments;
  for (int s = 0; s < 9; s++) {
    size_t n = 1000 + rng.Uniform(30000);
    std::vector<int32_t> chunk(n);
    for (auto& v : chunk) v = int32_t(rng.Uniform(5000));
    chunk[n / 2] = 1 << 28;  // an exception per chunk
    all.insert(all.end(), chunk.begin(), chunk.end());
    auto choice = Analyzer<int32_t>::Analyze(chunk);
    auto seg = SegmentBuilder<int32_t>::Build(chunk, choice);
    ASSERT_TRUE(seg.ok());
    segments.push_back(seg.MoveValueOrDie());
  }
  for (unsigned threads : {0u, 1u, 2u, 4u, 16u}) {
    std::vector<int32_t> out(all.size());
    auto r = ParallelDecompress<int32_t>(segments, out.data(), out.size(),
                                         threads);
    ASSERT_TRUE(r.ok()) << threads;
    EXPECT_EQ(r.ValueOrDie(), all.size());
    EXPECT_EQ(out, all) << "threads=" << threads;
  }
}

TEST(ParallelDecompressTest, SingleThreadNeverTouchesThePool) {
  // threads == 1 must decode serially on the caller: routing it through
  // the pool would hand the "1-thread" baseline full-pool parallelism
  // and corrupt every scaling curve measured against it.
  Rng rng(3);
  std::vector<int32_t> all;
  std::vector<AlignedBuffer> segments;
  for (int s = 0; s < 6; s++) {
    std::vector<int32_t> chunk(4096);
    for (auto& v : chunk) v = int32_t(rng.Uniform(5000));
    all.insert(all.end(), chunk.begin(), chunk.end());
    auto seg = SegmentBuilder<int32_t>::Build(chunk,
                                              Analyzer<int32_t>::Analyze(chunk));
    ASSERT_TRUE(seg.ok());
    segments.push_back(seg.MoveValueOrDie());
  }
  const uint64_t tasks_before = ExecMetrics::Get().tasks->Value();
  std::vector<int32_t> out(all.size());
  auto r = ParallelDecompress<int32_t>(segments, out.data(), out.size(),
                                       /*threads=*/1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out, all);
  EXPECT_EQ(ExecMetrics::Get().tasks->Value(), tasks_before);
}

TEST(ParallelDecompressTest, RejectsSmallBuffer) {
  std::vector<int32_t> chunk(1000, 7);
  auto seg = SegmentBuilder<int32_t>::BuildPFor(chunk,
                                                PForParams<int32_t>{3, 7});
  ASSERT_TRUE(seg.ok());
  std::vector<AlignedBuffer> segments;
  segments.push_back(seg.MoveValueOrDie());
  std::vector<int32_t> out(10);
  auto r = ParallelDecompress<int32_t>(segments, out.data(), out.size(), 2);
  EXPECT_FALSE(r.ok());
}

// ---------------------------------------------------------------------------
// Float codec
// ---------------------------------------------------------------------------

TEST(FloatCodecTest, ScaledDecimalsPromoteToIntegers) {
  // Prices with two decimals: must detect scale 2 and compress well.
  Rng rng(3);
  std::vector<double> prices(100000);
  for (auto& p : prices) p = double(900 + rng.Uniform(2000)) / 100.0;
  auto comp = FloatCodec::Compress(prices);
  ASSERT_TRUE(comp.ok()) << comp.status().ToString();
  const auto& buf = comp.ValueOrDie();
  EXPECT_LT(buf.size(), prices.size() * 8 / 3);  // clearly compressed
  std::vector<double> out(prices.size());
  ASSERT_TRUE(
      FloatCodec::Decompress(buf.data(), buf.size(), out.data(), out.size())
          .ok());
  EXPECT_EQ(out, prices);  // bit-exact
}

TEST(FloatCodecTest, LowCardinalityPatternsUseDict) {
  std::vector<double> domain = {0.1, 0.2, 0.30000000001, 3.14159, -7.5e300};
  Rng rng(4);
  std::vector<double> v(50000);
  for (auto& x : v) x = domain[rng.Uniform(domain.size())];
  auto comp = FloatCodec::Compress(v);
  ASSERT_TRUE(comp.ok());
  EXPECT_LT(comp.ValueOrDie().size(), v.size() * 8 / 4);
  std::vector<double> out(v.size());
  ASSERT_TRUE(FloatCodec::Decompress(comp.ValueOrDie().data(),
                                     comp.ValueOrDie().size(), out.data(),
                                     out.size())
                  .ok());
  EXPECT_EQ(out, v);
}

TEST(FloatCodecTest, ContinuousDataStoredRawLosslessly) {
  Rng rng(5);
  std::vector<double> v(10000);
  for (auto& x : v) x = rng.NextDouble() * 1e9 + rng.NextDouble();
  auto comp = FloatCodec::Compress(v);
  ASSERT_TRUE(comp.ok());
  std::vector<double> out(v.size());
  ASSERT_TRUE(FloatCodec::Decompress(comp.ValueOrDie().data(),
                                     comp.ValueOrDie().size(), out.data(),
                                     out.size())
                  .ok());
  EXPECT_EQ(out, v);
}

TEST(FloatCodecTest, SpecialValuesBitExact) {
  std::vector<double> v = {0.0, -0.0, 1.0 / 3.0,
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::denorm_min(), 1e308};
  // Pad so dictionary candidates repeat.
  std::vector<double> column;
  for (int i = 0; i < 1000; i++) column.push_back(v[i % v.size()]);
  auto comp = FloatCodec::Compress(column);
  ASSERT_TRUE(comp.ok());
  std::vector<double> out(column.size());
  ASSERT_TRUE(FloatCodec::Decompress(comp.ValueOrDie().data(),
                                     comp.ValueOrDie().size(), out.data(),
                                     out.size())
                  .ok());
  for (size_t i = 0; i < column.size(); i++) {
    EXPECT_EQ(std::bit_cast<int64_t>(out[i]),
              std::bit_cast<int64_t>(column[i]))
        << i;
  }
  auto count = FloatCodec::Count(comp.ValueOrDie().data(),
                                 comp.ValueOrDie().size());
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.ValueOrDie(), column.size());
}

}  // namespace
}  // namespace scc
