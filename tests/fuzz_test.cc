#include <vector>

#include <gtest/gtest.h>

#include "baselines/huffman.h"
#include "baselines/lzrw1.h"
#include "baselines/lzss_huffman.h"
#include "baselines/varbyte.h"
#include "baselines/wordaligned.h"
#include "bitpack/bitpack.h"
#include "core/float_codec.h"
#include "core/kernels.h"
#include "core/segment_reader.h"
#include "ir/posting_codec.h"
#include "kernel_isa_test_util.h"
#include "util/rng.h"

// Decoder robustness fuzzing: every decompressor must survive arbitrary
// byte soup and truncated/bit-flipped valid streams without crashing or
// overrunning buffers — it may return any Status, or garbage values for
// formats without integrity checks, but never UB. (Run under ASan for
// full effect; the bounds logic is exercised either way.)

namespace scc {
namespace {

// SCC_FUZZ_ITERS overrides each campaign's trial count (the CI nightly
// corruption job raises it well past the interactive defaults).
size_t FuzzIters(size_t dflt) {
  const char* env = std::getenv("SCC_FUZZ_ITERS");
  if (env == nullptr || *env == '\0') return dflt;
  long v = std::atol(env);
  return v > 0 ? size_t(v) : dflt;
}

std::vector<uint8_t> RandomBytes(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> v(n);
  for (auto& b : v) b = uint8_t(rng.Next());
  return v;
}

TEST(FuzzDecoders, RandomByteSoup) {
  for (uint64_t seed = 0; seed < FuzzIters(50); seed++) {
    auto junk = RandomBytes(64 + seed * 37, seed);
    const size_t n = 100;
    std::vector<uint32_t> u32(n);
    std::vector<uint8_t> bytes;
    std::vector<int64_t> i64(n);
    std::vector<double> f64(n);

    (void)HuffmanDecompressBytes(junk.data(), junk.size(), &bytes);
    (void)HuffmanGapCodec::Decompress(junk.data(), junk.size(), u32.data(), n);
    (void)LzssHuffman::Decompress(junk.data(), junk.size(), &bytes);
    std::vector<uint8_t> out(4096);
    (void)Lzrw1::Decompress(junk.data(), junk.size(), out.data(), out.size());
    (void)VByte::Decompress(junk.data(), junk.size(), u32.data(), n);
    std::vector<uint32_t> words(junk.size() / 4);
    std::memcpy(words.data(), junk.data(), words.size() * 4);
    (void)Simple9::Decompress(words.data(), words.size(), u32.data(), n);
    (void)Carryover12::Decompress(words.data(), words.size(), u32.data(), n);
    auto reader = SegmentReader<int64_t>::Open(junk.data(), junk.size());
    (void)reader;
    (void)FloatCodec::Decompress(junk.data(), junk.size(), f64.data(), n);
    for (auto& codec : MakePostingCodecs()) {
      (void)codec->Decompress(junk.data(), junk.size(), u32.data(), n);
    }
  }
  SUCCEED();  // surviving without UB is the assertion (run under ASan)
}

TEST(FuzzDecoders, TruncatedValidStreams) {
  // Compress real data, then feed every decoder successively shorter
  // prefixes of its own valid output.
  Rng rng(9);
  std::vector<uint32_t> gaps(5000);
  for (auto& g : gaps) g = uint32_t(rng.Uniform(1000)) + 1;
  std::vector<uint32_t> ids(gaps.size());
  uint32_t acc = 0;
  for (size_t i = 0; i < gaps.size(); i++) {
    acc += gaps[i];
    ids[i] = acc;
  }
  for (auto& codec : MakePostingCodecs()) {
    auto comp = codec->Compress(ids.data(), ids.size());
    ASSERT_TRUE(comp.ok());
    const auto& buf = comp.ValueOrDie();
    std::vector<uint32_t> out(ids.size());
    for (size_t cut : {size_t(0), size_t(3), buf.size() / 4, buf.size() / 2,
                       buf.size() - 1}) {
      (void)codec->Decompress(buf.data(), cut, out.data(), out.size());
    }
  }
  SUCCEED();
}

TEST(FuzzDecoders, BitflippedSegments) {
  // Single-byte corruptions of a valid segment: Open() either rejects it
  // or yields a reader whose count stays within the original bound, and
  // decoding must not overrun the output buffer.
  Rng rng(10);
  std::vector<int32_t> values(5000);
  for (auto& v : values) {
    v = int32_t(rng.Uniform(500));
    if (rng.Bernoulli(0.05)) v = 1 << 25;
  }
  auto seg = SegmentBuilder<int32_t>::BuildPFor(values,
                                                PForParams<int32_t>{9, 0});
  ASSERT_TRUE(seg.ok());
  const AlignedBuffer& orig = seg.ValueOrDie();
  std::vector<int32_t> out(values.size());
  for (int trial = 0; trial < int(FuzzIters(300)); trial++) {
    AlignedBuffer copy = orig;
    size_t pos = rng.Uniform(sizeof(SegmentHeader));  // header bytes only:
    // the header governs all memory-safety bounds. (Payload flips are the
    // corruption_test battery's job, where per-section CRCs catch them.)
    copy.data()[pos] ^= uint8_t(1 + rng.Uniform(255));
    auto reader = SegmentReader<int32_t>::Open(copy.data(), copy.size());
    if (!reader.ok()) continue;
    const auto& r = reader.ValueOrDie();
    if (r.count() > values.size()) continue;  // output too small: skip
    r.DecompressRange(0, r.count(), out.data());
    // Compressed-domain selection must be equally robust: a flipped
    // summary_offset / entry point / bit width may change the result,
    // never the memory safety.
    std::vector<uint32_t> sel(values.size());
    (void)r.SelectBetween(0, r.count(), int32_t(0), int32_t(400), sel.data());
  }
  SUCCEED();
}

TEST(FuzzDecoders, StructureAwareMutantsAgreeAcrossBackends) {
  // Structure-aware segment mutator: instead of blind byte soup, corrupt
  // the fields the decoders actually steer by — section offsets, counts,
  // bit widths, entry points, and section payload bytes — then require
  // every kernel backend to behave IDENTICALLY on the mutant: same
  // accept/reject decision, and bit-identical decode when accepted. This
  // pins the SIMD paths to the scalar reference on hostile input, not
  // just on valid streams.
  const auto isas = SupportedIsas();
  Rng rng(2026);
  std::vector<int64_t> values(4000);
  for (auto& v : values) {
    v = int64_t(rng.Uniform(100));
    if (rng.Bernoulli(0.08)) v = int64_t(rng.Next());  // exceptions
  }
  std::vector<AlignedBuffer> bases;
  bases.push_back(SegmentBuilder<int64_t>::BuildPFor(
                      values, PForParams<int64_t>{6, 0})
                      .MoveValueOrDie());
  bases.push_back(SegmentBuilder<int64_t>::BuildPForDelta(
                      values, PForParams<int64_t>{6, 0})
                      .MoveValueOrDie());

  for (int trial = 0; trial < int(FuzzIters(600)); trial++) {
    const AlignedBuffer& orig = bases[size_t(trial) % bases.size()];
    AlignedBuffer copy = orig;
    SegmentHeader hdr;
    std::memcpy(&hdr, copy.data(), sizeof(hdr));
    // Pick a structural mutation; some target the header fields that
    // bound sections, some the entry points / payload they bound.
    // Per-trial selection predicate, shared by every backend below.
    const int64_t slo = int64_t(rng.Uniform(200)) - 50;
    const int64_t shi = slo + int64_t(rng.Uniform(200));
    switch (rng.Uniform(8)) {
      case 0:
        hdr.count = uint32_t(rng.Next());
        break;
      case 1:
        hdr.entry_count = uint32_t(rng.Uniform(hdr.entry_count * 2 + 2));
        break;
      case 2:
        hdr.codes_offset = uint32_t(rng.Uniform(hdr.total_size + 64));
        break;
      case 3:
        hdr.exceptions_offset = uint32_t(rng.Uniform(hdr.total_size + 64));
        break;
      case 4:
        hdr.bit_width = uint8_t(rng.Uniform(64));
        break;
      case 5: {  // entry point: bogus first-offset / exception index
        if (hdr.entry_count > 0) {
          size_t e = hdr.entries_offset + 4 * rng.Uniform(hdr.entry_count);
          uint32_t bogus = uint32_t(rng.Next());
          std::memcpy(copy.data() + e, &bogus, 4);
        }
        break;
      }
      case 6:  // summary section: bogus offset / nonzero reserved word
        if (rng.Bernoulli(0.5)) {
          hdr.summary_offset = uint32_t(rng.Uniform(hdr.total_size + 64));
        } else {
          hdr.summary_reserved = uint32_t(rng.Next());
        }
        break;
      default: {  // payload bytes in the code/exception sections
        size_t lo = hdr.codes_offset;
        size_t pos = lo + rng.Uniform(hdr.total_size - lo);
        copy.data()[pos] ^= uint8_t(1 + rng.Uniform(255));
        break;
      }
    }
    std::memcpy(copy.data(), &hdr, sizeof(hdr));

    // Scalar is the reference behavior (checksums off: these mutants are
    // about decoder bounds, not detection).
    bool want_ok;
    std::vector<int64_t> want;
    std::vector<uint32_t> want_sel;
    size_t want_selcnt = 0;
    {
      ScopedKernelIsa force(KernelIsa::kScalar);
      auto reader = SegmentReader<int64_t>::Open(copy.data(), copy.size());
      want_ok = reader.ok();
      if (want_ok) {
        const auto& r = reader.ValueOrDie();
        want.resize(r.count());
        r.DecompressRange(0, r.count(), want.data());
        want_sel.resize(r.count());
        want_selcnt = r.SelectBetween(0, r.count(), slo, shi,
                                      want_sel.data());
      }
    }
    for (KernelIsa isa : isas) {
      ScopedKernelIsa force(isa);
      auto reader = SegmentReader<int64_t>::Open(copy.data(), copy.size());
      ASSERT_EQ(reader.ok(), want_ok)
          << "isa=" << KernelIsaName(isa) << " trial=" << trial;
      if (!want_ok) continue;
      const auto& r = reader.ValueOrDie();
      std::vector<int64_t> got(r.count());
      r.DecompressRange(0, r.count(), got.data());
      ASSERT_EQ(want, got)
          << "isa=" << KernelIsaName(isa) << " trial=" << trial;
      std::vector<uint32_t> got_sel(r.count());
      const size_t got_selcnt =
          r.SelectBetween(0, r.count(), slo, shi, got_sel.data());
      ASSERT_EQ(want_selcnt, got_selcnt)
          << "isa=" << KernelIsaName(isa) << " trial=" << trial;
      for (size_t i = 0; i < got_selcnt; i++) {
        ASSERT_EQ(want_sel[i], got_sel[i])
            << "isa=" << KernelIsaName(isa) << " trial=" << trial;
      }
    }
  }
}

TEST(FuzzDecoders, BackendsAgreeOnRandomStreams) {
  // Differential fuzz across kernel backends: random codes packed at a
  // random width, plus randomized patched-decode inputs, must produce
  // byte-identical output from every backend. This is the freeform
  // counterpart of the structured differential suites in
  // bitpack_test/property_test.
  const auto isas = SupportedIsas();
  for (uint64_t seed = 0; seed < FuzzIters(200); seed++) {
    Rng rng(seed * 31 + 7);
    const int b = int(rng.Uniform(33));
    const size_t n = 1 + rng.Uniform(3000);
    std::vector<uint32_t> codes(n);
    const uint64_t mask =
        (b == 32) ? 0xFFFFFFFFull : ((uint64_t(1) << b) - 1);
    for (auto& c : codes) c = uint32_t(rng.Next() & mask);
    std::vector<uint32_t> packed(PackedByteSize(n, b) / 4 + 1, 0);
    BitPack(codes.data(), n, b, packed.data());

    std::vector<uint32_t> want((n + 31) / 32 * 32, 0);
    std::vector<uint32_t> want_exact(n, 0);
    {
      ScopedKernelIsa force(KernelIsa::kScalar);
      BitUnpack(packed.data(), n, b, want.data());
      BitUnpackExact(packed.data(), n, b, want_exact.data());
    }
    for (KernelIsa isa : isas) {
      ScopedKernelIsa force(isa);
      std::vector<uint32_t> got(want.size(), 1);
      std::vector<uint32_t> got_exact(n, 1);
      BitUnpack(packed.data(), n, b, got.data());
      BitUnpackExact(packed.data(), n, b, got_exact.data());
      ASSERT_EQ(want, got)
          << "isa=" << KernelIsaName(isa) << " seed=" << seed << " b=" << b;
      ASSERT_EQ(want_exact, got_exact)
          << "isa=" << KernelIsaName(isa) << " seed=" << seed << " b=" << b;
    }

    // Compressed-domain select over the same stream: scalar output is the
    // reference for every backend, including the staged tail handling.
    uint32_t slo = uint32_t(rng.Next() & mask);
    uint32_t shi = uint32_t(rng.Next() & mask);
    if (slo > shi) {
      const uint32_t t = slo;
      slo = shi;
      shi = t;
    }
    std::vector<uint32_t> want_sel(n);
    size_t want_selcnt;
    {
      ScopedKernelIsa force(KernelIsa::kScalar);
      want_selcnt = BitSelectBetween(packed.data(), n, b, slo, shi,
                                     uint32_t(seed), want_sel.data());
    }
    for (KernelIsa isa : isas) {
      ScopedKernelIsa force(isa);
      std::vector<uint32_t> got_sel(n, 0xDEADBEEF);
      const size_t got_selcnt = BitSelectBetween(
          packed.data(), n, b, slo, shi, uint32_t(seed), got_sel.data());
      ASSERT_EQ(want_selcnt, got_selcnt)
          << "isa=" << KernelIsaName(isa) << " seed=" << seed << " b=" << b;
      for (size_t i = 0; i < got_selcnt; i++) {
        ASSERT_EQ(want_sel[i], got_sel[i])
            << "isa=" << KernelIsaName(isa) << " seed=" << seed << " b=" << b;
      }
    }

    // Patched decode over a random exception population.
    std::vector<int64_t> data(n);
    const int vb = std::max(1, b % 16);
    const uint64_t vmask = (uint64_t(1) << vb) - 1;
    for (auto& v : data) {
      v = int64_t(rng.Next() & vmask);
      if (rng.Bernoulli(0.1)) v = int64_t(rng.Next());  // exception
    }
    std::vector<uint32_t> code(n), miss(n);
    std::vector<int64_t> exc(n);
    size_t first = 0;
    size_t nexc = CompressPred(data.data(), n, vb, int64_t(0), code.data(),
                               exc.data(), &first, miss.data());
    std::vector<int64_t> want_p(n), want_d(n);
    {
      ScopedKernelIsa force(KernelIsa::kScalar);
      DecompressPatched(code.data(), n, ForCodec<int64_t>(0), exc.data(),
                        first, nexc, want_p.data());
      DecompressPatchedDelta(code.data(), n, ForCodec<int64_t>(0),
                             exc.data(), first, nexc, int64_t(seed),
                             want_d.data());
    }
    ASSERT_EQ(want_p, data) << "seed=" << seed;
    for (KernelIsa isa : isas) {
      ScopedKernelIsa force(isa);
      std::vector<int64_t> got_p(n), got_d(n);
      DecompressPatched(code.data(), n, ForCodec<int64_t>(0), exc.data(),
                        first, nexc, got_p.data());
      DecompressPatchedDelta(code.data(), n, ForCodec<int64_t>(0),
                             exc.data(), first, nexc, int64_t(seed),
                             got_d.data());
      ASSERT_EQ(want_p, got_p)
          << "isa=" << KernelIsaName(isa) << " seed=" << seed;
      ASSERT_EQ(want_d, got_d)
          << "isa=" << KernelIsaName(isa) << " seed=" << seed;
    }
  }
}

}  // namespace
}  // namespace scc
