#include <algorithm>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/segment_builder.h"
#include "core/segment_reader.h"
#include "util/rng.h"

// PFOR-DELTA segment tests: monotone sequences (the inverted-list case the
// scheme is designed for), non-monotone data via wraparound deltas, group
// independence through per-group running bases, and fine-grained access.

namespace scc {
namespace {

std::vector<uint64_t> MonotoneGaps(size_t n, uint64_t max_gap, double jump_rate,
                                   uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> v(n);
  uint64_t acc = 0;
  for (size_t i = 0; i < n; i++) {
    acc += rng.Uniform(max_gap) + 1;
    if (rng.Bernoulli(jump_rate)) acc += 1u << 20;
    v[i] = acc;
  }
  return v;
}

template <typename T>
void RoundTrip(const std::vector<T>& in, int b, T base) {
  auto seg = SegmentBuilder<T>::BuildPForDelta(in, PForParams<T>{b, base});
  ASSERT_TRUE(seg.ok()) << seg.status().ToString();
  auto reader =
      SegmentReader<T>::Open(seg.ValueOrDie().data(), seg.ValueOrDie().size());
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  std::vector<T> out(in.size());
  reader.ValueOrDie().DecompressAll(out.data());
  ASSERT_EQ(in, out);
}

TEST(PForDelta, MonotoneRoundTrip) {
  for (size_t n : {1u, 127u, 128u, 129u, 1000u, 65536u}) {
    RoundTrip(MonotoneGaps(n, 100, 0.01, n), 7, uint64_t(1));
  }
}

TEST(PForDelta, RandomDataViaWraparound) {
  // Deltas of random data are random; with a small b nearly everything is
  // an exception, but the round trip must still be exact.
  Rng rng(3);
  std::vector<int64_t> in(5000);
  for (auto& v : in) v = int64_t(rng.Next());
  RoundTrip(in, 8, int64_t(0));
}

TEST(PForDelta, DecreasingSequence) {
  // Negative deltas wrap; a negative base captures them.
  std::vector<int32_t> in(4000);
  for (size_t i = 0; i < in.size(); i++) in[i] = int32_t(1000000 - 3 * i);
  RoundTrip(in, 4, int32_t(-8));
}

TEST(PForDelta, ExtremeValues) {
  std::vector<int64_t> in = {std::numeric_limits<int64_t>::min(),
                             std::numeric_limits<int64_t>::max(),
                             0,
                             -1,
                             1,
                             std::numeric_limits<int64_t>::max()};
  RoundTrip(in, 5, int64_t(0));
}

TEST(PForDelta, GroupsDecodeIndependently) {
  auto in = MonotoneGaps(10 * 128, 50, 0.02, 17);
  auto seg =
      SegmentBuilder<uint64_t>::BuildPForDelta(in, PForParams<uint64_t>{6, 1});
  ASSERT_TRUE(seg.ok());
  auto reader = SegmentReader<uint64_t>::Open(seg.ValueOrDie().data(),
                                              seg.ValueOrDie().size());
  ASSERT_TRUE(reader.ok());
  const auto& r = reader.ValueOrDie();
  // Decode a middle slice without touching earlier groups: the per-group
  // running bases must make it exact.
  std::vector<uint64_t> out(128);
  r.DecompressRange(5 * 128, 128, out.data());
  for (size_t i = 0; i < 128; i++) EXPECT_EQ(out[i], in[5 * 128 + i]);
  // And an unaligned straddling slice.
  std::vector<uint64_t> out2(200);
  r.DecompressRange(700, 200, out2.data());
  for (size_t i = 0; i < 200; i++) EXPECT_EQ(out2[i], in[700 + i]);
}

TEST(PForDelta, FineGrainedGet) {
  auto in = MonotoneGaps(3000, 80, 0.05, 23);
  auto seg =
      SegmentBuilder<uint64_t>::BuildPForDelta(in, PForParams<uint64_t>{7, 1});
  ASSERT_TRUE(seg.ok());
  auto reader = SegmentReader<uint64_t>::Open(seg.ValueOrDie().data(),
                                              seg.ValueOrDie().size());
  ASSERT_TRUE(reader.ok());
  const auto& r = reader.ValueOrDie();
  for (size_t i = 0; i < in.size(); i += 13) {
    ASSERT_EQ(r.Get(i), in[i]) << i;
  }
}

TEST(PForDelta, CompressesSortedBetterThanPFor) {
  // The motivating property: d-gap-style data compresses far better with
  // PFOR-DELTA than with plain PFOR.
  auto in = MonotoneGaps(100000, 60, 0.0, 31);
  auto d = SegmentBuilder<uint64_t>::BuildPForDelta(in,
                                                    PForParams<uint64_t>{6, 1});
  auto p =
      SegmentBuilder<uint64_t>::BuildPFor(in, PForParams<uint64_t>{6, 0});
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(p.ok());
  EXPECT_LT(d.ValueOrDie().size() * 4, p.ValueOrDie().size());
}

}  // namespace
}  // namespace scc
