#include "sys/telemetry.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sys/perf_counters.h"

// Telemetry subsystem tests: registry identity and exact totals under
// concurrent sharded increments, snapshot/delta/export, span recording
// and nesting, and the disabled-mode no-op guarantees.
//
// The registry is process-global and shared across TEST cases, so every
// test uses metric names under its own "test.<case>." prefix and restores
// the enabled flags it flips.

namespace scc {
namespace {

/// Pulls ts/dur (microseconds) for the named event out of chrome-trace
/// JSON. Relies on the serializer's fixed key order (name ... ts, dur).
bool FindEvent(const std::string& json, const std::string& name, double* ts,
               double* dur) {
  size_t pos = json.find("\"name\":\"" + name + "\"");
  if (pos == std::string::npos) return false;
  size_t tpos = json.find("\"ts\":", pos);
  size_t dpos = json.find("\"dur\":", pos);
  if (tpos == std::string::npos || dpos == std::string::npos) return false;
  *ts = std::atof(json.c_str() + tpos + 5);
  *dur = std::atof(json.c_str() + dpos + 6);
  return true;
}

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override { SetTelemetryEnabled(true); }
  void TearDown() override {
    SetTelemetryEnabled(true);
    SetTraceEnabled(false);
  }
};

TEST_F(TelemetryTest, GetCounterReturnsSameObjectForSameName) {
  Counter& a = MetricsRegistry::Instance().GetCounter("test.identity.c");
  Counter& b = MetricsRegistry::Instance().GetCounter("test.identity.c");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.name(), "test.identity.c");
  Counter& c = MetricsRegistry::Instance().GetCounter("test.identity.other");
  EXPECT_NE(&a, &c);
}

TEST_F(TelemetryTest, CounterExactUnderConcurrentIncrements) {
  Counter& c = MetricsRegistry::Instance().GetCounter("test.concurrent.c");
  c.Reset();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; i++) c.Add(3);
    });
  }
  for (auto& th : threads) th.join();
  // Sharded relaxed adds must still sum exactly: no lost updates.
  EXPECT_EQ(c.Value(), uint64_t(kThreads) * kPerThread * 3);
}

TEST_F(TelemetryTest, GaugeSetAndAdd) {
  Gauge& g = MetricsRegistry::Instance().GetGauge("test.gauge.g");
  g.Set(100);
  EXPECT_EQ(g.Value(), 100);
  g.Add(-30);
  EXPECT_EQ(g.Value(), 70);
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

TEST_F(TelemetryTest, HistogramBucketsAndQuantiles) {
  Histogram& h = MetricsRegistry::Instance().GetHistogram("test.hist.h");
  h.Reset();
  // bit_width(v) picks the bucket: 0 -> 0, 1 -> 1, 2 -> 2, 1000 -> 10.
  h.Observe(0);
  h.Observe(1);
  h.Observe(2);
  h.Observe(1000);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1003u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(10), 1u);
  // Quantiles are bucket upper bounds: p100 covers the 1000 observation.
  EXPECT_GE(h.Quantile(1.0), 1000u);
  EXPECT_LE(h.Quantile(0.25), 1u);
  // 64-bit values clamp into the top bucket instead of overflowing it.
  h.Observe(UINT64_MAX);
  EXPECT_EQ(h.bucket(kHistogramBuckets - 1), 1u);
  EXPECT_EQ(h.max(), UINT64_MAX);
}

TEST_F(TelemetryTest, SnapshotFindAndDelta) {
  Counter& c = MetricsRegistry::Instance().GetCounter("test.delta.c");
  Gauge& g = MetricsRegistry::Instance().GetGauge("test.delta.g");
  c.Reset();
  c.Add(5);
  g.Set(42);
  MetricsSnapshot base = MetricsRegistry::Instance().Snapshot();
  const MetricEntry* e = base.Find("test.delta.c");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->value, 5);
  EXPECT_EQ(e->kind, MetricEntry::Kind::kCounter);

  c.Add(7);
  g.Set(17);
  MetricsSnapshot now = MetricsRegistry::Instance().Snapshot();
  MetricsSnapshot delta = now.DeltaSince(base);
  // Counters difference; gauges report the current value.
  EXPECT_EQ(delta.Find("test.delta.c")->value, 7);
  EXPECT_EQ(delta.Find("test.delta.g")->value, 17);
}

TEST_F(TelemetryTest, DeltaClampsCounterResetsToZero) {
  // Regression for scc_stats --watch across a registry Clear/ResetAll or
  // a process restart: the new sample is *below* the base, and the
  // windowed delta must clamp to the observable progress (the post-reset
  // value), never go negative or print a wrapped garbage rate.
  Counter& c = MetricsRegistry::Instance().GetCounter("test.clamp.c");
  Histogram& h = MetricsRegistry::Instance().GetHistogram("test.clamp.h");
  c.Reset();
  h.Reset();
  c.Add(100);
  for (int i = 0; i < 50; i++) h.Observe(1000);
  MetricsSnapshot base = MetricsRegistry::Instance().Snapshot();

  c.Reset();  // simulated restart: lifetime value drops below the base
  h.Reset();
  c.Add(3);
  h.Observe(2000);
  MetricsSnapshot delta =
      MetricsRegistry::Instance().Snapshot().DeltaSince(base);
  const MetricEntry* dc = delta.Find("test.clamp.c");
  ASSERT_NE(dc, nullptr);
  EXPECT_EQ(dc->value, 0);  // clamped, not 3 - 100
  const MetricEntry* dh = delta.Find("test.clamp.h");
  ASSERT_NE(dh, nullptr);
  EXPECT_GE(dh->value, 0);
  EXPECT_GE(dh->hist_sum, 0u);
}

TEST_F(TelemetryTest, SnapshotEntriesSortedByName) {
  MetricsRegistry::Instance().GetCounter("test.sorted.b");
  MetricsRegistry::Instance().GetCounter("test.sorted.a");
  MetricsSnapshot snap = MetricsRegistry::Instance().Snapshot();
  for (size_t i = 1; i < snap.entries.size(); i++) {
    EXPECT_LT(snap.entries[i - 1].name, snap.entries[i].name);
  }
}

TEST_F(TelemetryTest, ExportersRenderRegisteredMetrics) {
  Counter& c = MetricsRegistry::Instance().GetCounter("test.export.c");
  c.Reset();
  c.Add(9);
  MetricsSnapshot snap = MetricsRegistry::Instance().Snapshot();
  std::string table = snap.ToTable();
  EXPECT_NE(table.find("test.export.c"), std::string::npos);
  std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"test.export.c\":9"), std::string::npos);
  // Zero-valued metrics are hidden from the table unless asked for.
  Counter& z = MetricsRegistry::Instance().GetCounter("test.export.zero");
  z.Reset();
  MetricsSnapshot snap2 = MetricsRegistry::Instance().Snapshot();
  EXPECT_EQ(snap2.ToTable().find("test.export.zero"), std::string::npos);
  EXPECT_NE(snap2.ToTable(/*include_zero=*/true).find("test.export.zero"),
            std::string::npos);
}

TEST_F(TelemetryTest, DisabledModeIsANoOp) {
  Counter& c = MetricsRegistry::Instance().GetCounter("test.disabled.c");
  Gauge& g = MetricsRegistry::Instance().GetGauge("test.disabled.g");
  Histogram& h = MetricsRegistry::Instance().GetHistogram("test.disabled.h");
  c.Reset();
  g.Reset();
  h.Reset();
  SetTelemetryEnabled(false);
  EXPECT_FALSE(TelemetryEnabled());
  c.Add(100);
  g.Set(100);
  h.Observe(100);
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(g.Value(), 0);
  EXPECT_EQ(h.count(), 0u);
  SetTelemetryEnabled(true);
  c.Add(1);
  EXPECT_EQ(c.Value(), 1u);
}

TEST_F(TelemetryTest, SpansNotRecordedWhenTracingDisabled) {
  TraceRecorder& tr = TraceRecorder::Instance();
  tr.Clear();
  ASSERT_FALSE(TraceEnabled());
  {
    SCC_TRACE_SPAN("test.span.disabled");
  }
  EXPECT_EQ(tr.event_count(), 0u);
}

TEST_F(TelemetryTest, NestedSpansRecordedWithContainment) {
  TraceRecorder& tr = TraceRecorder::Instance();
  tr.Clear();
  SetTraceEnabled(true);
  {
    SCC_TRACE_SPAN("test.span.outer");
    {
      SCC_TRACE_SPAN("test.span.inner");
      // Make the inner span non-zero length.
      volatile uint64_t sink = 0;
      for (int i = 0; i < 10000; i++) sink += uint64_t(i);
    }
  }
  SetTraceEnabled(false);
  EXPECT_EQ(tr.event_count(), 2u);
  std::string json = tr.ToChromeTraceJson();
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  double outer_ts = 0, outer_dur = 0, inner_ts = 0, inner_dur = 0;
  ASSERT_TRUE(FindEvent(json, "test.span.outer", &outer_ts, &outer_dur));
  ASSERT_TRUE(FindEvent(json, "test.span.inner", &inner_ts, &inner_dur));
  // Containment: the outer span brackets the inner one. 0.01 us slack
  // for the %.3f serialization rounding.
  EXPECT_LE(outer_ts, inner_ts + 0.01);
  EXPECT_GE(outer_ts + outer_dur, inner_ts + inner_dur - 0.01);
  EXPECT_GE(outer_dur, inner_dur - 0.01);
}

TEST_F(TelemetryTest, SpanStartsDisabledStaysUnrecordedAcrossEnable) {
  // A span constructed while tracing is off must not record even if
  // tracing turns on before it destructs (it never read the clock).
  TraceRecorder& tr = TraceRecorder::Instance();
  tr.Clear();
  {
    TraceSpan span("test.span.latent");
    SetTraceEnabled(true);
  }
  SetTraceEnabled(false);
  EXPECT_EQ(tr.event_count(), 0u);
}

TEST_F(TelemetryTest, ResetAllZeroesButKeepsRegistration) {
  Counter& c = MetricsRegistry::Instance().GetCounter("test.resetall.c");
  c.Add(11);
  MetricsRegistry::Instance().ResetAll();
  EXPECT_EQ(c.Value(), 0u);
  // Same object is still registered under the name.
  EXPECT_EQ(&MetricsRegistry::Instance().GetCounter("test.resetall.c"), &c);
}

TEST_F(TelemetryTest, ConcurrentFirstUseRegistrationIsRaceFree) {
  // The exec subsystem's workers can all touch a metric for the first
  // time simultaneously, so first-use registration must be safe: every
  // thread resolves the same Counter object per name (node-based map +
  // registry mutex), and no increment is lost while registration races.
  constexpr int kThreads = 8;
  constexpr int kNames = 16;
  constexpr int kIncrements = 500;
  std::vector<std::vector<Counter*>> seen(kThreads,
                                          std::vector<Counter*>(kNames));
  std::atomic<int> start{0};
  std::vector<std::thread> threads;
  for (int id = 0; id < kThreads; id++) {
    threads.emplace_back([&, id] {
      start.fetch_add(1);
      while (start.load() < kThreads) {
      }  // spin: maximize first-use overlap
      for (int n = 0; n < kNames; n++) {
        Counter& c = MetricsRegistry::Instance().GetCounter(
            "test.firstuse.c" + std::to_string(n));
        seen[id][n] = &c;
        for (int i = 0; i < kIncrements; i++) c.Increment();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int n = 0; n < kNames; n++) {
    for (int id = 1; id < kThreads; id++) {
      ASSERT_EQ(seen[id][n], seen[0][n]) << "name split across objects";
    }
#if SCC_TELEMETRY
    // Value asserts only with metrics compiled in; registration identity
    // above must hold either way.
    EXPECT_EQ(seen[0][n]->Value(), uint64_t(kThreads) * kIncrements);
#endif
  }
}

TEST_F(TelemetryTest, QuantileInterpolationTracksExactPercentiles) {
  // Interpolated quantiles over log2 buckets must land within the exact
  // percentile's bucket — a factor-of-2 bound — on both a uniform and a
  // heavily skewed distribution. (Raw bucket upper bounds would be up to
  // 2x high on *every* query; interpolation recovers sub-bucket
  // resolution whenever the covering bucket is densely populated.)
  Histogram& h = MetricsRegistry::Instance().GetHistogram("test.quant.u");
  h.Reset();
  std::vector<uint64_t> vals;
  for (uint64_t v = 1; v <= 1000; v++) vals.push_back(v);
  for (uint64_t v : vals) h.Observe(v);
  for (double q : {0.5, 0.95, 0.99, 0.999}) {
    const double exact = double(vals[size_t(q * double(vals.size() - 1))]);
    const double est = h.Quantile(q);
    EXPECT_GE(est, exact / 2.0) << "q=" << q;
    EXPECT_LE(est, exact * 2.0) << "q=" << q;
  }
  // Uniform 1..1000 has dense high buckets, so the estimate should be
  // much tighter than the bucket bound at the median.
  EXPECT_NEAR(h.Quantile(0.5), 500.0, 50.0);

  Histogram& s = MetricsRegistry::Instance().GetHistogram("test.quant.s");
  s.Reset();
  std::vector<uint64_t> skew;
  for (int i = 0; i < 900; i++) skew.push_back(10);
  for (int i = 0; i < 95; i++) skew.push_back(1000);
  for (int i = 0; i < 5; i++) skew.push_back(100000);
  for (uint64_t v : skew) s.Observe(v);
  for (double q : {0.5, 0.95, 0.99, 0.999}) {
    const double exact = double(skew[size_t(q * double(skew.size() - 1))]);
    const double est = s.Quantile(q);
    EXPECT_GE(est, exact / 2.0) << "q=" << q;
    EXPECT_LE(est, exact * 2.0) << "q=" << q;
  }
  // Endpoints are exact, not interpolated.
  EXPECT_EQ(s.Quantile(0.0), 10.0);
  EXPECT_EQ(s.Quantile(1.0), 100000.0);
}

TEST_F(TelemetryTest, DeltaSinceSubtractsHistogramsBucketwise) {
  Histogram& h = MetricsRegistry::Instance().GetHistogram("test.hdelta.h");
  h.Reset();
  h.Observe(3);
  h.Observe(100);
  MetricsSnapshot base = MetricsRegistry::Instance().Snapshot();
  h.Observe(5);
  h.Observe(5);
  h.Observe(2000);
  MetricsSnapshot delta =
      MetricsRegistry::Instance().Snapshot().DeltaSince(base);
  const MetricEntry* e = delta.Find("test.hdelta.h");
  ASSERT_NE(e, nullptr);
  // Only the window's three observations remain.
  EXPECT_EQ(e->value, 3);
  EXPECT_EQ(e->hist_sum, 2010u);
  HistogramSnapshot hs = e->ToHistogramSnapshot();
  EXPECT_EQ(hs.buckets[3], 2u);   // two 5s (bit_width 3)
  EXPECT_EQ(hs.buckets[11], 1u);  // one 2000 (bit_width 11)
  EXPECT_EQ(hs.buckets[2], 0u);   // the pre-window 3 subtracted away
  EXPECT_EQ(hs.buckets[7], 0u);   // the pre-window 100 subtracted away
  uint64_t bucket_total = 0;
  for (uint64_t b : hs.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, hs.count);  // count re-derived from buckets
  // Windowed endpoints come from bucket bounds, so they bracket the
  // window's true values and exclude pre-window ones.
  EXPECT_GE(e->hist_min, 4u);     // bucket 3 lower bound
  EXPECT_LE(e->hist_min, 5u);
  EXPECT_GE(e->hist_max, 2000u);  // >= the true window max
  EXPECT_LE(e->hist_max, 2047u);  // bucket 11 upper bound
  // Windowed quantiles are recomputed over the delta buckets: the median
  // of {5, 5, 2000} sits in bucket 3, nowhere near the pre-window 100.
  EXPECT_LE(e->hist_p50, 7u);
  EXPECT_GE(e->hist_p999, 1024u);
}

TEST_F(TelemetryTest, PrometheusExportFormat) {
  Counter& c = MetricsRegistry::Instance().GetCounter("test.prom.c");
  Gauge& g = MetricsRegistry::Instance().GetGauge("test.prom.g");
  Histogram& h = MetricsRegistry::Instance().GetHistogram("test.prom.h");
  c.Reset();
  g.Reset();
  h.Reset();
  c.Add(7);
  g.Set(-3);
  h.Observe(5);
  h.Observe(1000);
  std::string prom = MetricsRegistry::Instance().Snapshot().ToPrometheus();
  // Names: "scc_" prefix, dots mapped to underscores, TYPE annotations.
  EXPECT_NE(prom.find("# TYPE scc_test_prom_c counter"), std::string::npos);
  EXPECT_NE(prom.find("scc_test_prom_c 7"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE scc_test_prom_g gauge"), std::string::npos);
  EXPECT_NE(prom.find("scc_test_prom_g -3"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE scc_test_prom_h histogram"),
            std::string::npos);
  // Histogram series: cumulative buckets (5 -> le="7", 1000 -> le="1023"),
  // the mandatory +Inf bucket, and _sum/_count.
  EXPECT_NE(prom.find("scc_test_prom_h_bucket{le=\"7\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("scc_test_prom_h_bucket{le=\"1023\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("scc_test_prom_h_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("scc_test_prom_h_sum 1005"), std::string::npos);
  EXPECT_NE(prom.find("scc_test_prom_h_count 2"), std::string::npos);
  // Every non-comment line is "name[{labels}] value": minimal wellformed-
  // ness so a scrape wouldn't 400.
  size_t start = 0;
  while (start < prom.size()) {
    size_t end = prom.find('\n', start);
    if (end == std::string::npos) end = prom.size();
    std::string line = prom.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_EQ(line.compare(0, 4, "scc_"), 0) << line;
    char* endp = nullptr;
    std::strtod(line.c_str() + space + 1, &endp);
    EXPECT_EQ(*endp, '\0') << "unparseable value in: " << line;
  }
}

TEST_F(TelemetryTest, OwnedSpanNameSurvivesSourceDestruction) {
  // The std::string ctor interns a copy, so a span label built at runtime
  // (per-query, per-table) can outlive the string it came from.
  TraceRecorder& tr = TraceRecorder::Instance();
  tr.Clear();
  SetTraceEnabled(true);
  {
    std::string name = "test.span.owned.";
    name += std::to_string(42);
    TraceSpan span(name);
    name.assign(200, 'x');  // clobber the source before the span ends
  }
  SetTraceEnabled(false);
  EXPECT_EQ(tr.event_count(), 1u);
  std::string json = tr.ToChromeTraceJson();
  EXPECT_NE(json.find("\"name\":\"test.span.owned.42\""),
            std::string::npos);
  EXPECT_EQ(json.find("xxxx"), std::string::npos);
}

TEST_F(TelemetryTest, TraceOperationLinksChildSpans) {
  TraceRecorder& tr = TraceRecorder::Instance();
  tr.Clear();
  SetTraceEnabled(true);
  {
    TraceOperation op("test.op.root");
    SCC_TRACE_SPAN("test.op.child");
  }
  SetTraceEnabled(false);
  std::string json = tr.ToChromeTraceJson();
  // Both events carry the operation id; the child's parent is the root.
  size_t root = json.find("\"name\":\"test.op.root\"");
  size_t child = json.find("\"name\":\"test.op.child\"");
  ASSERT_NE(root, std::string::npos);
  ASSERT_NE(child, std::string::npos);
  auto arg = [&](size_t from, const char* key) -> long long {
    size_t p = json.find(std::string("\"") + key + "\":", from);
    EXPECT_NE(p, std::string::npos) << key;
    if (p == std::string::npos) return -1;
    return std::atoll(json.c_str() + p + std::strlen(key) + 3);
  };
  const long long op_id = arg(root, "op");
  EXPECT_GT(op_id, 0);
  EXPECT_EQ(arg(root, "span"), op_id);  // the op doubles as the root span
  EXPECT_EQ(arg(child, "op"), op_id);
  EXPECT_EQ(arg(child, "parent"), op_id);
  EXPECT_NE(arg(child, "span"), op_id);  // child got its own span id
}

TEST_F(TelemetryTest, PerfReadingSerializesUnavailableAsNa) {
  PerfReading r;  // all fields -1 (unavailable)
  EXPECT_NE(r.ToString().find("cycles=n/a"), std::string::npos);
  EXPECT_NE(r.ToJson().find("\"cycles\":null"), std::string::npos);
  r.cycles = 1000;
  r.instructions = 2000;
  EXPECT_NE(r.ToString().find("ipc=2.00"), std::string::npos);
  EXPECT_NE(r.ToJson().find("\"instructions\":2000"), std::string::npos);
}

}  // namespace
}  // namespace scc
