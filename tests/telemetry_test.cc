#include "sys/telemetry.h"

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sys/perf_counters.h"

// Telemetry subsystem tests: registry identity and exact totals under
// concurrent sharded increments, snapshot/delta/export, span recording
// and nesting, and the disabled-mode no-op guarantees.
//
// The registry is process-global and shared across TEST cases, so every
// test uses metric names under its own "test.<case>." prefix and restores
// the enabled flags it flips.

namespace scc {
namespace {

/// Pulls ts/dur (microseconds) for the named event out of chrome-trace
/// JSON. Relies on the serializer's fixed key order (name ... ts, dur).
bool FindEvent(const std::string& json, const std::string& name, double* ts,
               double* dur) {
  size_t pos = json.find("\"name\":\"" + name + "\"");
  if (pos == std::string::npos) return false;
  size_t tpos = json.find("\"ts\":", pos);
  size_t dpos = json.find("\"dur\":", pos);
  if (tpos == std::string::npos || dpos == std::string::npos) return false;
  *ts = std::atof(json.c_str() + tpos + 5);
  *dur = std::atof(json.c_str() + dpos + 6);
  return true;
}

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override { SetTelemetryEnabled(true); }
  void TearDown() override {
    SetTelemetryEnabled(true);
    SetTraceEnabled(false);
  }
};

TEST_F(TelemetryTest, GetCounterReturnsSameObjectForSameName) {
  Counter& a = MetricsRegistry::Instance().GetCounter("test.identity.c");
  Counter& b = MetricsRegistry::Instance().GetCounter("test.identity.c");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.name(), "test.identity.c");
  Counter& c = MetricsRegistry::Instance().GetCounter("test.identity.other");
  EXPECT_NE(&a, &c);
}

TEST_F(TelemetryTest, CounterExactUnderConcurrentIncrements) {
  Counter& c = MetricsRegistry::Instance().GetCounter("test.concurrent.c");
  c.Reset();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; i++) c.Add(3);
    });
  }
  for (auto& th : threads) th.join();
  // Sharded relaxed adds must still sum exactly: no lost updates.
  EXPECT_EQ(c.Value(), uint64_t(kThreads) * kPerThread * 3);
}

TEST_F(TelemetryTest, GaugeSetAndAdd) {
  Gauge& g = MetricsRegistry::Instance().GetGauge("test.gauge.g");
  g.Set(100);
  EXPECT_EQ(g.Value(), 100);
  g.Add(-30);
  EXPECT_EQ(g.Value(), 70);
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

TEST_F(TelemetryTest, HistogramBucketsAndQuantiles) {
  Histogram& h = MetricsRegistry::Instance().GetHistogram("test.hist.h");
  h.Reset();
  // bit_width(v) picks the bucket: 0 -> 0, 1 -> 1, 2 -> 2, 1000 -> 10.
  h.Observe(0);
  h.Observe(1);
  h.Observe(2);
  h.Observe(1000);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1003u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(10), 1u);
  // Quantiles are bucket upper bounds: p100 covers the 1000 observation.
  EXPECT_GE(h.Quantile(1.0), 1000u);
  EXPECT_LE(h.Quantile(0.25), 1u);
  // 64-bit values clamp into the top bucket instead of overflowing it.
  h.Observe(UINT64_MAX);
  EXPECT_EQ(h.bucket(kHistogramBuckets - 1), 1u);
  EXPECT_EQ(h.max(), UINT64_MAX);
}

TEST_F(TelemetryTest, SnapshotFindAndDelta) {
  Counter& c = MetricsRegistry::Instance().GetCounter("test.delta.c");
  Gauge& g = MetricsRegistry::Instance().GetGauge("test.delta.g");
  c.Reset();
  c.Add(5);
  g.Set(42);
  MetricsSnapshot base = MetricsRegistry::Instance().Snapshot();
  const MetricEntry* e = base.Find("test.delta.c");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->value, 5);
  EXPECT_EQ(e->kind, MetricEntry::Kind::kCounter);

  c.Add(7);
  g.Set(17);
  MetricsSnapshot now = MetricsRegistry::Instance().Snapshot();
  MetricsSnapshot delta = now.DeltaSince(base);
  // Counters difference; gauges report the current value.
  EXPECT_EQ(delta.Find("test.delta.c")->value, 7);
  EXPECT_EQ(delta.Find("test.delta.g")->value, 17);
}

TEST_F(TelemetryTest, SnapshotEntriesSortedByName) {
  MetricsRegistry::Instance().GetCounter("test.sorted.b");
  MetricsRegistry::Instance().GetCounter("test.sorted.a");
  MetricsSnapshot snap = MetricsRegistry::Instance().Snapshot();
  for (size_t i = 1; i < snap.entries.size(); i++) {
    EXPECT_LT(snap.entries[i - 1].name, snap.entries[i].name);
  }
}

TEST_F(TelemetryTest, ExportersRenderRegisteredMetrics) {
  Counter& c = MetricsRegistry::Instance().GetCounter("test.export.c");
  c.Reset();
  c.Add(9);
  MetricsSnapshot snap = MetricsRegistry::Instance().Snapshot();
  std::string table = snap.ToTable();
  EXPECT_NE(table.find("test.export.c"), std::string::npos);
  std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"test.export.c\":9"), std::string::npos);
  // Zero-valued metrics are hidden from the table unless asked for.
  Counter& z = MetricsRegistry::Instance().GetCounter("test.export.zero");
  z.Reset();
  MetricsSnapshot snap2 = MetricsRegistry::Instance().Snapshot();
  EXPECT_EQ(snap2.ToTable().find("test.export.zero"), std::string::npos);
  EXPECT_NE(snap2.ToTable(/*include_zero=*/true).find("test.export.zero"),
            std::string::npos);
}

TEST_F(TelemetryTest, DisabledModeIsANoOp) {
  Counter& c = MetricsRegistry::Instance().GetCounter("test.disabled.c");
  Gauge& g = MetricsRegistry::Instance().GetGauge("test.disabled.g");
  Histogram& h = MetricsRegistry::Instance().GetHistogram("test.disabled.h");
  c.Reset();
  g.Reset();
  h.Reset();
  SetTelemetryEnabled(false);
  EXPECT_FALSE(TelemetryEnabled());
  c.Add(100);
  g.Set(100);
  h.Observe(100);
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(g.Value(), 0);
  EXPECT_EQ(h.count(), 0u);
  SetTelemetryEnabled(true);
  c.Add(1);
  EXPECT_EQ(c.Value(), 1u);
}

TEST_F(TelemetryTest, SpansNotRecordedWhenTracingDisabled) {
  TraceRecorder& tr = TraceRecorder::Instance();
  tr.Clear();
  ASSERT_FALSE(TraceEnabled());
  {
    SCC_TRACE_SPAN("test.span.disabled");
  }
  EXPECT_EQ(tr.event_count(), 0u);
}

TEST_F(TelemetryTest, NestedSpansRecordedWithContainment) {
  TraceRecorder& tr = TraceRecorder::Instance();
  tr.Clear();
  SetTraceEnabled(true);
  {
    SCC_TRACE_SPAN("test.span.outer");
    {
      SCC_TRACE_SPAN("test.span.inner");
      // Make the inner span non-zero length.
      volatile uint64_t sink = 0;
      for (int i = 0; i < 10000; i++) sink += uint64_t(i);
    }
  }
  SetTraceEnabled(false);
  EXPECT_EQ(tr.event_count(), 2u);
  std::string json = tr.ToChromeTraceJson();
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  double outer_ts = 0, outer_dur = 0, inner_ts = 0, inner_dur = 0;
  ASSERT_TRUE(FindEvent(json, "test.span.outer", &outer_ts, &outer_dur));
  ASSERT_TRUE(FindEvent(json, "test.span.inner", &inner_ts, &inner_dur));
  // Containment: the outer span brackets the inner one. 0.01 us slack
  // for the %.3f serialization rounding.
  EXPECT_LE(outer_ts, inner_ts + 0.01);
  EXPECT_GE(outer_ts + outer_dur, inner_ts + inner_dur - 0.01);
  EXPECT_GE(outer_dur, inner_dur - 0.01);
}

TEST_F(TelemetryTest, SpanStartsDisabledStaysUnrecordedAcrossEnable) {
  // A span constructed while tracing is off must not record even if
  // tracing turns on before it destructs (it never read the clock).
  TraceRecorder& tr = TraceRecorder::Instance();
  tr.Clear();
  {
    TraceSpan span("test.span.latent");
    SetTraceEnabled(true);
  }
  SetTraceEnabled(false);
  EXPECT_EQ(tr.event_count(), 0u);
}

TEST_F(TelemetryTest, ResetAllZeroesButKeepsRegistration) {
  Counter& c = MetricsRegistry::Instance().GetCounter("test.resetall.c");
  c.Add(11);
  MetricsRegistry::Instance().ResetAll();
  EXPECT_EQ(c.Value(), 0u);
  // Same object is still registered under the name.
  EXPECT_EQ(&MetricsRegistry::Instance().GetCounter("test.resetall.c"), &c);
}

TEST_F(TelemetryTest, ConcurrentFirstUseRegistrationIsRaceFree) {
  // The exec subsystem's workers can all touch a metric for the first
  // time simultaneously, so first-use registration must be safe: every
  // thread resolves the same Counter object per name (node-based map +
  // registry mutex), and no increment is lost while registration races.
  constexpr int kThreads = 8;
  constexpr int kNames = 16;
  constexpr int kIncrements = 500;
  std::vector<std::vector<Counter*>> seen(kThreads,
                                          std::vector<Counter*>(kNames));
  std::atomic<int> start{0};
  std::vector<std::thread> threads;
  for (int id = 0; id < kThreads; id++) {
    threads.emplace_back([&, id] {
      start.fetch_add(1);
      while (start.load() < kThreads) {
      }  // spin: maximize first-use overlap
      for (int n = 0; n < kNames; n++) {
        Counter& c = MetricsRegistry::Instance().GetCounter(
            "test.firstuse.c" + std::to_string(n));
        seen[id][n] = &c;
        for (int i = 0; i < kIncrements; i++) c.Increment();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int n = 0; n < kNames; n++) {
    for (int id = 1; id < kThreads; id++) {
      ASSERT_EQ(seen[id][n], seen[0][n]) << "name split across objects";
    }
#if SCC_TELEMETRY
    // Value asserts only with metrics compiled in; registration identity
    // above must hold either way.
    EXPECT_EQ(seen[0][n]->Value(), uint64_t(kThreads) * kIncrements);
#endif
  }
}

TEST_F(TelemetryTest, PerfReadingSerializesUnavailableAsNa) {
  PerfReading r;  // all fields -1 (unavailable)
  EXPECT_NE(r.ToString().find("cycles=n/a"), std::string::npos);
  EXPECT_NE(r.ToJson().find("\"cycles\":null"), std::string::npos);
  r.cycles = 1000;
  r.instructions = 2000;
  EXPECT_NE(r.ToString().find("ipc=2.00"), std::string::npos);
  EXPECT_NE(r.ToJson().find("\"instructions\":2000"), std::string::npos);
}

}  // namespace
}  // namespace scc
