#include <array>
#include <map>

#include <gtest/gtest.h>

#include "engine/operators.h"
#include "engine/sort.h"
#include "storage/scan.h"
#include "tpch/queries.h"

// Integration: full TPC-H queries composed from the *generic* Volcano
// operators (TableScanOp -> SelectOp -> ProjectOp -> HashAggregateOp ->
// SortOp) over compressed storage, cross-checked against the hand-coded
// vectorized plans in tpch/queries.cc. Proves the operator framework and
// the hand-written pipelines compute the same answers from the same
// compressed segments.

namespace scc {
namespace {

class OperatorTreeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_ = new TpchData(GenerateTpch(0.005));
    db_ = new TpchDatabase(
        TpchDatabase::Build(*data_, ColumnCompression::kAuto, 8192));
  }
  static void TearDownTestSuite() {
    delete data_;
    delete db_;
    data_ = nullptr;
    db_ = nullptr;
  }
  static TpchData* data_;
  static TpchDatabase* db_;
};

TpchData* OperatorTreeTest::data_ = nullptr;
TpchDatabase* OperatorTreeTest::db_ = nullptr;

TEST_F(OperatorTreeTest, Q1ThroughGenericOperators) {
  SimDisk disk;
  BufferManager bm(&disk, 1u << 30, Layout::kDSM);
  // scan -> select(shipdate <= cutoff) -> project(disc_price)
  //      -> aggregate by (returnflag, linestatus)
  TableScanOp scan(&db_->lineitem, &bm,
                   {"l_shipdate", "l_returnflag", "l_linestatus",
                    "l_quantity", "l_extendedprice", "l_discount"});
  const int32_t cutoff = TpchDate(1998, 9, 2);
  SelectOp sel(&scan, 0, [cutoff](const Vector& col, size_t n, SelVec* sv) {
    return SelectLE(col.data<int32_t>(), n, cutoff, sv);
  });
  ProjectOp proj(&sel, TypeId::kInt64, [](const Batch& in, Vector* out) {
    const int64_t* ep = in.col(4)->data<int64_t>();
    const int8_t* dc = in.col(5)->data<int8_t>();
    int64_t* o = out->data<int64_t>();
    for (size_t i = 0; i < in.rows; i++) {
      o[i] = ep[i] * (100 - dc[i]);
    }
  });
  HashAggregateOp agg(&proj, {1, 2}, {4, 4},
                      {{AggKind::kSum, 3},     // sum(quantity)
                       {AggKind::kSum, 6},     // sum(disc_price)
                       {AggKind::kCount, 0}});
  SortOp sorted(&agg, {{0, false}, {1, false}});

  // Scalar reference over the raw generated data.
  const auto& li = data_->lineitem;
  std::map<std::pair<int, int>, std::array<int64_t, 3>> ref;
  for (size_t i = 0; i < li.rows(); i++) {
    if (li.shipdate[i] > cutoff) continue;
    auto& r = ref[{li.returnflag[i], li.linestatus[i]}];
    r[0] += li.quantity[i];
    r[1] += li.extendedprice[i] * (100 - li.discount[i]);
    r[2] += 1;
  }

  Batch b;
  size_t groups = 0;
  while (size_t n = sorted.Next(&b)) {
    for (size_t i = 0; i < n; i++) {
      int rf = int(b.col(0)->data<int64_t>()[i]);
      int ls = int(b.col(1)->data<int64_t>()[i]);
      auto it = ref.find({rf, ls});
      ASSERT_NE(it, ref.end()) << rf << "/" << ls;
      EXPECT_EQ(b.col(2)->data<int64_t>()[i], it->second[0]);
      EXPECT_EQ(b.col(3)->data<int64_t>()[i], it->second[1]);
      EXPECT_EQ(b.col(4)->data<int64_t>()[i], it->second[2]);
      groups++;
    }
  }
  EXPECT_EQ(groups, ref.size());
}

TEST_F(OperatorTreeTest, Q6ThroughGenericOperators) {
  SimDisk disk;
  BufferManager bm(&disk, 1u << 30, Layout::kDSM);
  TableScanOp scan(&db_->lineitem, &bm,
                   {"l_shipdate", "l_discount", "l_quantity",
                    "l_extendedprice"});
  const int32_t lo = TpchDate(1994, 1, 1), hi = TpchDate(1995, 1, 1);
  SelectOp date_sel(&scan, 0, [lo, hi](const Vector& col, size_t n,
                                       SelVec* sv) {
    return SelectBetween(col.data<int32_t>(), n, lo, hi - 1, sv);
  });
  SelectOp disc_sel(&date_sel, 1, [](const Vector& col, size_t n, SelVec* sv) {
    return SelectBetween(col.data<int8_t>(), n, int8_t(5), int8_t(7), sv);
  });
  SelectOp qty_sel(&disc_sel, 2, [](const Vector& col, size_t n, SelVec* sv) {
    return SelectLT(col.data<int8_t>(), n, int8_t(24), sv);
  });
  ProjectOp proj(&qty_sel, TypeId::kInt64, [](const Batch& in, Vector* out) {
    const int64_t* ep = in.col(3)->data<int64_t>();
    const int8_t* dc = in.col(1)->data<int8_t>();
    int64_t* o = out->data<int64_t>();
    for (size_t i = 0; i < in.rows; i++) o[i] = ep[i] * dc[i];
  });
  HashAggregateOp agg(&proj, {}, {}, {{AggKind::kSum, 4}});

  Batch b;
  int64_t revenue = 0;
  while (size_t n = agg.Next(&b)) {
    for (size_t i = 0; i < n; i++) revenue += b.col(0)->data<int64_t>()[i];
  }
  // Cross-check against the hand-coded plan's checksum input.
  const auto& li = data_->lineitem;
  int64_t want = 0;
  for (size_t i = 0; i < li.rows(); i++) {
    if (li.shipdate[i] >= lo && li.shipdate[i] < hi && li.discount[i] >= 5 &&
        li.discount[i] <= 7 && li.quantity[i] < 24) {
      want += li.extendedprice[i] * li.discount[i];
    }
  }
  EXPECT_EQ(revenue, want);
}

}  // namespace
}  // namespace scc
