#include "core/segment_builder.h"
#include "core/segment_reader.h"

#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

// Round-trip and structural tests for the production segment format:
// every scheme, every supported value type, many distributions and sizes,
// plus corruption detection and fine-grained access equivalence.

namespace scc {
namespace {

template <typename T>
void ExpectRoundTrip(const std::vector<T>& in, const AlignedBuffer& seg) {
  auto reader = SegmentReader<T>::Open(seg.data(), seg.size());
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  const auto& r = reader.ValueOrDie();
  ASSERT_EQ(r.count(), in.size());
  std::vector<T> out(in.size());
  r.DecompressAll(out.data());
  ASSERT_EQ(in, out);
}

template <typename T>
std::vector<T> PForData(size_t n, int b, T base, double rate, uint64_t seed) {
  Rng rng(seed);
  std::vector<T> v(n);
  using U = std::make_unsigned_t<T>;
  const uint32_t mc = MaxCode(b);
  for (size_t i = 0; i < n; i++) {
    if (rng.Bernoulli(rate)) {
      v[i] = T(U(base) + U(mc) + U(1 + rng.Uniform(100)));
    } else {
      v[i] = T(U(base) + U(rng.Uniform(uint64_t(mc) + 1)));
    }
  }
  return v;
}

struct Case {
  size_t n;
  int b;
  double rate;
};

class SegmentPForTest : public ::testing::TestWithParam<Case> {};

TEST_P(SegmentPForTest, RoundTripInt64) {
  auto [n, b, rate] = GetParam();
  auto in = PForData<int64_t>(n, b, int64_t(-100), rate, n + b);
  auto seg = SegmentBuilder<int64_t>::BuildPFor(
      in, PForParams<int64_t>{b, -100});
  ASSERT_TRUE(seg.ok()) << seg.status().ToString();
  ExpectRoundTrip(in, seg.ValueOrDie());
}

TEST_P(SegmentPForTest, RoundTripUint32) {
  auto [n, b, rate] = GetParam();
  if (b >= 32) GTEST_SKIP();
  auto in = PForData<uint32_t>(n, b, 77u, rate, 7 * n + b);
  auto seg =
      SegmentBuilder<uint32_t>::BuildPFor(in, PForParams<uint32_t>{b, 77u});
  ASSERT_TRUE(seg.ok()) << seg.status().ToString();
  ExpectRoundTrip(in, seg.ValueOrDie());
}

TEST_P(SegmentPForTest, FineGrainedMatchesSequential) {
  auto [n, b, rate] = GetParam();
  auto in = PForData<int32_t>(n, b > 24 ? 24 : b, 0, rate, 3 * n + b);
  auto seg = SegmentBuilder<int32_t>::BuildPFor(
      in, PForParams<int32_t>{b > 24 ? 24 : b, 0});
  ASSERT_TRUE(seg.ok());
  auto reader =
      SegmentReader<int32_t>::Open(seg.ValueOrDie().data(),
                                   seg.ValueOrDie().size());
  ASSERT_TRUE(reader.ok());
  const auto& r = reader.ValueOrDie();
  for (size_t i = 0; i < n; i += (n > 300 ? 17 : 1)) {
    ASSERT_EQ(r.Get(i), in[i]) << "i=" << i;
  }
}

TEST_P(SegmentPForTest, RangeDecompression) {
  auto [n, b, rate] = GetParam();
  auto in = PForData<int64_t>(n, b, 0, rate, 5 * n + b);
  auto seg = SegmentBuilder<int64_t>::BuildPFor(in, PForParams<int64_t>{b, 0});
  ASSERT_TRUE(seg.ok());
  auto reader = SegmentReader<int64_t>::Open(seg.ValueOrDie().data(),
                                             seg.ValueOrDie().size());
  ASSERT_TRUE(reader.ok());
  const auto& r = reader.ValueOrDie();
  // Unaligned slices, including group-straddling ones.
  for (size_t start : {size_t(0), n / 3, n / 2 + 1}) {
    if (start >= n) continue;
    for (size_t len : {size_t(1), std::min(n - start, size_t(200)),
                       n - start}) {
      std::vector<int64_t> out(len);
      r.DecompressRange(start, len, out.data());
      for (size_t i = 0; i < len; i++) {
        ASSERT_EQ(out[i], in[start + i]) << "start=" << start << " i=" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SegmentPForTest,
    ::testing::Values(Case{1, 8, 0.0}, Case{1, 8, 1.0}, Case{127, 8, 0.1},
                      Case{128, 8, 0.1}, Case{129, 8, 0.1},
                      Case{1000, 8, 0.0}, Case{1000, 8, 0.3},
                      Case{1000, 8, 1.0}, Case{4096, 1, 0.05},
                      Case{4096, 2, 0.2}, Case{5000, 4, 0.1},
                      Case{10000, 12, 0.02}, Case{65536, 16, 0.01},
                      Case{99999, 7, 0.15}, Case{1000, 31, 0.1},
                      Case{256, 0, 0.0}));

TEST(SegmentPFor, BitWidthZeroConstantColumn) {
  std::vector<int32_t> in(1000, 42);
  auto seg = SegmentBuilder<int32_t>::BuildPFor(in, PForParams<int32_t>{0, 42});
  ASSERT_TRUE(seg.ok());
  // ~0 code bits: total should be dominated by header + entry points.
  EXPECT_LT(seg.ValueOrDie().size(), 200u);
  ExpectRoundTrip(in, seg.ValueOrDie());
}

TEST(SegmentPFor, AllTypesRoundTrip) {
  {
    std::vector<int8_t> in = {1, 2, 3, -4, 5, 100, -100, 0};
    auto seg = SegmentBuilder<int8_t>::BuildPFor(in, PForParams<int8_t>{3, 0});
    ASSERT_TRUE(seg.ok());
    ExpectRoundTrip(in, seg.ValueOrDie());
  }
  {
    std::vector<int16_t> in = {30000, -30000, 5, 6, 7, 8};
    auto seg =
        SegmentBuilder<int16_t>::BuildPFor(in, PForParams<int16_t>{4, 5});
    ASSERT_TRUE(seg.ok());
    ExpectRoundTrip(in, seg.ValueOrDie());
  }
  {
    std::vector<uint64_t> in = {std::numeric_limits<uint64_t>::max(), 0, 1, 2,
                                3, 1ull << 40};
    auto seg =
        SegmentBuilder<uint64_t>::BuildPFor(in, PForParams<uint64_t>{2, 0});
    ASSERT_TRUE(seg.ok());
    ExpectRoundTrip(in, seg.ValueOrDie());
  }
}

TEST(SegmentPFor, SixtyFourBitAliasingGuard) {
  // A 64-bit diff whose low 32 bits look like a small code must still be
  // an exception (regression test for 32-bit truncation aliasing).
  std::vector<int64_t> in = {0, 1, 2, int64_t(1) << 33, 3};
  auto seg = SegmentBuilder<int64_t>::BuildPFor(in, PForParams<int64_t>{8, 0});
  ASSERT_TRUE(seg.ok());
  auto reader = SegmentReader<int64_t>::Open(seg.ValueOrDie().data(),
                                             seg.ValueOrDie().size());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.ValueOrDie().exception_count(), 1u);
  ExpectRoundTrip(in, seg.ValueOrDie());
}

TEST(SegmentPFor, CompressionRatioReported) {
  auto in = PForData<int64_t>(100000, 8, 0, 0.0, 11);
  auto seg = SegmentBuilder<int64_t>::BuildPFor(in, PForParams<int64_t>{8, 0});
  ASSERT_TRUE(seg.ok());
  auto reader = SegmentReader<int64_t>::Open(seg.ValueOrDie().data(),
                                             seg.ValueOrDie().size());
  // 64-bit values in 8-bit codes: ratio close to 8, minus the entry
  // points and the per-group min/max summaries (4 + 16 bytes per 128
  // values for int64), which land it just under 7.
  EXPECT_GT(reader.ValueOrDie().compression_ratio(), 6.5);
}

TEST(SegmentUncompressed, RoundTripAndGet) {
  Rng rng(1);
  std::vector<int64_t> in(3000);
  for (auto& v : in) v = int64_t(rng.Next());
  auto seg = SegmentBuilder<int64_t>::BuildUncompressed(in);
  ASSERT_TRUE(seg.ok());
  ExpectRoundTrip(in, seg.ValueOrDie());
  auto reader = SegmentReader<int64_t>::Open(seg.ValueOrDie().data(),
                                             seg.ValueOrDie().size());
  EXPECT_EQ(reader.ValueOrDie().Get(1234), in[1234]);
  // v2 overhead: 64-byte header + 16-byte checksum block.
  EXPECT_EQ(reader.ValueOrDie().compression_ratio(), 1.0 * 3000 * 8 /
                                                         (3000 * 8 + 80));
}

TEST(SegmentCorruption, BadMagicRejected) {
  std::vector<int32_t> in(100, 1);
  auto seg = SegmentBuilder<int32_t>::BuildPFor(in, PForParams<int32_t>{1, 1});
  ASSERT_TRUE(seg.ok());
  AlignedBuffer buf = seg.ValueOrDie();
  buf.data()[0] ^= 0xFF;
  auto reader = SegmentReader<int32_t>::Open(buf.data(), buf.size());
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruption);
}

TEST(SegmentCorruption, TruncatedBufferRejected) {
  std::vector<int32_t> in(1000, 7);
  auto seg = SegmentBuilder<int32_t>::BuildPFor(in, PForParams<int32_t>{3, 0});
  ASSERT_TRUE(seg.ok());
  const AlignedBuffer& buf = seg.ValueOrDie();
  auto reader = SegmentReader<int32_t>::Open(buf.data(), buf.size() / 2);
  EXPECT_FALSE(reader.ok());
}

TEST(SegmentCorruption, WrongValueWidthRejected) {
  std::vector<int32_t> in(100, 7);
  auto seg = SegmentBuilder<int32_t>::BuildPFor(in, PForParams<int32_t>{3, 0});
  ASSERT_TRUE(seg.ok());
  auto reader = SegmentReader<int64_t>::Open(seg.ValueOrDie().data(),
                                             seg.ValueOrDie().size());
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
}

TEST(SegmentCorruption, HeaderFieldFuzz) {
  // Flipping any single header byte must never crash Open(); it either
  // fails validation or yields a still-wellformed header.
  std::vector<int32_t> in(500, 3);
  in[10] = 1 << 20;
  auto seg = SegmentBuilder<int32_t>::BuildPFor(in, PForParams<int32_t>{4, 0});
  ASSERT_TRUE(seg.ok());
  for (size_t byte = 0; byte < sizeof(SegmentHeader); byte++) {
    for (uint8_t flip : {uint8_t(0xFF), uint8_t(0x01), uint8_t(0x80)}) {
      AlignedBuffer buf = seg.ValueOrDie();
      buf.data()[byte] ^= flip;
      auto reader = SegmentReader<int32_t>::Open(buf.data(), buf.size());
      (void)reader;  // must not crash; outcome may be ok or error
    }
  }
}

}  // namespace
}  // namespace scc
