#include "core/kernels.h"

#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

// Tests for the flat Section-3 kernels: the NAIVE, predicated, and
// double-cursor compressors must all reconstruct the input exactly through
// their matching decompressors, at any exception rate.

namespace scc {
namespace {

// Synthetic data matching the paper's microbenchmarks: values that encode
// into b bits with probability (1 - rate), outliers otherwise.
template <typename T>
std::vector<T> MakeData(size_t n, int b, T base, double rate, uint64_t seed) {
  Rng rng(seed);
  std::vector<T> v(n);
  const uint32_t max_code = MaxCode(b);
  for (size_t i = 0; i < n; i++) {
    if (rng.Bernoulli(rate)) {
      // Outlier: far above the frame.
      v[i] = T(base + T(max_code) + T(1 + rng.Uniform(1000)));
    } else {
      v[i] = T(base + T(rng.Uniform(max_code)));  // < max_code: never escape
    }
  }
  return v;
}

struct Params {
  size_t n;
  int b;
  double rate;
};

class FlatKernelTest : public ::testing::TestWithParam<Params> {};

TEST_P(FlatKernelTest, PredRoundTrip) {
  auto [n, b, rate] = GetParam();
  const int64_t base = -37;
  auto in = MakeData<int64_t>(n, b, base, rate, 1);
  std::vector<uint32_t> code(n), miss(n);
  std::vector<int64_t> exc(n), out(n);
  size_t first = 0;
  size_t nexc =
      CompressPred(in.data(), n, b, base, code.data(), exc.data(), &first,
                   miss.data());
  ASSERT_LE(nexc, n);
  DecompressPatched(code.data(), n, ForCodec<int64_t>(base), exc.data(), first,
                    nexc, out.data());
  EXPECT_EQ(in, out);
}

TEST_P(FlatKernelTest, DoubleCursorRoundTrip) {
  auto [n, b, rate] = GetParam();
  const int64_t base = 1000;
  auto in = MakeData<int64_t>(n, b, base, rate, 2);
  std::vector<uint32_t> code(n), miss0(n), miss1(n);
  std::vector<int64_t> exc(n), out(n);
  size_t first = 0;
  size_t nexc = CompressDC(in.data(), n, b, base, code.data(), exc.data(),
                           &first, miss0.data(), miss1.data());
  DecompressPatched(code.data(), n, ForCodec<int64_t>(base), exc.data(), first,
                    nexc, out.data());
  EXPECT_EQ(in, out);
}

TEST_P(FlatKernelTest, NaiveRoundTrip) {
  auto [n, b, rate] = GetParam();
  const int64_t base = 5;
  auto in = MakeData<int64_t>(n, b, base, rate, 3);
  std::vector<uint32_t> code(n);
  std::vector<int64_t> exc(n), out(n);
  CompressNaive(in.data(), n, b, base, code.data(), exc.data());
  DecompressNaive(code.data(), n, b, ForCodec<int64_t>(base), exc.data(),
                  out.data());
  EXPECT_EQ(in, out);
}

TEST_P(FlatKernelTest, PredAndDCFindSameExceptionCount) {
  auto [n, b, rate] = GetParam();
  const int64_t base = 0;
  auto in = MakeData<int64_t>(n, b, base, rate, 4);
  std::vector<uint32_t> code1(n), code2(n), m0(n), m1(n), m2(n);
  std::vector<int64_t> e1(n), e2(n);
  size_t f1 = 0, f2 = 0;
  size_t n1 = CompressPred(in.data(), n, b, base, code1.data(), e1.data(),
                           &f1, m0.data());
  size_t n2 = CompressDC(in.data(), n, b, base, code2.data(), e2.data(), &f2,
                         m1.data(), m2.data());
  EXPECT_EQ(n1, n2);
  EXPECT_EQ(f1, f2);
  EXPECT_EQ(code1, code2);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FlatKernelTest,
    ::testing::Values(Params{1, 8, 0.0}, Params{2, 8, 1.0},
                      Params{100, 8, 0.0}, Params{100, 8, 0.5},
                      Params{1000, 8, 0.01}, Params{1000, 8, 0.3},
                      Params{1000, 8, 1.0}, Params{4096, 4, 0.1},
                      Params{4096, 12, 0.05}, Params{4097, 8, 0.2},
                      Params{65536, 16, 0.02}, Params{65536, 1, 0.2},
                      Params{333, 2, 0.15}, Params{10000, 20, 0.25}));

TEST(FlatKernels, CompulsoryExceptionsBridgeLongGaps) {
  // All values compressible -> no data exceptions; then two outliers far
  // apart force compulsory exceptions in between for small b.
  const size_t n = 5000;
  const int b = 4;  // max gap 16
  std::vector<int32_t> in(n, 7);
  in[10] = 1000000;
  in[4000] = 2000000;
  std::vector<uint32_t> code(n), miss(n);
  std::vector<int32_t> exc(n), out(n);
  size_t first = 0;
  size_t nexc = CompressPred(in.data(), n, b, 0, code.data(), exc.data(),
                             &first, miss.data());
  // (4000 - 10) / 16 - 1 compulsory exceptions plus the two real ones.
  EXPECT_GT(nexc, 2u + (4000 - 10) / 16 - 2);
  EXPECT_EQ(first, 10u);
  DecompressPatched(code.data(), n, ForCodec<int32_t>(0), exc.data(), first,
                    nexc, out.data());
  EXPECT_EQ(in, out);
}

TEST(FlatKernels, ValuesBelowBaseAreExceptions) {
  // PFOR's base need not be the minimum: values below it become
  // exceptions (Section 3.1).
  std::vector<int32_t> in = {50, 49, 48, 10, 52, 51, 9, 55};
  const int32_t base = 48;
  const int b = 3;
  std::vector<uint32_t> code(in.size()), miss(in.size());
  std::vector<int32_t> exc(in.size()), out(in.size());
  size_t first = 0;
  size_t nexc = CompressPred(in.data(), in.size(), b, base, code.data(),
                             exc.data(), &first, miss.data());
  EXPECT_EQ(nexc, 2u);  // 10 and 9
  DecompressPatched(code.data(), in.size(), ForCodec<int32_t>(base),
                    exc.data(), first, nexc, out.data());
  EXPECT_EQ(in, out);
}

TEST(FlatKernels, DeltaDecodeRunningSum) {
  // Monotone sequence -> deltas compress; patched delta decode must
  // restore the absolute values.
  const size_t n = 2048;
  Rng rng(9);
  std::vector<int64_t> values(n);
  int64_t v = 1000;
  for (size_t i = 0; i < n; i++) {
    v += int64_t(rng.Uniform(100));       // gaps 0..99
    if (rng.Bernoulli(0.05)) v += 100000; // occasional big jump = exception
    values[i] = v;
  }
  std::vector<int64_t> deltas(n);
  int64_t prev = 0;
  for (size_t i = 0; i < n; i++) {
    deltas[i] = values[i] - prev;
    prev = values[i];
  }
  const int b = 7;  // codes 0..127 cover gaps 0..99 with base 0
  std::vector<uint32_t> code(n), miss(n);
  std::vector<int64_t> exc(n), out(n);
  size_t first = 0;
  size_t nexc = CompressPred(deltas.data(), n, b, int64_t(0), code.data(),
                             exc.data(), &first, miss.data());
  DecompressPatchedDelta(code.data(), n, ForCodec<int64_t>(0), exc.data(),
                         first, nexc, int64_t(0), out.data());
  EXPECT_EQ(values, out);
}

TEST(FlatKernels, DictPatchedDecode) {
  // PDICT flat decode: codes index a dictionary; exceptions patched.
  std::vector<int32_t> dict = {100, 200, 300, 400};
  // dict padded so bogus gap codes stay in bounds (max in-block gap here).
  std::vector<int32_t> padded = dict;
  padded.resize(256, 0);
  std::vector<uint32_t> code = {0, 1, 2, 1 /*gap to next exc*/, 3, 0, 2};
  std::vector<int32_t> exc = {-7, -8};
  // Exceptions at positions 3 and 5 (code[3] = gap-1 = 1 -> next at 5).
  code[3] = 5 - 3 - 1;
  code[5] = 0;
  std::vector<int32_t> out(code.size());
  DecompressPatched(code.data(), code.size(), DictCodec<int32_t>(padded.data()),
                    exc.data(), 3, 2, out.data());
  std::vector<int32_t> expect = {100, 200, 300, -7, 400, -8, 300};
  EXPECT_EQ(out, expect);
}

TEST(FlatKernels, EquationThreeOne) {
  // Equation 3.1 sanity: with B=0.35, r=3, Q=0.58, the query stays
  // I/O bound only if Br/C + Br/Q <= 1.
  const double B = 350, Q = 580;
  // Very fast decompression and a fast query: I/O bound, R = B*r.
  EXPECT_NEAR(ResultBandwidth(B, 2.0, 5000, 1e9), 700.0, 1.0);
  // Slow decompression: CPU bound, R = QC/(Q+C).
  const double C = 524;  // carryover-12's decompression speed
  EXPECT_NEAR(ResultBandwidth(B, 2.0, Q, C), Q * C / (Q + C), 1.0);
  // The equilibrium point from Section 5: Q=580, B=350 -> C=883.
  EXPECT_NEAR(EquilibriumDecompressionBandwidth(350, 580), 883.0, 1.0);
}

}  // namespace
}  // namespace scc
