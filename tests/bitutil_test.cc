#include "util/bitutil.h"

#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "util/crc32c.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace scc {
namespace {

TEST(BitUtil, BitWidth) {
  EXPECT_EQ(BitWidth(0), 0);
  EXPECT_EQ(BitWidth(1), 1);
  EXPECT_EQ(BitWidth(2), 2);
  EXPECT_EQ(BitWidth(3), 2);
  EXPECT_EQ(BitWidth(255), 8);
  EXPECT_EQ(BitWidth(256), 9);
  EXPECT_EQ(BitWidth(~0ull), 64);
  for (int b = 1; b < 64; b++) {
    EXPECT_EQ(BitWidth(1ull << b), b + 1) << b;
    EXPECT_EQ(BitWidth((1ull << b) - 1), b) << b;
  }
}

TEST(BitUtil, NextPow2) {
  EXPECT_EQ(NextPow2(0), 1u);
  EXPECT_EQ(NextPow2(1), 1u);
  EXPECT_EQ(NextPow2(2), 2u);
  EXPECT_EQ(NextPow2(3), 4u);
  EXPECT_EQ(NextPow2(1000), 1024u);
  EXPECT_EQ(NextPow2(1u << 20), 1u << 20);
}

TEST(BitUtil, AlignUp) {
  EXPECT_EQ(AlignUp(0, 8), 0u);
  EXPECT_EQ(AlignUp(1, 8), 8u);
  EXPECT_EQ(AlignUp(8, 8), 8u);
  EXPECT_EQ(AlignUp(9, 8), 16u);
  EXPECT_EQ(AlignUp(1023, 64), 1024u);
}

TEST(BitUtil, MaxCodeAndGap) {
  EXPECT_EQ(MaxCode(0), 0u);
  EXPECT_EQ(MaxCode(1), 1u);
  EXPECT_EQ(MaxCode(8), 255u);
  EXPECT_EQ(MaxCode(32), 0xFFFFFFFFu);
  EXPECT_EQ(MaxExceptionGap(0), 1u);
  EXPECT_EQ(MaxExceptionGap(4), 16u);
  EXPECT_EQ(MaxExceptionGap(32), 0xFFFFFFFFu);
}

TEST(BitUtil, ZigZagRoundTrip) {
  EXPECT_EQ(ZigZagEncode<int32_t>(0), 0u);
  EXPECT_EQ(ZigZagEncode<int32_t>(-1), 1u);
  EXPECT_EQ(ZigZagEncode<int32_t>(1), 2u);
  EXPECT_EQ(ZigZagEncode<int32_t>(-2), 3u);
  Rng rng(1);
  for (int i = 0; i < 10000; i++) {
    int64_t v = int64_t(rng.Next());
    EXPECT_EQ(ZigZagDecode(ZigZagEncode<int64_t>(v)), v);
    int32_t w = int32_t(rng.Next());
    EXPECT_EQ(ZigZagDecode(ZigZagEncode<int32_t>(w)), w);
  }
  EXPECT_EQ(ZigZagDecode(ZigZagEncode<int64_t>(
                std::numeric_limits<int64_t>::min())),
            std::numeric_limits<int64_t>::min());
  EXPECT_EQ(ZigZagDecode(ZigZagEncode<int64_t>(
                std::numeric_limits<int64_t>::max())),
            std::numeric_limits<int64_t>::max());
}

TEST(BitUtil, ZigZagSmallMagnitudesGetSmallCodes) {
  // The point of zig-zag: |v| <= 100 must map into [0, 200].
  for (int v = -100; v <= 100; v++) {
    EXPECT_LE(ZigZagEncode<int32_t>(v), 200u) << v;
  }
}

TEST(Zipf, FrequenciesAreMonotone) {
  ZipfGenerator zipf(100, 1.0, 5);
  std::vector<size_t> counts(100, 0);
  for (int i = 0; i < 200000; i++) counts[zipf.Next()]++;
  // Rank 0 must dominate rank 10 dominate rank 90 (with slack for noise).
  EXPECT_GT(counts[0], counts[10] * 2);
  EXPECT_GT(counts[10], counts[90] * 2);
  EXPECT_EQ(zipf.domain(), 100u);
}

TEST(Crc32c, KnownAnswerVectors) {
  // RFC 3720 (iSCSI) appendix B.4 test vectors for CRC32C.
  std::vector<uint8_t> zeros(32, 0x00);
  EXPECT_EQ(Crc32cSoftware(zeros.data(), zeros.size()), 0x8A9136AAu);
  std::vector<uint8_t> ones(32, 0xFF);
  EXPECT_EQ(Crc32cSoftware(ones.data(), ones.size()), 0x62A8AB43u);
  std::vector<uint8_t> inc(32);
  for (size_t i = 0; i < inc.size(); i++) inc[i] = uint8_t(i);
  EXPECT_EQ(Crc32cSoftware(inc.data(), inc.size()), 0x46DD794Eu);
  std::vector<uint8_t> dec(32);
  for (size_t i = 0; i < dec.size(); i++) dec[i] = uint8_t(31 - i);
  EXPECT_EQ(Crc32cSoftware(dec.data(), dec.size()), 0x113FDB5Cu);
  // The classic check string.
  const char* s = "123456789";
  EXPECT_EQ(Crc32cSoftware(s, 9), 0xE3069283u);
  // The dispatcher (whatever backend it picked) must match.
  EXPECT_EQ(Crc32c(s, 9), 0xE3069283u);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
}

TEST(Crc32c, BackendsAgreeOnRandomBuffers) {
  // Differential: dispatcher vs the always-available software reference,
  // across lengths that hit the 8-byte main loop and the byte tail.
  Rng rng(17);
  // 3071..3073 straddle the hardware path's 3-stripe interleave
  // threshold; the large lengths run several merge rounds plus a tail.
  for (size_t len : {size_t(0), size_t(1), size_t(7), size_t(8), size_t(9),
                     size_t(63), size_t(64), size_t(1000), size_t(3071),
                     size_t(3072), size_t(3073), size_t(4097), size_t(20000),
                     size_t(100003)}) {
    std::vector<uint8_t> buf(len);
    for (auto& b : buf) b = uint8_t(rng.Next());
    EXPECT_EQ(Crc32c(buf.data(), len), Crc32cSoftware(buf.data(), len))
        << "len=" << len << " backend=" << Crc32cBackendName();
  }
}

TEST(Crc32c, SeedChainsSplitBuffers) {
  Rng rng(23);
  std::vector<uint8_t> buf(777);
  for (auto& b : buf) b = uint8_t(rng.Next());
  const uint32_t whole = Crc32c(buf.data(), buf.size());
  for (size_t cut : {size_t(0), size_t(1), size_t(8), size_t(100),
                     buf.size() - 1, buf.size()}) {
    uint32_t first = Crc32c(buf.data(), cut);
    EXPECT_EQ(Crc32c(buf.data() + cut, buf.size() - cut, first), whole)
        << "cut=" << cut;
    uint32_t first_sw = Crc32cSoftware(buf.data(), cut);
    EXPECT_EQ(
        Crc32cSoftware(buf.data() + cut, buf.size() - cut, first_sw), whole)
        << "cut=" << cut;
  }
}

TEST(Crc32c, SeedChainsLargeBuffers) {
  // Same chaining property across the large-buffer dispatch threshold,
  // so the fused kernel runs with nonzero seeds on both sides of a cut.
  Rng rng(31);
  std::vector<uint8_t> buf(50000);
  for (auto& b : buf) b = uint8_t(rng.Next());
  const uint32_t whole = Crc32cSoftware(buf.data(), buf.size());
  EXPECT_EQ(Crc32c(buf.data(), buf.size()), whole);
  for (size_t cut : {size_t(100), size_t(16384), size_t(25000),
                     size_t(33000), buf.size() - 5}) {
    uint32_t first = Crc32c(buf.data(), cut);
    EXPECT_EQ(Crc32c(buf.data() + cut, buf.size() - cut, first), whole)
        << "cut=" << cut;
  }
}

TEST(Crc32c, DetectsSingleBitFlips) {
  Rng rng(29);
  std::vector<uint8_t> buf(256);
  for (auto& b : buf) b = uint8_t(rng.Next());
  const uint32_t good = Crc32c(buf.data(), buf.size());
  for (size_t pos = 0; pos < buf.size(); pos++) {
    for (int bit = 0; bit < 8; bit++) {
      buf[pos] ^= uint8_t(1u << bit);
      ASSERT_NE(Crc32c(buf.data(), buf.size()), good)
          << "pos=" << pos << " bit=" << bit;
      buf[pos] ^= uint8_t(1u << bit);
    }
  }
}

TEST(Rng, DeterministicAndRoughlyUniform) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; i++) ASSERT_EQ(a.Next(), b.Next());
  Rng c(43);
  size_t below = 0;
  const int kTrials = 100000;
  for (int i = 0; i < kTrials; i++) below += c.NextDouble() < 0.25;
  EXPECT_NEAR(double(below) / kTrials, 0.25, 0.01);
  for (int i = 0; i < 1000; i++) {
    int64_t v = c.UniformInt(-5, 5);
    ASSERT_GE(v, -5);
    ASSERT_LE(v, 5);
  }
}

}  // namespace
}  // namespace scc
