#include "util/bitutil.h"

#include <limits>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/zipf.h"

namespace scc {
namespace {

TEST(BitUtil, BitWidth) {
  EXPECT_EQ(BitWidth(0), 0);
  EXPECT_EQ(BitWidth(1), 1);
  EXPECT_EQ(BitWidth(2), 2);
  EXPECT_EQ(BitWidth(3), 2);
  EXPECT_EQ(BitWidth(255), 8);
  EXPECT_EQ(BitWidth(256), 9);
  EXPECT_EQ(BitWidth(~0ull), 64);
  for (int b = 1; b < 64; b++) {
    EXPECT_EQ(BitWidth(1ull << b), b + 1) << b;
    EXPECT_EQ(BitWidth((1ull << b) - 1), b) << b;
  }
}

TEST(BitUtil, NextPow2) {
  EXPECT_EQ(NextPow2(0), 1u);
  EXPECT_EQ(NextPow2(1), 1u);
  EXPECT_EQ(NextPow2(2), 2u);
  EXPECT_EQ(NextPow2(3), 4u);
  EXPECT_EQ(NextPow2(1000), 1024u);
  EXPECT_EQ(NextPow2(1u << 20), 1u << 20);
}

TEST(BitUtil, AlignUp) {
  EXPECT_EQ(AlignUp(0, 8), 0u);
  EXPECT_EQ(AlignUp(1, 8), 8u);
  EXPECT_EQ(AlignUp(8, 8), 8u);
  EXPECT_EQ(AlignUp(9, 8), 16u);
  EXPECT_EQ(AlignUp(1023, 64), 1024u);
}

TEST(BitUtil, MaxCodeAndGap) {
  EXPECT_EQ(MaxCode(0), 0u);
  EXPECT_EQ(MaxCode(1), 1u);
  EXPECT_EQ(MaxCode(8), 255u);
  EXPECT_EQ(MaxCode(32), 0xFFFFFFFFu);
  EXPECT_EQ(MaxExceptionGap(0), 1u);
  EXPECT_EQ(MaxExceptionGap(4), 16u);
  EXPECT_EQ(MaxExceptionGap(32), 0xFFFFFFFFu);
}

TEST(BitUtil, ZigZagRoundTrip) {
  EXPECT_EQ(ZigZagEncode<int32_t>(0), 0u);
  EXPECT_EQ(ZigZagEncode<int32_t>(-1), 1u);
  EXPECT_EQ(ZigZagEncode<int32_t>(1), 2u);
  EXPECT_EQ(ZigZagEncode<int32_t>(-2), 3u);
  Rng rng(1);
  for (int i = 0; i < 10000; i++) {
    int64_t v = int64_t(rng.Next());
    EXPECT_EQ(ZigZagDecode(ZigZagEncode<int64_t>(v)), v);
    int32_t w = int32_t(rng.Next());
    EXPECT_EQ(ZigZagDecode(ZigZagEncode<int32_t>(w)), w);
  }
  EXPECT_EQ(ZigZagDecode(ZigZagEncode<int64_t>(
                std::numeric_limits<int64_t>::min())),
            std::numeric_limits<int64_t>::min());
  EXPECT_EQ(ZigZagDecode(ZigZagEncode<int64_t>(
                std::numeric_limits<int64_t>::max())),
            std::numeric_limits<int64_t>::max());
}

TEST(BitUtil, ZigZagSmallMagnitudesGetSmallCodes) {
  // The point of zig-zag: |v| <= 100 must map into [0, 200].
  for (int v = -100; v <= 100; v++) {
    EXPECT_LE(ZigZagEncode<int32_t>(v), 200u) << v;
  }
}

TEST(Zipf, FrequenciesAreMonotone) {
  ZipfGenerator zipf(100, 1.0, 5);
  std::vector<size_t> counts(100, 0);
  for (int i = 0; i < 200000; i++) counts[zipf.Next()]++;
  // Rank 0 must dominate rank 10 dominate rank 90 (with slack for noise).
  EXPECT_GT(counts[0], counts[10] * 2);
  EXPECT_GT(counts[10], counts[90] * 2);
  EXPECT_EQ(zipf.domain(), 100u);
}

TEST(Rng, DeterministicAndRoughlyUniform) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; i++) ASSERT_EQ(a.Next(), b.Next());
  Rng c(43);
  size_t below = 0;
  const int kTrials = 100000;
  for (int i = 0; i < kTrials; i++) below += c.NextDouble() < 0.25;
  EXPECT_NEAR(double(below) / kTrials, 0.25, 0.01);
  for (int i = 0; i < 1000; i++) {
    int64_t v = c.UniformInt(-5, 5);
    ASSERT_GE(v, -5);
    ASSERT_LE(v, 5);
  }
}

}  // namespace
}  // namespace scc
