#include <vector>

#include <gtest/gtest.h>

#include "core/pdict_hash.h"
#include "core/segment_builder.h"
#include "core/segment_reader.h"
#include "util/rng.h"
#include "util/zipf.h"

// PDICT segment tests: skewed frequency distributions where infrequent
// values become exceptions, hash-lookup behaviour, and edge cases.

namespace scc {
namespace {

TEST(PDictHashTest, LookupHitsAndMisses) {
  std::vector<int64_t> dict = {5, -9, 1000000007, 0, 42};
  PDictHash<int64_t> hash(dict);
  for (size_t i = 0; i < dict.size(); i++) {
    EXPECT_EQ(hash.Lookup(dict[i]), uint32_t(i));
  }
  EXPECT_EQ(hash.Lookup(6), kDictMiss);
  EXPECT_EQ(hash.Lookup(-1000000007), kDictMiss);
}

TEST(PDictHashTest, DuplicateValuesKeepLowestCode) {
  std::vector<int32_t> dict = {7, 8, 7, 9};
  PDictHash<int32_t> hash(dict);
  EXPECT_EQ(hash.Lookup(7), 0u);
}

TEST(PDictHashTest, LargeDictionary) {
  std::vector<uint32_t> dict(50000);
  for (size_t i = 0; i < dict.size(); i++) dict[i] = uint32_t(i * 2654435761u);
  PDictHash<uint32_t> hash(dict);
  Rng rng(5);
  for (int t = 0; t < 1000; t++) {
    size_t i = rng.Uniform(dict.size());
    ASSERT_EQ(hash.Lookup(dict[i]), uint32_t(i));
  }
}

TEST(PDictSegment, SkewedRoundTrip) {
  // Zipfian values: top-2^b of the domain in the dictionary, tail becomes
  // exceptions — the scenario PDICT improves over plain dictionary
  // compression (Section 3.1).
  const size_t n = 20000;
  ZipfGenerator zipf(1000, 1.2, 9);
  std::vector<int64_t> in(n);
  for (auto& v : in) v = int64_t(zipf.Next()) * 977 - 12345;
  // Dictionary of the 16 most frequent values.
  std::vector<int64_t> dict;
  for (int i = 0; i < 16; i++) dict.push_back(int64_t(i) * 977 - 12345);
  auto seg = SegmentBuilder<int64_t>::BuildPDict(
      in, PDictParams<int64_t>{4, dict});
  ASSERT_TRUE(seg.ok()) << seg.status().ToString();
  auto reader = SegmentReader<int64_t>::Open(seg.ValueOrDie().data(),
                                             seg.ValueOrDie().size());
  ASSERT_TRUE(reader.ok());
  const auto& r = reader.ValueOrDie();
  std::vector<int64_t> out(n);
  r.DecompressAll(out.data());
  EXPECT_EQ(in, out);
  // Zipf(1.2) concentrates most mass in the first 16 ranks.
  EXPECT_LT(r.exception_count(), n / 2);
  EXPECT_GT(r.compression_ratio(), 2.0);
  // Fine-grained access agrees.
  for (size_t i = 0; i < n; i += 37) ASSERT_EQ(r.Get(i), in[i]);
}

TEST(PDictSegment, AllValuesInDictNoExceptions) {
  std::vector<int32_t> dict = {10, 20, 30, 40};
  Rng rng(2);
  std::vector<int32_t> in(5000);
  for (auto& v : in) v = dict[rng.Uniform(4)];
  auto seg =
      SegmentBuilder<int32_t>::BuildPDict(in, PDictParams<int32_t>{2, dict});
  ASSERT_TRUE(seg.ok());
  auto reader = SegmentReader<int32_t>::Open(seg.ValueOrDie().data(),
                                             seg.ValueOrDie().size());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.ValueOrDie().exception_count(), 0u);
  std::vector<int32_t> out(in.size());
  reader.ValueOrDie().DecompressAll(out.data());
  EXPECT_EQ(in, out);
  // 2 bits/value: 5000 values ~ 1250 bytes of codes + overhead (header,
  // checksum block, padded dictionary, per-group min/max summaries at
  // 8 bytes per 128 values).
  EXPECT_LT(seg.ValueOrDie().size(), 2500u);
}

TEST(PDictSegment, NothingInDictAllExceptions) {
  std::vector<int32_t> dict = {1};
  std::vector<int32_t> in(300);
  for (size_t i = 0; i < in.size(); i++) in[i] = int32_t(1000 + i);
  auto seg =
      SegmentBuilder<int32_t>::BuildPDict(in, PDictParams<int32_t>{1, dict});
  ASSERT_TRUE(seg.ok());
  auto reader = SegmentReader<int32_t>::Open(seg.ValueOrDie().data(),
                                             seg.ValueOrDie().size());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.ValueOrDie().exception_count(), 300u);
  std::vector<int32_t> out(in.size());
  reader.ValueOrDie().DecompressAll(out.data());
  EXPECT_EQ(in, out);
}

TEST(PDictSegment, EmptyDictRejected) {
  std::vector<int32_t> in = {1, 2, 3};
  auto seg =
      SegmentBuilder<int32_t>::BuildPDict(in, PDictParams<int32_t>{2, {}});
  EXPECT_FALSE(seg.ok());
  EXPECT_EQ(seg.status().code(), StatusCode::kInvalidArgument);
}

TEST(PDictSegment, OversizedDictRejected) {
  std::vector<int32_t> in = {1, 2, 3};
  std::vector<int32_t> dict = {1, 2, 3, 4, 5};  // 5 entries > 2^2
  auto seg =
      SegmentBuilder<int32_t>::BuildPDict(in, PDictParams<int32_t>{2, dict});
  EXPECT_FALSE(seg.ok());
}

TEST(PDictSegment, DictReuseAcrossBlocksViaSharedVector) {
  // The paper allows a block to reuse a previous block's dictionary; our
  // segments inline the dictionary, so reuse means building two segments
  // from the same PDictParams — verify both decode against it.
  std::vector<int16_t> dict = {100, 200, 300};
  PDictParams<int16_t> params{2, dict};
  std::vector<int16_t> a = {100, 200, 100, 300};
  std::vector<int16_t> b = {300, 300, 999, 100};  // 999 is an exception
  for (const auto& in : {a, b}) {
    auto seg = SegmentBuilder<int16_t>::BuildPDict(in, params);
    ASSERT_TRUE(seg.ok());
    auto reader = SegmentReader<int16_t>::Open(seg.ValueOrDie().data(),
                                               seg.ValueOrDie().size());
    ASSERT_TRUE(reader.ok());
    std::vector<int16_t> out(in.size());
    reader.ValueOrDie().DecompressAll(out.data());
    EXPECT_EQ(in, out);
  }
}

}  // namespace
}  // namespace scc
