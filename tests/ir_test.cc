#include "ir/collection.h"
#include "ir/posting_codec.h"
#include "ir/search.h"

#include <algorithm>

#include <gtest/gtest.h>

// Inverted-file substrate tests: collection generation invariants, all
// posting codecs round-tripping the same gap streams, ratio ordering
// (shuff >= carryover-12 >= PFOR-DELTA on skewed gaps, as in Table 4),
// and the top-N retrieval query against a scalar reference.

namespace scc {
namespace {

TEST(CollectionTest, GeneratorInvariants) {
  for (const auto& spec : TinyCollections()) {
    InvertedIndex idx = BuildCollection(spec);
    EXPECT_EQ(idx.postings.size(), spec.vocab);
    size_t total = idx.TotalPostings();
    EXPECT_GT(total, spec.target_postings / 4);
    // Posting lists are strictly increasing and within the collection.
    for (size_t t = 0; t < idx.postings.size(); t += 97) {
      const auto& list = idx.postings[t];
      ASSERT_EQ(list.size(), idx.tfs[t].size());
      for (size_t i = 1; i < list.size(); i++) {
        ASSERT_LT(list[i - 1], list[i]);
      }
      if (!list.empty()) {
        ASSERT_LT(list.back(), spec.num_docs);
      }
      for (uint32_t f : idx.tfs[t]) ASSERT_GE(f, 1u);
    }
    // Zipf: the most frequent term has a far longer list than the median.
    EXPECT_GT(idx.postings[0].size(), idx.postings[spec.vocab / 2].size());
  }
}

TEST(CollectionTest, FlattenGapsPositive) {
  InvertedIndex idx = BuildCollection(TinyCollections()[0]);
  auto gaps = FlattenToGaps(idx);
  EXPECT_EQ(gaps.size(), idx.TotalPostings());
  for (uint32_t g : gaps) ASSERT_GE(g, 1u);
}

class PostingCodecTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PostingCodecTest, RoundTripTinyCollections) {
  auto codec = MakePostingCodec(GetParam());
  ASSERT_NE(codec, nullptr);
  for (const auto& spec : TinyCollections()) {
    InvertedIndex idx = BuildCollection(spec);
    auto ids = FlattenToIds(idx);
    auto comp = codec->Compress(ids.data(), ids.size());
    ASSERT_TRUE(comp.ok()) << codec->name() << " " << spec.name;
    std::vector<uint32_t> out(ids.size());
    auto st = codec->Decompress(comp.ValueOrDie().data(),
                                comp.ValueOrDie().size(), out.data(),
                                out.size());
    ASSERT_TRUE(st.ok()) << codec->name() << ": " << st.ToString();
    ASSERT_EQ(ids, out) << codec->name() << " " << spec.name;
  }
}

TEST_P(PostingCodecTest, RoundTripEdgeCases) {
  auto codec = MakePostingCodec(GetParam());
  ASSERT_NE(codec, nullptr);
  // Gap sequences, converted to the id-stream form codecs consume.
  std::vector<std::vector<uint32_t>> gap_cases = {
      {1},
      {1, 1, 1, 1},
      {1000000, 1, 1, 999999, 2},
      std::vector<uint32_t>(5000, 3),
  };
  for (const auto& gaps : gap_cases) {
    std::vector<uint32_t> ids(gaps.size());
    uint32_t acc = 0;
    for (size_t i = 0; i < gaps.size(); i++) {
      acc += gaps[i];
      ids[i] = acc;
    }
    auto comp = codec->Compress(ids.data(), ids.size());
    ASSERT_TRUE(comp.ok());
    std::vector<uint32_t> out(ids.size());
    ASSERT_TRUE(codec
                    ->Decompress(comp.ValueOrDie().data(),
                                 comp.ValueOrDie().size(), out.data(),
                                 out.size())
                    .ok());
    EXPECT_EQ(ids, out) << codec->name();
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, PostingCodecTest,
                         ::testing::Values("PFOR-DELTA", "carryover-12",
                                           "simple-9", "shuff", "vbyte"));

TEST(PostingCodecs, RatioOrderingMatchesTable4) {
  // On a dense (compressible) collection: shuff compresses best,
  // carryover-12 next, PFOR-DELTA close behind — the Table 4 ordering.
  InvertedIndex idx = BuildCollection(TinyCollections()[0]);
  auto gaps = FlattenToIds(idx);
  auto get_size = [&](const char* name) {
    auto codec = MakePostingCodec(name);
    auto comp = codec->Compress(gaps.data(), gaps.size());
    SCC_CHECK(comp.ok(), name);
    return comp.ValueOrDie().size();
  };
  size_t shuff = get_size("shuff");
  size_t c12 = get_size("carryover-12");
  size_t pfd = get_size("PFOR-DELTA");
  size_t raw = gaps.size() * 4;
  EXPECT_LT(shuff, c12);
  EXPECT_LT(c12, pfd * 1.05);  // c12 at least roughly as dense
  EXPECT_LT(pfd, raw);         // and PFOR-DELTA clearly beats raw
  double pfd_ratio = double(raw) / pfd;
  EXPECT_GT(pfd_ratio, 1.5);
}

TEST(SearchTest, TopNMatchesScalarReference) {
  InvertedIndex idx = BuildCollection(TinyCollections()[0]);
  auto searcher = PostingSearcher::Build(idx);
  ASSERT_TRUE(searcher.ok());
  const auto& s = searcher.ValueOrDie();
  for (uint32_t term : {0u, 5u, 100u, s.MostFrequentTerm()}) {
    auto hits = s.TopN(term, 10);
    // Scalar reference.
    std::vector<SearchHit> ref;
    for (size_t i = 0; i < idx.postings[term].size(); i++) {
      ref.push_back(SearchHit{idx.postings[term][i], idx.tfs[term][i]});
    }
    std::sort(ref.begin(), ref.end(), [](const SearchHit& a, const SearchHit& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.doc < b.doc;
    });
    if (ref.size() > 10) ref.resize(10);
    ASSERT_EQ(hits.size(), ref.size()) << "term " << term;
    for (size_t i = 0; i < ref.size(); i++) {
      EXPECT_EQ(hits[i].doc, ref[i].doc) << "term " << term << " i=" << i;
      EXPECT_EQ(hits[i].score, ref[i].score);
    }
  }
}

TEST(SearchTest, ConjunctiveMatchesScalarReference) {
  InvertedIndex idx = BuildCollection(TinyCollections()[0]);
  auto searcher = PostingSearcher::Build(idx);
  ASSERT_TRUE(searcher.ok());
  const auto& s = searcher.ValueOrDie();
  // Pairs spanning short x long lists (term rank orders list length).
  std::vector<std::pair<uint32_t, uint32_t>> pairs = {
      {0, 1}, {0, 500}, {3, 700}, {1500, 2}, {100, 100}};
  for (auto [a, b] : pairs) {
    auto hits = s.TopNConjunctive(a, b, 10);
    // Scalar reference: intersect, score = tf_a + tf_b.
    std::vector<SearchHit> ref;
    const auto& da = idx.postings[a];
    const auto& db = idx.postings[b];
    size_t i = 0, j = 0;
    while (i < da.size() && j < db.size()) {
      if (da[i] < db[j]) {
        i++;
      } else if (da[i] > db[j]) {
        j++;
      } else {
        ref.push_back(SearchHit{da[i], idx.tfs[a][i] + idx.tfs[b][j]});
        i++;
        j++;
      }
    }
    std::sort(ref.begin(), ref.end(),
              [](const SearchHit& x, const SearchHit& y) {
                if (x.score != y.score) return x.score > y.score;
                return x.doc < y.doc;
              });
    if (ref.size() > 10) ref.resize(10);
    ASSERT_EQ(hits.size(), ref.size()) << a << "&" << b;
    for (size_t k = 0; k < ref.size(); k++) {
      EXPECT_EQ(hits[k].doc, ref[k].doc) << a << "&" << b << " k=" << k;
      EXPECT_EQ(hits[k].score, ref[k].score) << a << "&" << b;
    }
  }
}

TEST(SearchTest, ConjunctiveSelfIntersection) {
  InvertedIndex idx = BuildCollection(TinyCollections()[0]);
  auto searcher = PostingSearcher::Build(idx);
  ASSERT_TRUE(searcher.ok());
  const auto& s = searcher.ValueOrDie();
  uint32_t t = 10;
  auto both = s.TopNConjunctive(t, t, 5);
  auto single = s.TopN(t, 5);
  ASSERT_EQ(both.size(), single.size());
  for (size_t k = 0; k < both.size(); k++) {
    EXPECT_EQ(both[k].doc, single[k].doc);
    EXPECT_EQ(both[k].score, single[k].score * 2);
  }
}

TEST(SearchTest, CompressionShrinksIndex) {
  InvertedIndex idx = BuildCollection(TinyCollections()[0]);
  auto searcher = PostingSearcher::Build(idx);
  ASSERT_TRUE(searcher.ok());
  const auto& s = searcher.ValueOrDie();
  EXPECT_LT(s.CompressedBytes(), s.RawBytes());
  EXPECT_GT(s.term_count(), 0u);
}

TEST(SearchTest, BytesProcessedAccounting) {
  InvertedIndex idx = BuildCollection(TinyCollections()[0]);
  auto searcher = PostingSearcher::Build(idx);
  ASSERT_TRUE(searcher.ok());
  const auto& s = searcher.ValueOrDie();
  uint32_t term = s.MostFrequentTerm();
  s.TopN(term, 10);
  EXPECT_EQ(s.last_bytes_processed(), idx.postings[term].size() * 8);
}

}  // namespace
}  // namespace scc
