#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/segment_builder.h"
#include "core/segment_reader.h"
#include "kernel_isa_test_util.h"
#include "storage/buffer_manager.h"
#include "storage/fault_injector.h"
#include "storage/sim_disk.h"
#include "storage/table.h"
#include "util/rng.h"
#include "util/zipf.h"

// Hostile-input battery for the segment format. The contract under test:
// for ANY mutation of a segment buffer, every decode entry point either
// returns a non-OK Status or produces bit-exact original values — and in
// no case reads out of bounds or crashes (run under ASan/UBSan in CI for
// full effect).
//
// Campaigns:
//   * exhaustive single-byte flips (one random bit + full byte invert at
//     every position) of small checksummed segments across the
//     distribution zoo, every scheme, every supported kernel ISA
//   * exhaustive truncation at every prefix length (covers all section
//     boundaries by construction)
//   * seeded random multi-corruption rounds, scaled by SCC_FUZZ_ITERS
//   * the same flip campaign against checksum-less segments, where silent
//     value changes are allowed but memory safety still is not
//
// Campaign size: the exhaustive flip sweep alone mutates every byte of
// ~24 (distribution, scheme) segment variants twice — tens of thousands
// of mutated segments per run before SCC_FUZZ_ITERS scaling.

namespace scc {
namespace {

size_t FuzzIters(size_t dflt) {
  const char* env = std::getenv("SCC_FUZZ_ITERS");
  if (env == nullptr || *env == '\0') return dflt;
  long v = std::atol(env);
  return v > 0 ? size_t(v) : dflt;
}

// Same family as property_test's zoo, kept small so exhaustive byte
// sweeps stay fast.
std::vector<int64_t> MakeDistribution(int kind, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> v(n);
  switch (kind % 6) {
    case 0:  // uniform small domain
      for (auto& x : v) x = int64_t(rng.Uniform(1000));
      break;
    case 1:  // clustered with outliers
      for (auto& x : v) {
        x = 500000 + int64_t(rng.Uniform(300));
        if (rng.Bernoulli(0.02)) x = int64_t(rng.Next());
      }
      break;
    case 2: {  // monotone with jumps
      int64_t acc = -1000;
      for (auto& x : v) {
        acc += int64_t(rng.Uniform(50));
        if (rng.Bernoulli(0.01)) acc += 1 << 20;
        x = acc;
      }
      break;
    }
    case 3: {  // zipf-skewed domain
      ZipfGenerator zipf(2000, 1.2, seed + 1);
      for (auto& x : v) x = int64_t(zipf.Next()) * 7919 - 40000;
      break;
    }
    case 4:  // adversarial: alternating tiny/huge
      for (size_t i = 0; i < n; i++) {
        v[i] = (i % 2 == 0) ? int64_t(i % 7) : (int64_t(1) << 50) + int64_t(i);
      }
      break;
    default:  // constant with a single outlier
      std::fill(v.begin(), v.end(), 123456);
      if (n > 3) v[n / 3] = -987654321;
      break;
  }
  return v;
}

struct SegmentCase {
  std::string label;
  std::vector<int64_t> values;
  AlignedBuffer seg;
};

// One segment per scheme for a distribution, forced params so every
// scheme (and the exception machinery) is represented regardless of what
// the analyzer would pick.
std::vector<SegmentCase> BuildCases(int kind, size_t n, uint64_t seed,
                                    const SegmentBuildOptions& opts) {
  auto v = MakeDistribution(kind, n, seed);
  std::vector<SegmentCase> cases;
  auto add = [&](const char* scheme, Result<AlignedBuffer> r) {
    SCC_CHECK(r.ok(), r.status().ToString().c_str());
    cases.push_back(SegmentCase{std::string(scheme) + "/kind" +
                                    std::to_string(kind % 6),
                                v, r.MoveValueOrDie()});
  };
  add("raw", SegmentBuilder<int64_t>::BuildUncompressed(v, opts));
  add("pfor",
      SegmentBuilder<int64_t>::BuildPFor(v, PForParams<int64_t>{7, 0}, opts));
  add("pfordelta", SegmentBuilder<int64_t>::BuildPForDelta(
                       v, PForParams<int64_t>{7, 0}, opts));
  // PDICT over the distribution's most frequent values; everything else
  // becomes an exception. bit_width 8 exercises the wide-code clamp.
  std::vector<int64_t> dict(v);
  std::sort(dict.begin(), dict.end());
  dict.erase(std::unique(dict.begin(), dict.end()), dict.end());
  if (dict.size() > 256) dict.resize(256);
  add("pdict", SegmentBuilder<int64_t>::BuildPDict(
                   v, PDictParams<int64_t>{8, dict}, opts));
  return cases;
}

// Exercises every decode entry point of a (possibly corrupt) buffer.
// Returns true iff the segment was accepted AND decoded bit-exact; false
// means it was rejected with a Status. A wrong silent decode fails the
// test via ADD_FAILURE. `require_exact` is off for checksum-less
// segments, where payload corruption may legitimately change values.
bool DriveEntryPoints(const uint8_t* data, size_t size,
                      const std::vector<int64_t>& original,
                      bool require_exact, const std::string& label) {
  auto reader =
      SegmentReader<int64_t>::Open(data, size, {.verify_checksums = true});
  if (!reader.ok()) return false;
  const auto& r = reader.ValueOrDie();
  const size_t n = r.count();
  std::vector<int64_t> out(n);
  r.DecompressRange(0, n, out.data());
  // Point access and a sub-range, through the same corrupt structures.
  if (n > 0) {
    (void)r.Get(0);
    (void)r.Get(n - 1);
    (void)r.Get(n / 2);
    std::vector<int64_t> range(std::min<size_t>(n, 64));
    r.DecompressRange(n / 3, range.size() <= n - n / 3 ? range.size()
                                                       : n - n / 3,
                      range.data());
  }
  if (r.scheme() == Scheme::kPFor || r.scheme() == Scheme::kPDict) {
    std::vector<uint32_t> codes(n);
    std::vector<uint32_t> exc_pos;
    (void)r.DecompressCodes(0, n, codes.data(), &exc_pos);
  }
  if (require_exact) {
    if (n != original.size()) {
      ADD_FAILURE() << label << ": accepted segment with count " << n
                    << " != " << original.size();
      return true;
    }
    if (out != original) {
      ADD_FAILURE() << label << ": accepted segment decoded non-exact";
    }
  }
  return true;
}

// Flips every byte of `seg` two ways (one seeded bit, full invert) and
// drives the decoders on each mutant. Returns the number of mutants.
size_t ByteFlipSweep(const SegmentCase& c, uint64_t seed, bool require_exact,
                     size_t* accepted) {
  Rng rng(seed);
  AlignedBuffer copy = c.seg;
  size_t mutants = 0;
  for (size_t pos = 0; pos < c.seg.size(); pos++) {
    const uint8_t orig_byte = copy.data()[pos];
    const uint8_t patterns[2] = {uint8_t(1u << rng.Uniform(8)), 0xFF};
    for (uint8_t pat : patterns) {
      copy.data()[pos] = orig_byte ^ pat;
      mutants++;
      *accepted += DriveEntryPoints(copy.data(), copy.size(), c.values,
                                    require_exact,
                                    c.label + " byte " + std::to_string(pos))
                       ? 1
                       : 0;
    }
    copy.data()[pos] = orig_byte;  // restore for the next position
  }
  return mutants;
}

TEST(CorruptionBattery, ExhaustiveByteFlipsChecksummed) {
  // Checksummed segments: a flipped byte must be rejected, except for the
  // one benign mutation (clearing the checksum flag yields a valid
  // unchecksummed v2 header over an unchanged layout) — which still must
  // decode bit-exact. DriveEntryPoints enforces exactly that contract.
  size_t mutants = 0, accepted = 0;
  for (int kind = 0; kind < 6; kind++) {
    for (auto& c : BuildCases(kind, 300, uint64_t(kind) * 101 + 1, {})) {
      mutants += ByteFlipSweep(c, uint64_t(kind) + 7,
                               /*require_exact=*/true, &accepted);
    }
  }
  // The sweep is the 10k-mutant floor of the battery on its own.
  EXPECT_GE(mutants, 10000u);
  // Nearly everything must be rejected; the benign flag-bit flip is ~1
  // accepted mutant per segment (plus inverts that restore the same bit).
  EXPECT_LT(accepted, mutants / 100);
}

TEST(CorruptionBattery, ExhaustiveByteFlipsChecksumless) {
  // Without checksums the format cannot promise detection — only memory
  // safety. Silent value changes are allowed; crashes and overruns are
  // not (ASan/UBSan legs make this assertion sharp).
  size_t mutants = 0, accepted = 0;
  for (int kind = 0; kind < 6; kind++) {
    for (auto& c : BuildCases(kind, 300, uint64_t(kind) * 131 + 5,
                              {.with_checksums = false})) {
      mutants += ByteFlipSweep(c, uint64_t(kind) + 11,
                               /*require_exact=*/false, &accepted);
    }
  }
  EXPECT_GE(mutants, 10000u);
  EXPECT_GT(accepted, 0u);  // payload flips pass header validation
}

TEST(CorruptionBattery, EveryTruncationRejected) {
  // Validate() bounds total_size by the buffer, so EVERY proper prefix —
  // including every section boundary — must fail to open.
  for (int kind = 0; kind < 6; kind++) {
    for (auto& c : BuildCases(kind, 300, uint64_t(kind) * 17 + 3, {})) {
      for (size_t cut = 0; cut < c.seg.size(); cut++) {
        auto reader = SegmentReader<int64_t>::Open(c.seg.data(), cut);
        ASSERT_FALSE(reader.ok()) << c.label << " cut=" << cut;
      }
      // The full buffer still opens.
      ASSERT_TRUE(
          SegmentReader<int64_t>::Open(c.seg.data(), c.seg.size()).ok())
          << c.label;
    }
  }
}

TEST(CorruptionBattery, SeededRandomCorruptionRounds) {
  // Random multi-byte corruption, truncation, and byte-soup rounds.
  // SCC_FUZZ_ITERS scales the campaign (CI nightly raises it).
  const size_t iters = FuzzIters(2000);
  auto cases = BuildCases(1, 900, 42, {});
  {
    auto more = BuildCases(4, 900, 43, {});
    for (auto& c : more) cases.push_back(std::move(c));
  }
  Rng rng(20260806);
  for (size_t it = 0; it < iters; it++) {
    const SegmentCase& c = cases[it % cases.size()];
    AlignedBuffer copy = c.seg;
    const size_t ncorrupt = 1 + rng.Uniform(8);
    for (size_t k = 0; k < ncorrupt; k++) {
      copy.data()[rng.Uniform(copy.size())] ^= uint8_t(1 + rng.Uniform(255));
    }
    size_t size = copy.size();
    if (rng.Bernoulli(0.2)) size = rng.Uniform(copy.size() + 1);
    (void)DriveEntryPoints(copy.data(), size, c.values,
                           /*require_exact=*/false,
                           c.label + " round " + std::to_string(it));
  }
  SUCCEED();
}

TEST(CorruptionBattery, AllIsasSurviveFlippedSegments) {
  // The SIMD decode kernels must be as corruption-proof as the scalar
  // path: replay a reduced flip sweep under every supported backend.
  const auto isas = SupportedIsas();
  for (KernelIsa isa : isas) {
    ScopedKernelIsa force(isa);
    size_t accepted = 0;
    for (int kind : {1, 4}) {
      for (auto& c : BuildCases(kind, 300, uint64_t(kind) * 101 + 1, {})) {
        ByteFlipSweep(c, uint64_t(kind) + 7, /*require_exact=*/true,
                      &accepted);
      }
      for (auto& c : BuildCases(kind, 300, uint64_t(kind) * 131 + 5,
                                {.with_checksums = false})) {
        ByteFlipSweep(c, uint64_t(kind) + 11, /*require_exact=*/false,
                      &accepted);
      }
    }
  }
  SUCCEED();
}

TEST(CorruptionBattery, ChecksumReportNamesTheBadSection) {
  auto v = MakeDistribution(1, 2000, 9);
  auto seg = SegmentBuilder<int64_t>::BuildPFor(v, PForParams<int64_t>{7, 0});
  ASSERT_TRUE(seg.ok());
  AlignedBuffer buf = seg.MoveValueOrDie();
  SegmentHeader hdr;
  std::memcpy(&hdr, buf.data(), sizeof(hdr));
  ASSERT_TRUE(hdr.HasChecksums());
  ASSERT_TRUE(VerifySegmentChecksums(buf.data(), buf.size()).ok());

  struct Probe {
    size_t pos;
    bool SegmentChecksumReport::* field;
  };
  const Probe probes[] = {
      {hdr.entries_offset, &SegmentChecksumReport::meta_ok},
      {hdr.codes_offset, &SegmentChecksumReport::codes_ok},
      {hdr.exceptions_offset, &SegmentChecksumReport::exceptions_ok},
  };
  for (const Probe& p : probes) {
    if (p.pos >= buf.size()) continue;  // no exceptions in this segment
    AlignedBuffer copy = buf;
    copy.data()[p.pos] ^= 0x40;
    const SegmentChecksumReport report =
        CheckSegmentChecksums(copy.data(), hdr);
    EXPECT_TRUE(report.present);
    EXPECT_FALSE(report.*(p.field)) << "pos=" << p.pos;
    EXPECT_FALSE(VerifySegmentChecksums(copy.data(), copy.size()).ok());
  }
  // Header corruption that still parses: flip a base bit.
  AlignedBuffer copy = buf;
  copy.data()[offsetof(SegmentHeader, base_bits)] ^= 0x01;
  SegmentHeader bad_hdr;
  std::memcpy(&bad_hdr, copy.data(), sizeof(bad_hdr));
  ASSERT_TRUE(bad_hdr.Validate(copy.size()).ok());
  EXPECT_FALSE(CheckSegmentChecksums(copy.data(), bad_hdr).header_ok);
}

TEST(CorruptionBattery, LegacyUnversionedSegmentsStillOpen) {
  // A v1 segment is exactly a v2 no-checksum segment with flags == 0:
  // rewriting the flags byte (and its CRC-free layout) must stay
  // readable, bit-exact.
  auto v = MakeDistribution(2, 1500, 77);
  for (int scheme = 0; scheme < 2; scheme++) {
    auto seg = scheme == 0
                   ? SegmentBuilder<int64_t>::BuildPFor(
                         v, PForParams<int64_t>{7, 0},
                         {.with_checksums = false})
                   : SegmentBuilder<int64_t>::BuildUncompressed(
                         v, {.with_checksums = false});
    ASSERT_TRUE(seg.ok());
    AlignedBuffer buf = seg.MoveValueOrDie();
    buf.data()[offsetof(SegmentHeader, flags)] = 0;  // pre-versioning file
    auto reader = SegmentReader<int64_t>::Open(buf.data(), buf.size(),
                                               {.verify_checksums = true});
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    EXPECT_EQ(reader.ValueOrDie().header().FormatVersion(), 0);
    std::vector<int64_t> out(v.size());
    reader.ValueOrDie().DecompressAll(out.data());
    EXPECT_EQ(out, v);
  }
}

// ---------------------------------------------------------------------------
// Tier-aware fault storm: the FaultInjector attached to the tiered buffer
// manager's SSD device (docs/STORAGE_TIERS.md). Contract under test: a
// fault on the flash tier surfaces as Status::Corruption or
// Status::IOError at the fetch that hit it, never poisons a DRAM-resident
// page, and never wedges the manager — the failed SSD entry is dropped so
// the next fetch re-faults cold and succeeds. The concurrent leg runs
// under the TSan CI job.

struct TierStormFixture {
  Table table{8192};
  std::vector<int64_t> values;
  SimDisk disk;

  explicit TierStormFixture(size_t rows = 90000) {
    Rng rng(2026);
    values.resize(rows);
    for (size_t i = 0; i < rows; i++) {
      values[i] = 5000 + int64_t(rng.Uniform(1000));
    }
    SCC_CHECK(table.AddColumn<int64_t>("v", values, ColumnCompression::kAuto)
                  .ok(),
              "column");
  }

  const StoredColumn* col() const { return table.column("v"); }
  size_t OneChunkBytes() const { return col()->chunks[0].size(); }

  /// A manager whose DRAM tier holds ~`dram_chunks` compressed chunks,
  /// with a roomy SSD tier underneath and checksum verification on.
  /// (unique_ptr: the manager owns mutexes and can't move.)
  std::unique_ptr<BufferManager> MakeBm(double dram_chunks) {
    BufferManager::TierConfig tc;
    tc.ssd_capacity_bytes = size_t(1) << 30;
    auto bm = std::make_unique<BufferManager>(
        &disk, size_t(dram_chunks * double(OneChunkBytes())), Layout::kDSM,
        tc);
    bm->SetVerifyChecksums(true);
    return bm;
  }

  /// Fetches every chunk once (all cold on the first pass; the small DRAM
  /// tier demotes victims to flash as it goes).
  void WarmAllChunks(BufferManager* bm) {
    for (size_t c = 0; c < col()->chunk_count(); c++) {
      auto r = bm->Fetch(&table, col(), c);
      SCC_CHECK(r.ok(), "warm fetch");
    }
  }
};

TEST(TieredFaultStorm, SsdBitFlipsSurfaceAsCorruptionAndDropTheEntry) {
  TierStormFixture f;
  auto bm = f.MakeBm(2.5);
  f.WarmAllChunks(bm.get());
  ASSERT_TRUE(bm->ssd_resident(f.col(), 0));

  FaultInjector inj({.seed = 11, .bit_flip_prob = 1.0});
  bm->ssd_disk()->AttachFaults(&inj);
  // Chunk 0 lives only on flash: every read attempt comes back flipped,
  // checksum verification rejects each retry, the fetch fails Corruption.
  auto r = bm->Fetch(&f.table, f.col(), 0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption)
      << r.status().ToString();
  EXPECT_GT(bm->io_faults(), 0u);
  // The poisoned SSD entry is gone; with the injector still attached the
  // refetch walks down to the clean cold device and is bit-exact.
  EXPECT_FALSE(bm->ssd_resident(f.col(), 0));
  auto v = bm->ReadValue<int64_t>(&f.table, f.col(), 100);
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v.ValueOrDie(), f.values[100]);
  bm->ssd_disk()->AttachFaults(nullptr);
}

TEST(TieredFaultStorm, SsdIoErrorsSurfaceAsIOErrorWithoutTouchingDramResidents) {
  TierStormFixture f;
  auto bm = f.MakeBm(2.5);
  f.WarmAllChunks(bm.get());
  const size_t last = f.col()->chunk_count() - 1;  // still DRAM-resident
  ASSERT_TRUE(bm->ssd_resident(f.col(), 0));
  ASSERT_FALSE(bm->ssd_resident(f.col(), last));

  FaultInjector inj({.seed = 12, .io_error_prob = 1.0});
  bm->ssd_disk()->AttachFaults(&inj);
  auto r = bm->Fetch(&f.table, f.col(), 0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError) << r.status().ToString();

  // A DRAM-resident page is untouched by the flash storm: the fetch is a
  // pure cache hit — correct bytes, zero device traffic on any tier.
  const size_t cold_reads = f.disk.read_count();
  const size_t ssd_reads = bm->ssd_disk()->read_count();
  auto hit = bm->ReadValue<int64_t>(&f.table, f.col(), last * 8192 + 7);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit.ValueOrDie(), f.values[last * 8192 + 7]);
  EXPECT_EQ(f.disk.read_count(), cold_reads);
  EXPECT_EQ(bm->ssd_disk()->read_count(), ssd_reads);
  bm->ssd_disk()->AttachFaults(nullptr);
}

TEST(TieredFaultStorm, TornWritebacksAreCountedAndNeverServeShortPages) {
  TierStormFixture f;
  auto bm = f.MakeBm(1.5);
  // Every demotion's flash write persists only a prefix: the manager must
  // refuse to admit the torn page to the SSD tier (counted as a
  // writeback failure) rather than ever serving short bytes.
  FaultInjector inj({.seed = 13, .torn_write_prob = 1.0});
  bm->ssd_disk()->AttachFaults(&inj);
  f.WarmAllChunks(bm.get());
  const BufferManager::TierStats dram =
      bm->tier_stats(BufferManager::CacheTier::kDram);
  const BufferManager::TierStats ssd =
      bm->tier_stats(BufferManager::CacheTier::kSsd);
  EXPECT_GT(dram.writebacks, 0u);
  EXPECT_EQ(dram.writeback_failures, dram.writebacks);
  EXPECT_EQ(ssd.resident_entries, 0u);
  // With nothing on flash, every refetch goes cold — and stays bit-exact.
  for (size_t c = 0; c < f.col()->chunk_count(); c++) {
    const size_t row = c * 8192 + 11;
    auto v = bm->ReadValue<int64_t>(&f.table, f.col(), row);
    ASSERT_TRUE(v.ok());
    ASSERT_EQ(v.ValueOrDie(), f.values[row]);
  }
  bm->ssd_disk()->AttachFaults(nullptr);
}

TEST(TieredFaultStorm, ArmAfterReadsWarmsThroughAFaultedDevice) {
  TierStormFixture f;
  auto bm = f.MakeBm(1.5);
  f.WarmAllChunks(bm.get());  // pass 1: cold reads + flash writebacks only
  const size_t nchunks = f.col()->chunk_count();

  // Arm the injector only after the reheat pass's SSD reads: the first
  // `nchunks` flash reads pass through clean — deterministically, with no
  // RNG draws — then every later read flips bits.
  FaultInjector inj(
      {.seed = 14, .bit_flip_prob = 1.0, .arm_after_reads = nchunks});
  bm->ssd_disk()->AttachFaults(&inj);
  for (size_t c = 0; c < nchunks; c++) {  // pass 2: served by flash, clean
    const size_t row = c * 8192 + 3;
    auto v = bm->ReadValue<int64_t>(&f.table, f.col(), row);
    ASSERT_TRUE(v.ok()) << "chunk " << c << ": " << v.status().ToString();
    ASSERT_EQ(v.ValueOrDie(), f.values[row]);
  }
  EXPECT_EQ(inj.stats().reads, nchunks);
  EXPECT_EQ(inj.stats().faults(), 0u);
  // Armed now: chunk 0 is long evicted from the 1.5-chunk DRAM tier but
  // still flash-resident, so this fetch reads the armed device and fails
  // checksum verification.
  ASSERT_TRUE(bm->ssd_resident(f.col(), 0));
  auto r = bm->Fetch(&f.table, f.col(), 0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_GT(inj.stats().bit_flips, 0u);
  bm->ssd_disk()->AttachFaults(nullptr);
}

TEST(TieredFaultStorm, ConcurrentMixedStormNeverPoisonsResults) {
  TierStormFixture f;
  auto bm = f.MakeBm(2.0);
  f.WarmAllChunks(bm.get());
  FaultInjector inj(
      {.seed = 15, .io_error_prob = 0.2, .bit_flip_prob = 0.2});
  bm->ssd_disk()->AttachFaults(&inj);

  // 8 threads hammer random chunks through the faulting flash tier. Every
  // OK result must be bit-exact; every failure must be Corruption or
  // IOError; nothing may crash or deadlock (TSan checks the edges).
  constexpr int kThreads = 8;
  std::atomic<size_t> failures{0};
  std::atomic<bool> bad{false};
  std::vector<std::thread> threads;
  for (int ti = 0; ti < kThreads; ti++) {
    threads.emplace_back([&, ti] {
      Rng rng(3000 + ti);
      for (int i = 0; i < 300; i++) {
        const size_t row = size_t(rng.Uniform(f.values.size()));
        auto v = bm->ReadValue<int64_t>(&f.table, f.col(), row);
        if (v.ok()) {
          if (v.ValueOrDie() != f.values[row]) bad.store(true);
        } else {
          const StatusCode code = v.status().code();
          if (code != StatusCode::kCorruption &&
              code != StatusCode::kIOError) {
            bad.store(true);
          }
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_FALSE(bad.load()) << "wrong value or unexpected status code";
  EXPECT_GT(inj.stats().faults(), 0u);

  // The storm over: detach the injector and sweep every value. A single
  // mismatch would mean a flipped page was admitted to some tier.
  bm->ssd_disk()->AttachFaults(nullptr);
  for (size_t c = 0; c < f.col()->chunk_count(); c++) {
    for (size_t k = 0; k < 8192 && c * 8192 + k < f.values.size();
         k += 1024) {
      const size_t row = c * 8192 + k;
      auto v = bm->ReadValue<int64_t>(&f.table, f.col(), row);
      ASSERT_TRUE(v.ok()) << v.status().ToString();
      ASSERT_EQ(v.ValueOrDie(), f.values[row]) << "row " << row;
    }
  }
}

}  // namespace
}  // namespace scc
