#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/segment_builder.h"
#include "core/segment_reader.h"
#include "kernel_isa_test_util.h"
#include "util/rng.h"
#include "util/zipf.h"

// Hostile-input battery for the segment format. The contract under test:
// for ANY mutation of a segment buffer, every decode entry point either
// returns a non-OK Status or produces bit-exact original values — and in
// no case reads out of bounds or crashes (run under ASan/UBSan in CI for
// full effect).
//
// Campaigns:
//   * exhaustive single-byte flips (one random bit + full byte invert at
//     every position) of small checksummed segments across the
//     distribution zoo, every scheme, every supported kernel ISA
//   * exhaustive truncation at every prefix length (covers all section
//     boundaries by construction)
//   * seeded random multi-corruption rounds, scaled by SCC_FUZZ_ITERS
//   * the same flip campaign against checksum-less segments, where silent
//     value changes are allowed but memory safety still is not
//
// Campaign size: the exhaustive flip sweep alone mutates every byte of
// ~24 (distribution, scheme) segment variants twice — tens of thousands
// of mutated segments per run before SCC_FUZZ_ITERS scaling.

namespace scc {
namespace {

size_t FuzzIters(size_t dflt) {
  const char* env = std::getenv("SCC_FUZZ_ITERS");
  if (env == nullptr || *env == '\0') return dflt;
  long v = std::atol(env);
  return v > 0 ? size_t(v) : dflt;
}

// Same family as property_test's zoo, kept small so exhaustive byte
// sweeps stay fast.
std::vector<int64_t> MakeDistribution(int kind, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> v(n);
  switch (kind % 6) {
    case 0:  // uniform small domain
      for (auto& x : v) x = int64_t(rng.Uniform(1000));
      break;
    case 1:  // clustered with outliers
      for (auto& x : v) {
        x = 500000 + int64_t(rng.Uniform(300));
        if (rng.Bernoulli(0.02)) x = int64_t(rng.Next());
      }
      break;
    case 2: {  // monotone with jumps
      int64_t acc = -1000;
      for (auto& x : v) {
        acc += int64_t(rng.Uniform(50));
        if (rng.Bernoulli(0.01)) acc += 1 << 20;
        x = acc;
      }
      break;
    }
    case 3: {  // zipf-skewed domain
      ZipfGenerator zipf(2000, 1.2, seed + 1);
      for (auto& x : v) x = int64_t(zipf.Next()) * 7919 - 40000;
      break;
    }
    case 4:  // adversarial: alternating tiny/huge
      for (size_t i = 0; i < n; i++) {
        v[i] = (i % 2 == 0) ? int64_t(i % 7) : (int64_t(1) << 50) + int64_t(i);
      }
      break;
    default:  // constant with a single outlier
      std::fill(v.begin(), v.end(), 123456);
      if (n > 3) v[n / 3] = -987654321;
      break;
  }
  return v;
}

struct SegmentCase {
  std::string label;
  std::vector<int64_t> values;
  AlignedBuffer seg;
};

// One segment per scheme for a distribution, forced params so every
// scheme (and the exception machinery) is represented regardless of what
// the analyzer would pick.
std::vector<SegmentCase> BuildCases(int kind, size_t n, uint64_t seed,
                                    const SegmentBuildOptions& opts) {
  auto v = MakeDistribution(kind, n, seed);
  std::vector<SegmentCase> cases;
  auto add = [&](const char* scheme, Result<AlignedBuffer> r) {
    SCC_CHECK(r.ok(), r.status().ToString().c_str());
    cases.push_back(SegmentCase{std::string(scheme) + "/kind" +
                                    std::to_string(kind % 6),
                                v, r.MoveValueOrDie()});
  };
  add("raw", SegmentBuilder<int64_t>::BuildUncompressed(v, opts));
  add("pfor",
      SegmentBuilder<int64_t>::BuildPFor(v, PForParams<int64_t>{7, 0}, opts));
  add("pfordelta", SegmentBuilder<int64_t>::BuildPForDelta(
                       v, PForParams<int64_t>{7, 0}, opts));
  // PDICT over the distribution's most frequent values; everything else
  // becomes an exception. bit_width 8 exercises the wide-code clamp.
  std::vector<int64_t> dict(v);
  std::sort(dict.begin(), dict.end());
  dict.erase(std::unique(dict.begin(), dict.end()), dict.end());
  if (dict.size() > 256) dict.resize(256);
  add("pdict", SegmentBuilder<int64_t>::BuildPDict(
                   v, PDictParams<int64_t>{8, dict}, opts));
  return cases;
}

// Exercises every decode entry point of a (possibly corrupt) buffer.
// Returns true iff the segment was accepted AND decoded bit-exact; false
// means it was rejected with a Status. A wrong silent decode fails the
// test via ADD_FAILURE. `require_exact` is off for checksum-less
// segments, where payload corruption may legitimately change values.
bool DriveEntryPoints(const uint8_t* data, size_t size,
                      const std::vector<int64_t>& original,
                      bool require_exact, const std::string& label) {
  auto reader =
      SegmentReader<int64_t>::Open(data, size, {.verify_checksums = true});
  if (!reader.ok()) return false;
  const auto& r = reader.ValueOrDie();
  const size_t n = r.count();
  std::vector<int64_t> out(n);
  r.DecompressRange(0, n, out.data());
  // Point access and a sub-range, through the same corrupt structures.
  if (n > 0) {
    (void)r.Get(0);
    (void)r.Get(n - 1);
    (void)r.Get(n / 2);
    std::vector<int64_t> range(std::min<size_t>(n, 64));
    r.DecompressRange(n / 3, range.size() <= n - n / 3 ? range.size()
                                                       : n - n / 3,
                      range.data());
  }
  if (r.scheme() == Scheme::kPFor || r.scheme() == Scheme::kPDict) {
    std::vector<uint32_t> codes(n);
    std::vector<uint32_t> exc_pos;
    (void)r.DecompressCodes(0, n, codes.data(), &exc_pos);
  }
  if (require_exact) {
    if (n != original.size()) {
      ADD_FAILURE() << label << ": accepted segment with count " << n
                    << " != " << original.size();
      return true;
    }
    if (out != original) {
      ADD_FAILURE() << label << ": accepted segment decoded non-exact";
    }
  }
  return true;
}

// Flips every byte of `seg` two ways (one seeded bit, full invert) and
// drives the decoders on each mutant. Returns the number of mutants.
size_t ByteFlipSweep(const SegmentCase& c, uint64_t seed, bool require_exact,
                     size_t* accepted) {
  Rng rng(seed);
  AlignedBuffer copy = c.seg;
  size_t mutants = 0;
  for (size_t pos = 0; pos < c.seg.size(); pos++) {
    const uint8_t orig_byte = copy.data()[pos];
    const uint8_t patterns[2] = {uint8_t(1u << rng.Uniform(8)), 0xFF};
    for (uint8_t pat : patterns) {
      copy.data()[pos] = orig_byte ^ pat;
      mutants++;
      *accepted += DriveEntryPoints(copy.data(), copy.size(), c.values,
                                    require_exact,
                                    c.label + " byte " + std::to_string(pos))
                       ? 1
                       : 0;
    }
    copy.data()[pos] = orig_byte;  // restore for the next position
  }
  return mutants;
}

TEST(CorruptionBattery, ExhaustiveByteFlipsChecksummed) {
  // Checksummed segments: a flipped byte must be rejected, except for the
  // one benign mutation (clearing the checksum flag yields a valid
  // unchecksummed v2 header over an unchanged layout) — which still must
  // decode bit-exact. DriveEntryPoints enforces exactly that contract.
  size_t mutants = 0, accepted = 0;
  for (int kind = 0; kind < 6; kind++) {
    for (auto& c : BuildCases(kind, 300, uint64_t(kind) * 101 + 1, {})) {
      mutants += ByteFlipSweep(c, uint64_t(kind) + 7,
                               /*require_exact=*/true, &accepted);
    }
  }
  // The sweep is the 10k-mutant floor of the battery on its own.
  EXPECT_GE(mutants, 10000u);
  // Nearly everything must be rejected; the benign flag-bit flip is ~1
  // accepted mutant per segment (plus inverts that restore the same bit).
  EXPECT_LT(accepted, mutants / 100);
}

TEST(CorruptionBattery, ExhaustiveByteFlipsChecksumless) {
  // Without checksums the format cannot promise detection — only memory
  // safety. Silent value changes are allowed; crashes and overruns are
  // not (ASan/UBSan legs make this assertion sharp).
  size_t mutants = 0, accepted = 0;
  for (int kind = 0; kind < 6; kind++) {
    for (auto& c : BuildCases(kind, 300, uint64_t(kind) * 131 + 5,
                              {.with_checksums = false})) {
      mutants += ByteFlipSweep(c, uint64_t(kind) + 11,
                               /*require_exact=*/false, &accepted);
    }
  }
  EXPECT_GE(mutants, 10000u);
  EXPECT_GT(accepted, 0u);  // payload flips pass header validation
}

TEST(CorruptionBattery, EveryTruncationRejected) {
  // Validate() bounds total_size by the buffer, so EVERY proper prefix —
  // including every section boundary — must fail to open.
  for (int kind = 0; kind < 6; kind++) {
    for (auto& c : BuildCases(kind, 300, uint64_t(kind) * 17 + 3, {})) {
      for (size_t cut = 0; cut < c.seg.size(); cut++) {
        auto reader = SegmentReader<int64_t>::Open(c.seg.data(), cut);
        ASSERT_FALSE(reader.ok()) << c.label << " cut=" << cut;
      }
      // The full buffer still opens.
      ASSERT_TRUE(
          SegmentReader<int64_t>::Open(c.seg.data(), c.seg.size()).ok())
          << c.label;
    }
  }
}

TEST(CorruptionBattery, SeededRandomCorruptionRounds) {
  // Random multi-byte corruption, truncation, and byte-soup rounds.
  // SCC_FUZZ_ITERS scales the campaign (CI nightly raises it).
  const size_t iters = FuzzIters(2000);
  auto cases = BuildCases(1, 900, 42, {});
  {
    auto more = BuildCases(4, 900, 43, {});
    for (auto& c : more) cases.push_back(std::move(c));
  }
  Rng rng(20260806);
  for (size_t it = 0; it < iters; it++) {
    const SegmentCase& c = cases[it % cases.size()];
    AlignedBuffer copy = c.seg;
    const size_t ncorrupt = 1 + rng.Uniform(8);
    for (size_t k = 0; k < ncorrupt; k++) {
      copy.data()[rng.Uniform(copy.size())] ^= uint8_t(1 + rng.Uniform(255));
    }
    size_t size = copy.size();
    if (rng.Bernoulli(0.2)) size = rng.Uniform(copy.size() + 1);
    (void)DriveEntryPoints(copy.data(), size, c.values,
                           /*require_exact=*/false,
                           c.label + " round " + std::to_string(it));
  }
  SUCCEED();
}

TEST(CorruptionBattery, AllIsasSurviveFlippedSegments) {
  // The SIMD decode kernels must be as corruption-proof as the scalar
  // path: replay a reduced flip sweep under every supported backend.
  const auto isas = SupportedIsas();
  for (KernelIsa isa : isas) {
    ScopedKernelIsa force(isa);
    size_t accepted = 0;
    for (int kind : {1, 4}) {
      for (auto& c : BuildCases(kind, 300, uint64_t(kind) * 101 + 1, {})) {
        ByteFlipSweep(c, uint64_t(kind) + 7, /*require_exact=*/true,
                      &accepted);
      }
      for (auto& c : BuildCases(kind, 300, uint64_t(kind) * 131 + 5,
                                {.with_checksums = false})) {
        ByteFlipSweep(c, uint64_t(kind) + 11, /*require_exact=*/false,
                      &accepted);
      }
    }
  }
  SUCCEED();
}

TEST(CorruptionBattery, ChecksumReportNamesTheBadSection) {
  auto v = MakeDistribution(1, 2000, 9);
  auto seg = SegmentBuilder<int64_t>::BuildPFor(v, PForParams<int64_t>{7, 0});
  ASSERT_TRUE(seg.ok());
  AlignedBuffer buf = seg.MoveValueOrDie();
  SegmentHeader hdr;
  std::memcpy(&hdr, buf.data(), sizeof(hdr));
  ASSERT_TRUE(hdr.HasChecksums());
  ASSERT_TRUE(VerifySegmentChecksums(buf.data(), buf.size()).ok());

  struct Probe {
    size_t pos;
    bool SegmentChecksumReport::* field;
  };
  const Probe probes[] = {
      {hdr.entries_offset, &SegmentChecksumReport::meta_ok},
      {hdr.codes_offset, &SegmentChecksumReport::codes_ok},
      {hdr.exceptions_offset, &SegmentChecksumReport::exceptions_ok},
  };
  for (const Probe& p : probes) {
    if (p.pos >= buf.size()) continue;  // no exceptions in this segment
    AlignedBuffer copy = buf;
    copy.data()[p.pos] ^= 0x40;
    const SegmentChecksumReport report =
        CheckSegmentChecksums(copy.data(), hdr);
    EXPECT_TRUE(report.present);
    EXPECT_FALSE(report.*(p.field)) << "pos=" << p.pos;
    EXPECT_FALSE(VerifySegmentChecksums(copy.data(), copy.size()).ok());
  }
  // Header corruption that still parses: flip a base bit.
  AlignedBuffer copy = buf;
  copy.data()[offsetof(SegmentHeader, base_bits)] ^= 0x01;
  SegmentHeader bad_hdr;
  std::memcpy(&bad_hdr, copy.data(), sizeof(bad_hdr));
  ASSERT_TRUE(bad_hdr.Validate(copy.size()).ok());
  EXPECT_FALSE(CheckSegmentChecksums(copy.data(), bad_hdr).header_ok);
}

TEST(CorruptionBattery, LegacyUnversionedSegmentsStillOpen) {
  // A v1 segment is exactly a v2 no-checksum segment with flags == 0:
  // rewriting the flags byte (and its CRC-free layout) must stay
  // readable, bit-exact.
  auto v = MakeDistribution(2, 1500, 77);
  for (int scheme = 0; scheme < 2; scheme++) {
    auto seg = scheme == 0
                   ? SegmentBuilder<int64_t>::BuildPFor(
                         v, PForParams<int64_t>{7, 0},
                         {.with_checksums = false})
                   : SegmentBuilder<int64_t>::BuildUncompressed(
                         v, {.with_checksums = false});
    ASSERT_TRUE(seg.ok());
    AlignedBuffer buf = seg.MoveValueOrDie();
    buf.data()[offsetof(SegmentHeader, flags)] = 0;  // pre-versioning file
    auto reader = SegmentReader<int64_t>::Open(buf.data(), buf.size(),
                                               {.verify_checksums = true});
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    EXPECT_EQ(reader.ValueOrDie().header().FormatVersion(), 0);
    std::vector<int64_t> out(v.size());
    reader.ValueOrDie().DecompressAll(out.data());
    EXPECT_EQ(out, v);
  }
}

}  // namespace
}  // namespace scc
