#include "sys/bench_report.h"

#include <string>

#include <gtest/gtest.h>

// Perf-regression harness tests: BenchReport JSON parsing, metric
// direction inference, and the diff gate that scc_bench_diff and the
// nightly workflow sit on. The gate must fire on a genuine regression in
// either direction (latency up, throughput down), stay quiet inside the
// threshold, and never gate on informational or missing metrics.

namespace scc {
namespace {

const char* kBaseJson = R"({
  "bench": "tail_latency",
  "config": {"rows": 131072, "threads": 4},
  "metrics": {
    "read_only.p50_ns": 300.0,
    "read_only.p99_ns": 2000.0,
    "read_only.p999_ns": 17000.0,
    "read_only.ops_per_sec": 400000.0,
    "mixed.scan_rows": 12345.0
  }
})";

BenchReport Parse(const std::string& json) {
  BenchReport r;
  EXPECT_TRUE(BenchReport::ParseJson(json, &r));
  return r;
}

/// Re-serializes `base` with one metric scaled — the "injected
/// regression" used across these tests and the CI smoke leg.
BenchReport WithScaled(const BenchReport& base, const std::string& name,
                       double factor) {
  BenchReport r = base;
  r.metrics[name] = base.metrics.at(name) * factor;
  return r;
}

TEST(BenchReportTest, ParsesBenchNameAndMetrics) {
  BenchReport r = Parse(kBaseJson);
  EXPECT_EQ(r.bench, "tail_latency");
  ASSERT_EQ(r.metrics.size(), 5u);
  EXPECT_DOUBLE_EQ(r.metrics.at("read_only.p99_ns"), 2000.0);
  EXPECT_DOUBLE_EQ(r.metrics.at("read_only.ops_per_sec"), 400000.0);
}

TEST(BenchReportTest, ParseRejectsGarbage) {
  BenchReport r;
  EXPECT_FALSE(BenchReport::ParseJson("not json at all", &r));
  EXPECT_FALSE(BenchReport::ParseJson("{\"bench\":\"x\"}", &r));  // no metrics
}

TEST(BenchReportTest, DirectionInference) {
  EXPECT_EQ(DirectionForMetric("read_only.p99_ns"),
            BenchMetricDirection::kLowerIsBetter);
  EXPECT_EQ(DirectionForMetric("load.seconds"),
            BenchMetricDirection::kLowerIsBetter);
  EXPECT_EQ(DirectionForMetric("read_only.ops_per_sec"),
            BenchMetricDirection::kHigherIsBetter);
  EXPECT_EQ(DirectionForMetric("scan.rows_per_sec"),
            BenchMetricDirection::kHigherIsBetter);
  EXPECT_EQ(DirectionForMetric("mixed.scan_rows"),
            BenchMetricDirection::kInformational);
}

TEST(BenchReportTest, NoRegressionsWhenIdentical) {
  BenchReport base = Parse(kBaseJson);
  BenchDiff diff = DiffBenchReports(base, base, {});
  EXPECT_FALSE(diff.HasRegressions());
  EXPECT_EQ(diff.regressions, 0u);
  EXPECT_EQ(diff.deltas.size(), base.metrics.size());
}

TEST(BenchReportTest, GatesOnLatencyIncrease) {
  BenchReport base = Parse(kBaseJson);
  BenchDiff diff = DiffBenchReports(
      base, WithScaled(base, "read_only.p99_ns", 1.5), {});
  EXPECT_TRUE(diff.HasRegressions());
  for (const BenchMetricDelta& d : diff.deltas) {
    EXPECT_EQ(d.regressed, d.name == "read_only.p99_ns") << d.name;
  }
}

TEST(BenchReportTest, GatesOnThroughputDrop) {
  BenchReport base = Parse(kBaseJson);
  BenchDiff diff = DiffBenchReports(
      base, WithScaled(base, "read_only.ops_per_sec", 0.5), {});
  EXPECT_TRUE(diff.HasRegressions());
}

TEST(BenchReportTest, ImprovementsAndSmallDriftDoNotGate) {
  BenchReport base = Parse(kBaseJson);
  // Latency down and throughput up are improvements; 10% latency drift
  // sits inside the default 25% gate.
  BenchReport better = WithScaled(base, "read_only.p99_ns", 0.5);
  better.metrics["read_only.ops_per_sec"] *= 2.0;
  better.metrics["read_only.p50_ns"] *= 1.10;
  EXPECT_FALSE(DiffBenchReports(base, better, {}).HasRegressions());
}

TEST(BenchReportTest, InformationalMetricsNeverGate) {
  BenchReport base = Parse(kBaseJson);
  BenchDiff diff =
      DiffBenchReports(base, WithScaled(base, "mixed.scan_rows", 100.0), {});
  EXPECT_FALSE(diff.HasRegressions());
}

TEST(BenchReportTest, P999GetsDoubledDefaultThreshold) {
  BenchReport base = Parse(kBaseJson);
  // +40% on p999: above the 25% default but below its 2x (50%) gate —
  // extreme tails are noisy by nature.
  EXPECT_FALSE(
      DiffBenchReports(base, WithScaled(base, "read_only.p999_ns", 1.4), {})
          .HasRegressions());
  EXPECT_TRUE(
      DiffBenchReports(base, WithScaled(base, "read_only.p999_ns", 1.6), {})
          .HasRegressions());
}

TEST(BenchReportTest, PerMetricThresholdOverrides) {
  BenchReport base = Parse(kBaseJson);
  BenchDiffOptions opts;
  opts.per_metric_pct["read_only.p99_ns"] = 5.0;
  // +10% p99 passes the default gate but fails a 5% override.
  EXPECT_TRUE(
      DiffBenchReports(base, WithScaled(base, "read_only.p99_ns", 1.10), opts)
          .HasRegressions());
  // And an override can also loosen: 60% allows a +50% excursion.
  opts.per_metric_pct["read_only.p99_ns"] = 60.0;
  EXPECT_FALSE(
      DiffBenchReports(base, WithScaled(base, "read_only.p99_ns", 1.5), opts)
          .HasRegressions());
}

TEST(BenchReportTest, MissingAndAddedMetricsReportedNotGated) {
  BenchReport base = Parse(kBaseJson);
  BenchReport cur = base;
  cur.metrics.erase("read_only.p50_ns");
  cur.metrics["brand.new.p99_ns"] = 1.0;
  BenchDiff diff = DiffBenchReports(base, cur, {});
  EXPECT_FALSE(diff.HasRegressions());
  ASSERT_EQ(diff.missing_in_current.size(), 1u);
  EXPECT_EQ(diff.missing_in_current[0], "read_only.p50_ns");
  ASSERT_EQ(diff.added_in_current.size(), 1u);
  EXPECT_EQ(diff.added_in_current[0], "brand.new.p99_ns");
}

}  // namespace
}  // namespace scc
