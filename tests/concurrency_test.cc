#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/segment_reader.h"
#include "storage/buffer_manager.h"
#include "storage/fault_injector.h"
#include "storage/sim_disk.h"
#include "storage/table.h"
#include "util/rng.h"

// Concurrent buffer-manager battery: N-thread fetch/evict storms under a
// tiny capacity, miss coalescing (one disk read per page no matter how
// many threads fault it), pin-blocks-eviction, and the storm repeated
// with fault injection + checksum verification on. Run under
// ThreadSanitizer in CI; every test also asserts data integrity, so a
// use-after-evict shows up as a value mismatch even without TSan.

namespace scc {
namespace {

constexpr size_t kChunkValues = 8192;

Table MakeTable(size_t rows, size_t chunk_values = kChunkValues) {
  Table t(chunk_values);
  Rng rng(42);
  std::vector<int64_t> a(rows), b(rows);
  std::vector<int32_t> c(rows);
  for (size_t i = 0; i < rows; i++) {
    a[i] = int64_t(i);  // monotone: row r's value IS r (integrity oracle)
    b[i] = 5000 + int64_t(rng.Uniform(1000));
    c[i] = int32_t(rng.Uniform(4));
  }
  SCC_CHECK(t.AddColumn<int64_t>("a", a, ColumnCompression::kAuto).ok(), "a");
  SCC_CHECK(t.AddColumn<int64_t>("b", b, ColumnCompression::kAuto).ok(), "b");
  SCC_CHECK(t.AddColumn<int32_t>("c", c, ColumnCompression::kAuto).ok(), "c");
  return t;
}

// Decodes column "a" of `chunk` from a pinned page and verifies every
// value against the monotone oracle. Any stale or reused buffer (e.g. a
// page recycled by a racing eviction) decodes to wrong values or fails
// to open, so this doubles as the use-after-evict detector.
void VerifyChunkA(const Table& t, const AlignedBuffer& page, size_t chunk) {
  auto reader = SegmentReader<int64_t>::Open(page.data(), page.size());
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  const size_t rows = t.column("a")->ChunkRows(chunk);
  ASSERT_EQ(reader.ValueOrDie().count(), rows);
  std::vector<int64_t> out(rows);
  reader.ValueOrDie().DecompressAll(out.data());
  const int64_t base = int64_t(chunk * t.chunk_values());
  for (size_t i = 0; i < rows; i++) {
    ASSERT_EQ(out[i], base + int64_t(i)) << "chunk " << chunk << " row " << i;
  }
}

TEST(ConcurrencyTest, FetchEvictStormKeepsDataIntact) {
  const size_t kRows = 40 * kChunkValues;
  Table t = MakeTable(kRows);
  SimDisk disk;
  // Capacity for only ~4 pages of column "a": the storm constantly
  // evicts, so pins and the LRU race on every fetch.
  size_t page_bytes = 0;
  for (size_t c = 0; c < 4; c++) page_bytes += t.column("a")->chunks[c].size();
  BufferManager bm(&disk, page_bytes, Layout::kDSM);

  constexpr int kThreads = 8;
  constexpr int kFetchesPerThread = 300;
  std::vector<std::thread> threads;
  for (int id = 0; id < kThreads; id++) {
    threads.emplace_back([&, id] {
      Rng rng(uint64_t(id) + 1);
      for (int f = 0; f < kFetchesPerThread; f++) {
        const size_t chunk = rng.Uniform(uint32_t(t.chunk_count()));
        auto guard = bm.FetchPinned(&t, t.column("a"), chunk);
        ASSERT_TRUE(guard.ok()) << guard.status().ToString();
        VerifyChunkA(t, *guard.ValueOrDie().page(), chunk);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_GT(bm.evictions(), 0u);
  // Every fetch terminates as exactly one hit or one leader miss;
  // coalesced waits are intermediate states that re-loop into one of the
  // two, so they don't show up in the sum.
  EXPECT_EQ(bm.hits() + bm.misses(), size_t(kThreads) * kFetchesPerThread);
  // The disk saw exactly one read per miss — coalesced waiters never
  // charge it.
  EXPECT_EQ(disk.read_count(), bm.misses());
}

TEST(ConcurrencyTest, ColdPageCoalescesToOneDiskRead) {
  Table t = MakeTable(4 * kChunkValues);
  SimDisk disk;
  BufferManager bm(&disk, size_t(1) << 30, Layout::kDSM);

  constexpr int kThreads = 8;
  std::mutex mu;
  std::condition_variable cv;
  int ready = 0;
  bool go = false;
  std::vector<std::thread> threads;
  for (int id = 0; id < kThreads; id++) {
    threads.emplace_back([&] {
      {
        std::unique_lock<std::mutex> lock(mu);
        if (++ready == kThreads) cv.notify_all();
        cv.wait(lock, [&] { return go; });
      }
      // All threads fault the same cold page at once.
      auto guard = bm.FetchPinned(&t, t.column("a"), 0);
      ASSERT_TRUE(guard.ok()) << guard.status().ToString();
      VerifyChunkA(t, *guard.ValueOrDie().page(), 0);
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return ready == kThreads; });
    go = true;
    cv.notify_all();
  }
  for (auto& th : threads) th.join();

  // The invariant that holds under EVERY interleaving: one page, one
  // disk read. Latecomers are either coalesced waiters or plain hits.
  EXPECT_EQ(disk.read_count(), 1u);
  EXPECT_EQ(bm.misses(), 1u);
  EXPECT_EQ(bm.hits() + bm.coalesced_misses(), size_t(kThreads) - 1);
}

TEST(ConcurrencyTest, PinnedPageSurvivesEvictionPressure) {
  Table t = MakeTable(8 * kChunkValues);
  SimDisk disk;
  // Room for roughly one page: any second fetch must evict or overcommit.
  BufferManager bm(&disk, t.column("a")->chunks[0].size() + 16, Layout::kDSM);

  auto pinned = bm.FetchPinned(&t, t.column("a"), 0);
  ASSERT_TRUE(pinned.ok());
  for (size_t c = 1; c < t.chunk_count(); c++) {
    auto guard = bm.FetchPinned(&t, t.column("a"), c);
    ASSERT_TRUE(guard.ok());
  }
  // The pinned page was never evicted: re-fetching it is a pure hit.
  const size_t misses_before = bm.misses();
  auto again = bm.FetchPinned(&t, t.column("a"), 0);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(bm.misses(), misses_before);
  VerifyChunkA(t, *again.ValueOrDie().page(), 0);

  // Once the pins drop, pressure can reclaim it.
  again.ValueOrDie().Release();
  pinned.ValueOrDie().Release();
  const size_t evictions_before = bm.evictions();
  for (size_t c = 1; c < t.chunk_count(); c++) {
    ASSERT_TRUE(bm.FetchPinned(&t, t.column("a"), c).ok());
  }
  EXPECT_GT(bm.evictions(), evictions_before);
}

TEST(ConcurrencyTest, StormWithFaultInjectionAndChecksumsRecovers) {
  const size_t kRows = 16 * kChunkValues;
  Table t = MakeTable(kRows);
  SimDisk disk;
  FaultInjector faults(FaultInjector::Config{
      .seed = 7, .io_error_prob = 0.02, .bit_flip_prob = 0.05});
  disk.AttachFaults(&faults);
  // Capacity for ~4 pages: constant eviction keeps the disk (and the
  // injector) in play for the whole storm instead of 16 cold reads.
  size_t capacity = 0;
  for (size_t c = 0; c < 4; c++) capacity += t.column("a")->chunks[c].size();
  BufferManager bm(&disk, capacity, Layout::kDSM);
  bm.SetVerifyChecksums(true);
  bm.set_max_read_retries(16);  // 0.05^17: a failed fetch is a real bug

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int id = 0; id < kThreads; id++) {
    threads.emplace_back([&, id] {
      Rng rng(uint64_t(id) + 100);
      for (int f = 0; f < 150; f++) {
        const size_t chunk = rng.Uniform(uint32_t(t.chunk_count()));
        auto guard = bm.FetchPinned(&t, t.column("a"), chunk);
        ASSERT_TRUE(guard.ok()) << guard.status().ToString();
        // Checksums verified at read time + the value oracle here: a bit
        // flip that slipped through would fail one of the two.
        VerifyChunkA(t, *guard.ValueOrDie().page(), chunk);
      }
    });
  }
  for (auto& th : threads) th.join();

  // The injector fired (otherwise this test proves nothing) and every
  // fault was absorbed by the retry loop.
  EXPECT_GT(faults.stats().faults(), 0u);
  EXPECT_GT(bm.io_faults(), 0u);
  EXPECT_GE(disk.read_count(), bm.misses());  // retries re-charge the disk
}

TEST(ConcurrencyTest, PaxStormCoalescesSiblingColumns) {
  const size_t kRows = 12 * kChunkValues;
  Table t = MakeTable(kRows);
  SimDisk disk;
  BufferManager bm(&disk, size_t(1) << 30, Layout::kPAX);

  constexpr int kThreads = 6;
  const char* cols[] = {"a", "b", "c"};
  std::vector<std::thread> threads;
  for (int id = 0; id < kThreads; id++) {
    threads.emplace_back([&, id] {
      Rng rng(uint64_t(id) + 1);
      for (int f = 0; f < 200; f++) {
        const size_t chunk = rng.Uniform(uint32_t(t.chunk_count()));
        const StoredColumn* col = t.column(cols[rng.Uniform(3)]);
        auto guard = bm.FetchPinned(&t, col, chunk);
        ASSERT_TRUE(guard.ok()) << guard.status().ToString();
      }
    });
  }
  for (auto& th : threads) th.join();

  // PAX faults one whole row group per miss and registers the sibling
  // columns, so the disk can never read a row group more than once.
  EXPECT_EQ(disk.read_count(), bm.misses());
  EXPECT_LE(bm.misses(), t.chunk_count());
  EXPECT_GT(bm.hits(), 0u);
}

TEST(ConcurrencyTest, PaxStormWithFaultsRecoversPerColumn) {
  // PAX + fault injection: faults apply to the page of the column that
  // leads the row-group read, so a coalesced waiter on a sibling column
  // must not blindly inherit the leader's error — it retries its own
  // fetch. With a generous per-fetch budget every fetch must succeed.
  const size_t kRows = 8 * kChunkValues;
  Table t = MakeTable(kRows);
  SimDisk disk;
  FaultInjector faults(FaultInjector::Config{
      .seed = 11, .io_error_prob = 0.02, .bit_flip_prob = 0.05});
  disk.AttachFaults(&faults);
  // Capacity for ~3 pages of "a": eviction churn keeps re-electing
  // leaders instead of settling into an all-hit steady state.
  size_t capacity = 0;
  for (size_t c = 0; c < 3; c++) capacity += t.column("a")->chunks[c].size();
  BufferManager bm(&disk, capacity, Layout::kPAX);
  bm.SetVerifyChecksums(true);
  bm.set_max_read_retries(16);

  constexpr int kThreads = 6;
  const char* cols[] = {"a", "b", "c"};
  std::vector<std::thread> threads;
  for (int id = 0; id < kThreads; id++) {
    threads.emplace_back([&, id] {
      Rng rng(uint64_t(id) + 50);
      for (int f = 0; f < 150; f++) {
        const size_t chunk = rng.Uniform(uint32_t(t.chunk_count()));
        const StoredColumn* col = t.column(cols[rng.Uniform(3)]);
        auto guard = bm.FetchPinned(&t, col, chunk);
        ASSERT_TRUE(guard.ok()) << guard.status().ToString();
        if (col == t.column("a")) {
          VerifyChunkA(t, *guard.ValueOrDie().page(), chunk);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_GT(faults.stats().faults(), 0u);
  EXPECT_GT(bm.io_faults(), 0u);
  // Retries re-charge the disk, so reads >= misses still holds.
  EXPECT_GE(disk.read_count(), bm.misses());
}

TEST(ConcurrencyTest, LegacyFetchStaysValidSingleThreaded) {
  // The unpinned Fetch contract is single-threaded only, but it must
  // keep working (the serial query paths still use it).
  Table t = MakeTable(4 * kChunkValues);
  SimDisk disk;
  BufferManager bm(&disk, size_t(1) << 30, Layout::kDSM);
  auto page = bm.Fetch(&t, t.column("a"), 1);
  ASSERT_TRUE(page.ok());
  VerifyChunkA(t, *page.ValueOrDie(), 1);
  EXPECT_EQ(bm.misses(), 1u);
}

}  // namespace
}  // namespace scc
