#include "bitpack/bitpack.h"

#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace scc {
namespace {

std::vector<uint32_t> RandomCodes(size_t n, int b, uint64_t seed) {
  Rng rng(seed);
  uint64_t mask = (b == 32) ? 0xFFFFFFFFull : ((uint64_t(1) << b) - 1);
  std::vector<uint32_t> v(n);
  for (auto& x : v) x = uint32_t(rng.Next() & mask);
  return v;
}

class BitPackRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(BitPackRoundTrip, GroupOf32) {
  int b = GetParam();
  auto in = RandomCodes(32, b, 7 + b);
  std::vector<uint32_t> packed(32, 0xDEADBEEF);
  std::vector<uint32_t> out(32, 0);
  BitPackGroup32(in.data(), b, packed.data());
  BitUnpackGroup32(packed.data(), b, out.data());
  EXPECT_EQ(in, out) << "bit width " << b;
}

TEST_P(BitPackRoundTrip, LongStream) {
  int b = GetParam();
  for (size_t n : {1u, 31u, 32u, 33u, 100u, 128u, 1000u, 4096u}) {
    auto in = RandomCodes(n, b, 1000 + b);
    std::vector<uint32_t> packed(PackedByteSize(n, b) / 4 + 1, 0);
    std::vector<uint32_t> out((n + 31) / 32 * 32, 0);
    BitPack(in.data(), n, b, packed.data());
    BitUnpack(packed.data(), n, b, out.data());
    for (size_t i = 0; i < n; i++) {
      ASSERT_EQ(in[i], out[i]) << "b=" << b << " n=" << n << " i=" << i;
    }
  }
}

TEST_P(BitPackRoundTrip, ExtractMatchesUnpack) {
  int b = GetParam();
  const size_t n = 500;
  auto in = RandomCodes(n, b, 99 + b);
  std::vector<uint32_t> packed(PackedByteSize(n, b) / 4 + 2, 0);
  BitPack(in.data(), n, b, packed.data());
  for (size_t i = 0; i < n; i += 7) {
    EXPECT_EQ(in[i], BitExtract(packed.data(), i, b)) << "b=" << b << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBitWidths, BitPackRoundTrip,
                         ::testing::Range(0, 33));

TEST(BitPackSize, PaddedGroupAccounting) {
  EXPECT_EQ(PackedByteSize(0, 7), 0u);
  EXPECT_EQ(PackedByteSize(1, 7), 28u);   // one padded group: 7 words
  EXPECT_EQ(PackedByteSize(32, 7), 28u);
  EXPECT_EQ(PackedByteSize(33, 7), 56u);
  EXPECT_EQ(PackedByteSize(64, 1), 8u);
  EXPECT_EQ(PackedByteSize(128, 32), 512u);
}

TEST(BitPack, ZeroWidthIsAllZeros) {
  std::vector<uint32_t> out(64, 123);
  BitUnpack(nullptr, 64, 0, out.data());
  for (uint32_t v : out) EXPECT_EQ(v, 0u);
}

TEST(BitPack, PackMasksHighBits) {
  // Codes wider than b must be truncated, not corrupt neighbors.
  std::vector<uint32_t> in(32, 0xFFFFFFFFu);
  std::vector<uint32_t> packed(3, 0);
  std::vector<uint32_t> out(32, 0);
  BitPackGroup32(in.data(), 3, packed.data());
  BitUnpackGroup32(packed.data(), 3, out.data());
  for (uint32_t v : out) EXPECT_EQ(v, 7u);
}

}  // namespace
}  // namespace scc
