#include "bitpack/bitpack.h"

#include <vector>

#include <gtest/gtest.h>

#include "kernel_isa_test_util.h"
#include "util/rng.h"

namespace scc {
namespace {

std::vector<uint32_t> RandomCodes(size_t n, int b, uint64_t seed) {
  Rng rng(seed);
  uint64_t mask = (b == 32) ? 0xFFFFFFFFull : ((uint64_t(1) << b) - 1);
  std::vector<uint32_t> v(n);
  for (auto& x : v) x = uint32_t(rng.Next() & mask);
  return v;
}

class BitPackRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(BitPackRoundTrip, GroupOf32) {
  int b = GetParam();
  auto in = RandomCodes(32, b, 7 + b);
  std::vector<uint32_t> packed(32, 0xDEADBEEF);
  std::vector<uint32_t> out(32, 0);
  BitPackGroup32(in.data(), b, packed.data());
  BitUnpackGroup32(packed.data(), b, out.data());
  EXPECT_EQ(in, out) << "bit width " << b;
}

TEST_P(BitPackRoundTrip, LongStream) {
  int b = GetParam();
  for (size_t n : {1u, 31u, 32u, 33u, 100u, 128u, 1000u, 4096u}) {
    auto in = RandomCodes(n, b, 1000 + b);
    std::vector<uint32_t> packed(PackedByteSize(n, b) / 4 + 1, 0);
    std::vector<uint32_t> out((n + 31) / 32 * 32, 0);
    BitPack(in.data(), n, b, packed.data());
    BitUnpack(packed.data(), n, b, out.data());
    for (size_t i = 0; i < n; i++) {
      ASSERT_EQ(in[i], out[i]) << "b=" << b << " n=" << n << " i=" << i;
    }
  }
}

TEST_P(BitPackRoundTrip, ExtractMatchesUnpack) {
  int b = GetParam();
  const size_t n = 500;
  auto in = RandomCodes(n, b, 99 + b);
  std::vector<uint32_t> packed(PackedByteSize(n, b) / 4 + 2, 0);
  BitPack(in.data(), n, b, packed.data());
  for (size_t i = 0; i < n; i += 7) {
    EXPECT_EQ(in[i], BitExtract(packed.data(), i, b)) << "b=" << b << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBitWidths, BitPackRoundTrip,
                         ::testing::Range(0, 33));

TEST(BitPackSize, PaddedGroupAccounting) {
  EXPECT_EQ(PackedByteSize(0, 7), 0u);
  EXPECT_EQ(PackedByteSize(1, 7), 28u);   // one padded group: 7 words
  EXPECT_EQ(PackedByteSize(32, 7), 28u);
  EXPECT_EQ(PackedByteSize(33, 7), 56u);
  EXPECT_EQ(PackedByteSize(64, 1), 8u);
  EXPECT_EQ(PackedByteSize(128, 32), 512u);
}

TEST(BitPack, ZeroWidthIsAllZeros) {
  std::vector<uint32_t> out(64, 123);
  BitUnpack(nullptr, 64, 0, out.data());
  for (uint32_t v : out) EXPECT_EQ(v, 0u);
}

TEST(BitPack, PackMasksHighBits) {
  // Codes wider than b must be truncated, not corrupt neighbors.
  std::vector<uint32_t> in(32, 0xFFFFFFFFu);
  std::vector<uint32_t> packed(3, 0);
  std::vector<uint32_t> out(32, 0);
  BitPackGroup32(in.data(), 3, packed.data());
  BitUnpackGroup32(packed.data(), 3, out.data());
  for (uint32_t v : out) EXPECT_EQ(v, 7u);
}

// ---------------------------------------------------------------------------
// Backend differential tests: every supported SIMD backend must produce
// byte-identical output to the scalar backend for every entry point.
// ---------------------------------------------------------------------------

class BackendDifferential : public ::testing::TestWithParam<int> {};

TEST_P(BackendDifferential, UnpackMatchesScalar) {
  const int b = GetParam();
  for (size_t n : {1u, 31u, 32u, 33u, 100u, 128u, 1000u, 4096u}) {
    auto in = RandomCodes(n, b, 31 + b);
    std::vector<uint32_t> packed(PackedByteSize(n, b) / 4 + 1, 0);
    BitPack(in.data(), n, b, packed.data());
    const size_t rounded = (n + 31) / 32 * 32;
    std::vector<uint32_t> want(rounded, 0);
    {
      ScopedKernelIsa force(KernelIsa::kScalar);
      BitUnpack(packed.data(), n, b, want.data());
    }
    for (KernelIsa isa : SupportedIsas()) {
      ScopedKernelIsa force(isa);
      std::vector<uint32_t> got(rounded, 0xABABABAB);
      BitUnpack(packed.data(), n, b, got.data());
      ASSERT_EQ(want, got) << "isa=" << KernelIsaName(isa) << " b=" << b
                           << " n=" << n;
      std::vector<uint32_t> got32(32, 0);
      BitUnpackGroup32(packed.data(), b, got32.data());
      for (size_t i = 0; i < 32; i++) {
        ASSERT_EQ(want[i], got32[i])
            << "isa=" << KernelIsaName(isa) << " b=" << b << " i=" << i;
      }
    }
  }
}

TEST_P(BackendDifferential, ExactWritesOnlyN) {
  const int b = GetParam();
  for (size_t n : {1u, 17u, 32u, 33u, 127u, 128u, 129u, 1000u}) {
    auto in = RandomCodes(n, b, 77 + b);
    std::vector<uint32_t> packed(PackedByteSize(n, b) / 4 + 1, 0);
    BitPack(in.data(), n, b, packed.data());
    for (KernelIsa isa : SupportedIsas()) {
      ScopedKernelIsa force(isa);
      // Guard canary directly after position n must survive.
      std::vector<uint32_t> got(n + 8, 0xCAFEF00D);
      BitUnpackExact(packed.data(), n, b, got.data());
      for (size_t i = 0; i < n; i++) {
        ASSERT_EQ(in[i], got[i])
            << "isa=" << KernelIsaName(isa) << " b=" << b << " n=" << n;
      }
      for (size_t i = n; i < got.size(); i++) {
        ASSERT_EQ(got[i], 0xCAFEF00D)
            << "overwrite past n: isa=" << KernelIsaName(isa) << " b=" << b
            << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST_P(BackendDifferential, FusedForMatchesScalar) {
  const int b = GetParam();
  const uint32_t base32 = 0xFFFF0101u;  // exercises wraparound
  const uint64_t base64 = 0xFFFFFFFF00000101ull;
  for (size_t n : {1u, 32u, 63u, 128u, 1000u}) {
    auto in = RandomCodes(n, b, 5 + b);
    std::vector<uint32_t> packed(PackedByteSize(n, b) / 4 + 1, 0);
    BitPack(in.data(), n, b, packed.data());
    for (KernelIsa isa : SupportedIsas()) {
      ScopedKernelIsa force(isa);
      std::vector<uint32_t> got32(n, 0);
      std::vector<uint64_t> got64(n, 0);
      BitUnpackFor32(packed.data(), n, b, base32, got32.data());
      BitUnpackFor64(packed.data(), n, b, base64, got64.data());
      for (size_t i = 0; i < n; i++) {
        ASSERT_EQ(uint32_t(base32 + in[i]), got32[i])
            << "isa=" << KernelIsaName(isa) << " b=" << b << " i=" << i;
        ASSERT_EQ(base64 + in[i], got64[i])
            << "isa=" << KernelIsaName(isa) << " b=" << b << " i=" << i;
      }
    }
  }
}

TEST_P(BackendDifferential, SelectBetweenMatchesScalar) {
  const int b = GetParam();
  const uint32_t max_code =
      b == 32 ? 0xFFFFFFFFu : (uint32_t(1) << b) - (b == 0 ? 0 : 1);
  Rng rng(911 + b);
  for (size_t n : {1u, 31u, 32u, 33u, 100u, 128u, 1000u, 4096u}) {
    auto in = RandomCodes(n, b, 411 + b);
    std::vector<uint32_t> packed(PackedByteSize(n, b) / 4 + 1, 0);
    BitPack(in.data(), n, b, packed.data());
    // Range shapes that stress the kernels: empty, everything, lo == 0
    // (padding codes of the final partial group qualify and must be
    // truncated), single point, and random interior ranges.
    std::vector<std::pair<uint32_t, uint32_t>> ranges = {
        {1, 0},                  // lo > hi: nothing
        {0, max_code},           // everything (incl. padding-sensitive lo=0)
        {0, max_code / 2},       // half, from zero
        {max_code, max_code},    // single point at the top
    };
    for (int r = 0; r < 4; r++) {
      uint32_t a = uint32_t(rng.Next()) & max_code;
      uint32_t c = uint32_t(rng.Next()) & max_code;
      ranges.push_back({std::min(a, c), std::max(a, c)});
    }
    const uint32_t base_index = 1u << 20;  // nonzero base must offset output
    for (auto [lo, hi] : ranges) {
      // Scalar reference straight from the unpacked codes.
      std::vector<uint32_t> want;
      if (lo <= hi) {
        for (size_t i = 0; i < n; i++) {
          if (in[i] >= lo && in[i] <= hi) want.push_back(base_index + i);
        }
      }
      for (KernelIsa isa : SupportedIsas()) {
        ScopedKernelIsa force(isa);
        std::vector<uint32_t> got(n + 8, 0xCAFEF00D);
        const size_t cnt =
            BitSelectBetween(packed.data(), n, b, lo, hi, base_index,
                             got.data());
        ASSERT_EQ(want.size(), cnt)
            << "isa=" << KernelIsaName(isa) << " b=" << b << " n=" << n
            << " lo=" << lo << " hi=" << hi;
        for (size_t i = 0; i < cnt; i++) {
          ASSERT_EQ(want[i], got[i])
              << "isa=" << KernelIsaName(isa) << " b=" << b << " n=" << n
              << " lo=" << lo << " hi=" << hi << " i=" << i;
        }
        for (size_t i = n; i < got.size(); i++) {
          ASSERT_EQ(got[i], 0xCAFEF00D)
              << "overwrite past n: isa=" << KernelIsaName(isa) << " b=" << b;
        }
      }
    }
  }
}

TEST_P(BackendDifferential, ExactSizeHeapBuffers) {
  // Heap buffers sized to the byte (no slack words): under ASan any read
  // or write past PackedByteSize / past the staging contracts is a hard
  // failure. Exercises the wide (b = 26..31) unpack loads, the 32-byte
  // wide-pack stores (b = 17..31), and the select kernels' staged tails.
  const int b = GetParam();
  for (size_t n : {1u, 17u, 32u, 96u, 127u, 128u, 129u, 1000u}) {
    auto in = RandomCodes(n, b, 271 + b);
    const size_t packed_words = PackedByteSize(n, b) / 4;
    for (KernelIsa isa : SupportedIsas()) {
      ScopedKernelIsa force(isa);
      std::vector<uint32_t> packed(packed_words, 0);
      BitPack(in.data(), n, b, packed.data());
      std::vector<uint32_t> out(n);
      BitUnpackExact(packed.data(), n, b, out.data());
      for (size_t i = 0; i < n; i++) {
        ASSERT_EQ(in[i], out[i])
            << "isa=" << KernelIsaName(isa) << " b=" << b << " n=" << n;
      }
      std::vector<uint32_t> sel(n);
      const uint32_t hi = b == 0 ? 0u : (1u << (b - 1));
      const size_t cnt =
          BitSelectBetween(packed.data(), n, b, 0, hi, 0, sel.data());
      ASSERT_LE(cnt, n) << "isa=" << KernelIsaName(isa) << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBitWidths, BackendDifferential,
                         ::testing::Range(0, 33));

TEST(BackendDifferentialFlat, ForDecodeAndPrefixSum) {
  Rng rng(2024);
  for (size_t n : {0u, 1u, 3u, 4u, 7u, 8u, 64u, 1000u, 4097u}) {
    std::vector<uint32_t> codes(n);
    for (auto& c : codes) c = uint32_t(rng.Next());
    const uint32_t base32 = 0x80000001u;
    const uint64_t base64 = 0xFF00000000000001ull;
    // Scalar reference.
    std::vector<uint32_t> want_for32(n);
    std::vector<uint64_t> want_for64(n);
    std::vector<uint32_t> want_ps32(codes.begin(), codes.end());
    std::vector<uint64_t> want_ps64(codes.begin(), codes.end());
    {
      ScopedKernelIsa force(KernelIsa::kScalar);
      ForDecode32(codes.data(), n, base32, want_for32.data());
      ForDecode64(codes.data(), n, base64, want_for64.data());
      PrefixSum32(want_ps32.data(), n, base32);
      PrefixSum64(want_ps64.data(), n, base64);
    }
    for (KernelIsa isa : SupportedIsas()) {
      ScopedKernelIsa force(isa);
      std::vector<uint32_t> got_for32(n);
      std::vector<uint64_t> got_for64(n);
      std::vector<uint32_t> got_ps32(codes.begin(), codes.end());
      std::vector<uint64_t> got_ps64(codes.begin(), codes.end());
      ForDecode32(codes.data(), n, base32, got_for32.data());
      ForDecode64(codes.data(), n, base64, got_for64.data());
      PrefixSum32(got_ps32.data(), n, base32);
      PrefixSum64(got_ps64.data(), n, base64);
      ASSERT_EQ(want_for32, got_for32) << KernelIsaName(isa) << " n=" << n;
      ASSERT_EQ(want_for64, got_for64) << KernelIsaName(isa) << " n=" << n;
      ASSERT_EQ(want_ps32, got_ps32) << KernelIsaName(isa) << " n=" << n;
      ASSERT_EQ(want_ps64, got_ps64) << KernelIsaName(isa) << " n=" << n;
    }
  }
}

TEST(KernelDispatch, QueryAndForce) {
  // Scalar is always available and forcible; the active backend is always
  // one of the supported ones.
  EXPECT_TRUE(KernelIsaSupported(KernelIsa::kScalar));
  EXPECT_TRUE(KernelIsaSupported(ActiveKernelIsa()));
  const KernelIsa original = ActiveKernelIsa();
  EXPECT_TRUE(SetKernelIsa(KernelIsa::kScalar));
  EXPECT_EQ(ActiveKernelIsa(), KernelIsa::kScalar);
  for (KernelIsa isa : SupportedIsas()) {
    EXPECT_TRUE(SetKernelIsa(isa));
    EXPECT_EQ(ActiveKernelIsa(), isa);
    EXPECT_STRNE(KernelIsaName(isa), "?");
  }
  if (!KernelIsaSupported(KernelIsa::kAvx2)) {
    EXPECT_FALSE(SetKernelIsa(KernelIsa::kAvx2));
  }
  SetKernelIsa(original);
}

}  // namespace
}  // namespace scc
