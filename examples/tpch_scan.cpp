// Columnar analytics on compressed storage: builds a small TPC-H
// database, stores it through ColumnBM with per-chunk adaptive
// compression, and runs TPC-H Q1 and Q6 over a simulated RAID — showing
// the end-to-end effect the paper is about: compressed scans read fewer
// bytes, so I/O-bound queries finish roughly `compression ratio` times
// faster.
//
//   ./build/examples/tpch_scan [scale_factor]

#include <cstdio>
#include <cstdlib>

#include "tpch/queries.h"

int main(int argc, char** argv) {
  double sf = argc > 1 ? atof(argv[1]) : 0.02;
  printf("generating TPC-H data at scale factor %.3f...\n", sf);
  scc::TpchData data = scc::GenerateTpch(sf);
  printf("lineitem: %zu rows\n\n", data.lineitem.rows());

  auto compressed =
      scc::TpchDatabase::Build(data, scc::ColumnCompression::kAuto);
  auto raw = scc::TpchDatabase::Build(data, scc::ColumnCompression::kNone);
  printf("stored size: %.1f MB compressed, %.1f MB raw\n\n",
         compressed.ByteSize() / 1048576.0, raw.ByteSize() / 1048576.0);

  for (int q : {1, 6}) {
    printf("--- TPC-H Q%d on a %g MB/s simulated RAID ---\n", q, 80.0);
    for (bool use_compression : {false, true}) {
      const scc::TpchDatabase& db = use_compression ? compressed : raw;
      scc::SimDisk disk(scc::SimDisk::LowEndRaid());
      scc::BufferManager bm(&disk, size_t(1) << 32, scc::Layout::kDSM);
      scc::QueryStats s = scc::RunTpchQuery(
          q, db, &bm, scc::TableScanOp::Mode::kVectorWise);
      printf("  %-12s io=%6.1f MB  time=%.3fs (cpu %.3fs, of which "
             "decompression %.3fs)\n",
             use_compression ? "compressed" : "uncompressed",
             s.bytes_read / 1048576.0, s.TotalSeconds(), s.cpu_seconds,
             s.decompress_seconds);
    }
    printf("\n");
  }
  printf("The compressed runs produce byte-identical results (checked by "
         "the\nharness) while reading a fraction of the bytes — on an "
         "I/O-bound system\nthat fraction is the speedup.\n");
  return 0;
}
