// Quickstart: compress an integer column with PFOR, decompress it, and
// use fine-grained access — the library's core loop in ~60 lines.
//
//   cmake --build build && ./build/examples/quickstart

#include <cstdio>
#include <vector>

#include "core/analyzer.h"
#include "core/segment_builder.h"
#include "core/segment_reader.h"
#include "util/rng.h"

int main() {
  // A column with a tight value cluster plus a few outliers — the
  // distribution classic FOR handles badly and PFOR was designed for.
  scc::Rng rng(7);
  std::vector<int64_t> column(1'000'000);
  for (auto& v : column) v = 20'000 + int64_t(rng.Uniform(500));
  column[123] = 1'000'000'000;   // outlier -> exception, not wider codes
  column[777'777] = -42;         // below the frame base also works

  // 1. Let the analyzer pick a scheme and parameters from a sample.
  scc::CompressionChoice<int64_t> choice = scc::Analyzer<int64_t>::Analyze(
      std::span<const int64_t>(column.data(), 64 * 1024));
  printf("analyzer chose: %s\n", choice.ToString().c_str());

  // 2. Compress into a self-describing segment.
  auto segment = scc::SegmentBuilder<int64_t>::Build(column, choice);
  if (!segment.ok()) {
    printf("compression failed: %s\n", segment.status().ToString().c_str());
    return 1;
  }
  const scc::AlignedBuffer& buf = segment.ValueOrDie();
  printf("compressed %zu values: %.1f MB -> %.2f MB (%.1fx)\n",
         column.size(), column.size() * 8 / 1048576.0,
         buf.size() / 1048576.0, column.size() * 8.0 / buf.size());

  // 3. Decompress — sequentially, by range, or one value at a time.
  auto reader = scc::SegmentReader<int64_t>::Open(buf.data(), buf.size());
  const auto& r = reader.ValueOrDie();
  std::vector<int64_t> out(column.size());
  r.DecompressAll(out.data());
  printf("round trip %s\n", out == column ? "OK" : "FAILED");
  printf("exceptions stored: %zu\n", r.exception_count());
  printf("fine-grained access: column[123] = %lld, column[777777] = %lld\n",
         static_cast<long long>(r.Get(123)),
         static_cast<long long>(r.Get(777'777)));
  return out == column ? 0 : 1;
}
