// Differential updates (paper Section 2.3): compressed chunks on disk are
// immutable; inserts/deletes/updates live in an in-memory DeltaStore that
// scans merge in after decompression, and a periodic checkpoint folds the
// deltas back into freshly compressed chunks.
//
//   ./build/examples/differential_updates

#include <cstdio>
#include <vector>

#include "storage/merge_scan.h"
#include "util/rng.h"

int main() {
  // Base table: a compressed "accounts" table.
  scc::Rng rng(1);
  const size_t rows = 200000;
  std::vector<int64_t> balance(rows);
  std::vector<int32_t> branch(rows);
  for (size_t i = 0; i < rows; i++) {
    balance[i] = int64_t(rng.Uniform(100000));
    branch[i] = int32_t(rng.Uniform(50));
  }
  scc::Table table(1u << 15);
  SCC_CHECK(table.AddColumn<int64_t>("balance", balance,
                                     scc::ColumnCompression::kAuto)
                .ok(),
            "balance");
  SCC_CHECK(table.AddColumn<int32_t>("branch", branch,
                                     scc::ColumnCompression::kAuto)
                .ok(),
            "branch");
  printf("base table: %zu rows, %.2f MB compressed\n", table.rows(),
         table.ByteSize() / 1048576.0);

  // A day of modifications, without touching the compressed chunks.
  scc::DeltaStore delta({scc::TypeId::kInt64, scc::TypeId::kInt32});
  for (int i = 0; i < 5000; i++) {
    SCC_CHECK(delta.Insert({int64_t(rng.Uniform(50000)),
                            int32_t(rng.Uniform(50))})
                  .ok(),
              "insert");
  }
  for (int i = 0; i < 3000; i++) delta.Delete(rng.Uniform(rows));
  for (int i = 0; i < 1000; i++) {
    SCC_CHECK(delta.Update(rng.Uniform(rows), {0, 49}).ok(), "update");
  }
  printf("delta store: %zu inserts, %zu deletes (~%.1f KB in memory)\n",
         delta.insert_count(), delta.delete_count(),
         delta.ApproxBytes() / 1024.0);

  // Scans see a consistent merged state.
  scc::SimDisk disk;
  scc::BufferManager bm(&disk, size_t(1) << 30, scc::Layout::kDSM);
  scc::MergeScanOp scan(&table, &bm, {"balance", "branch"}, &delta, {0, 1});
  scc::Batch b;
  size_t merged_rows = 0;
  int64_t total_balance = 0;
  while (size_t n = scan.Next(&b)) {
    merged_rows += n;
    for (size_t i = 0; i < n; i++) {
      total_balance += b.col(0)->data<int64_t>()[i];
    }
  }
  printf("merged scan: %zu live rows, total balance %lld\n", merged_rows,
         static_cast<long long>(total_balance));

  // Checkpoint: fold deltas back into compressed chunks.
  auto merged = scc::Checkpoint(table, delta, &bm,
                                scc::ColumnCompression::kAuto);
  SCC_CHECK(merged.ok(), merged.status().ToString().c_str());
  printf("after checkpoint: %zu rows, %.2f MB compressed — deltas gone, "
         "chunks re-optimized\n",
         merged.ValueOrDie().rows(),
         merged.ValueOrDie().ByteSize() / 1048576.0);
  return 0;
}
