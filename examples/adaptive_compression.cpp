// The scheme chooser in action (paper Section 3.1, "Choosing Compression
// Schemes"): one column per data distribution, each analyzed from a
// sample; the analyzer picks PFOR for clustered values, PFOR-DELTA for
// monotone sequences, PDICT for skewed small domains, and falls back to
// raw storage for incompressible data. Also contrasts each patched scheme
// against its classical exception-less ancestor.
//
//   ./build/examples/adaptive_compression

#include <cstdio>
#include <vector>

#include "baselines/classic.h"
#include "core/analyzer.h"
#include "core/segment_builder.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace {

void Show(const char* name, const std::vector<int64_t>& column) {
  auto choice = scc::Analyzer<int64_t>::Analyze(
      std::span<const int64_t>(column.data(),
                               std::min<size_t>(column.size(), 65536)));
  auto seg = scc::SegmentBuilder<int64_t>::Build(column, choice);
  double ratio = seg.ok() ? column.size() * 8.0 / seg.ValueOrDie().size() : 0;
  double for_bits = scc::ClassicFor<int64_t>::BitsPerValue(column);
  printf("%-22s -> %-48s achieved %5.2fx (classic FOR: %4.1f bits/val)\n",
         name, choice.ToString().c_str(), ratio, for_bits);
}

}  // namespace

int main() {
  scc::Rng rng(11);
  const size_t n = 500000;

  std::vector<int64_t> clustered(n);
  for (auto& v : clustered) v = 730000 + int64_t(rng.Uniform(2000));
  clustered[5] = 1;  // one outlier would force classic FOR to 20+ bits
  clustered[n / 2] = int64_t(1) << 40;

  std::vector<int64_t> monotone(n);
  int64_t acc = 0;
  for (auto& v : monotone) {
    acc += 1 + int64_t(rng.Uniform(60));
    v = acc;
  }

  scc::ZipfGenerator zipf(100000, 1.3, 3);
  std::vector<int64_t> skewed(n);
  for (auto& v : skewed) v = int64_t(zipf.Next()) * 2654435761ll;

  std::vector<int64_t> random(n);
  for (auto& v : random) v = int64_t(rng.Next());

  printf("column                    analyzer choice"
         "                                   result\n");
  printf("--------------------------------------------------------------"
         "----------------------------------------\n");
  Show("dates w/ outliers", clustered);
  Show("monotone keys", monotone);
  Show("zipf-skewed domain", skewed);
  Show("random 64-bit", random);

  printf("\nThe patched schemes tolerate the outliers that break their "
         "classical\nancestors: FOR must widen every code for one stray "
         "value, while PFOR\nstores it as an exception and keeps the "
         "narrow width.\n");
  return 0;
}
