// Information-retrieval use of PFOR-DELTA (paper Section 5): build an
// inverted index over a synthetic document collection, compress the
// posting lists (docids as PFOR-DELTA, term frequencies as PFOR), and
// answer top-N queries directly from the compressed index.
//
//   ./build/examples/inverted_index_search

#include <cstdio>

#include "ir/collection.h"
#include "ir/posting_codec.h"
#include "ir/search.h"
#include "sys/timer.h"

int main() {
  scc::CollectionSpec spec{"demo", 200000, 50000, 0.95, 2000000, 42};
  printf("building a collection: %u docs, %u terms...\n", spec.num_docs,
         spec.vocab);
  scc::InvertedIndex index = scc::BuildCollection(spec);
  printf("postings: %zu (%.1f MB raw as docid+tf pairs)\n",
         index.TotalPostings(), index.TotalPostings() * 8 / 1048576.0);

  auto searcher = scc::PostingSearcher::Build(index);
  if (!searcher.ok()) {
    printf("index compression failed: %s\n",
           searcher.status().ToString().c_str());
    return 1;
  }
  const auto& s = searcher.ValueOrDie();
  printf("compressed index: %.1f MB (%.1fx)\n\n",
         s.CompressedBytes() / 1048576.0,
         double(s.RawBytes()) / s.CompressedBytes());

  uint32_t term = s.MostFrequentTerm();
  scc::Timer t;
  auto hits = s.TopN(term, 5);
  double ms = t.ElapsedSeconds() * 1e3;
  printf("top-5 documents for the most frequent term (%zu postings, "
         "%.2f ms):\n",
         index.postings[term].size(), ms);
  for (const auto& h : hits) {
    printf("  doc %8u  tf %u\n", h.doc, h.score);
  }

  // Conjunctive query: documents containing both of two frequent terms,
  // probing the longer compressed list via fine-grained access.
  uint32_t term2 = term == 0 ? 1 : term - 1;
  t.Reset();
  auto both = s.TopNConjunctive(term, term2, 3);
  printf("\ntop-3 for terms %u AND %u (%.2f ms, galloping probes on "
         "compressed docids):\n",
         term, term2, t.ElapsedSeconds() * 1e3);
  for (const auto& h : both) {
    printf("  doc %8u  combined tf %u\n", h.doc, h.score);
  }

  // The same docid stream through the Table 4 codecs, for comparison.
  auto ids = scc::FlattenToIds(index);
  printf("\nwhole-index docid stream through each codec:\n");
  for (auto& codec : scc::MakePostingCodecs()) {
    auto comp = codec->Compress(ids.data(), ids.size());
    if (!comp.ok()) continue;
    printf("  %-14s %5.2fx\n", codec->name().c_str(),
           ids.size() * 4.0 / comp.ValueOrDie().size());
  }
  return 0;
}
