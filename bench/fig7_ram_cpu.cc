// Figure 7 / Table 3 (microbenchmark side) reproduction: I/O-RAM
// (page-wise) versus RAM-CPU cache (vector-wise) decompression.
//
// Both paths decompress the same PFOR segments and feed the same consumer
// (a sum over the decoded values, standing in for a query primitive). The
// page-wise path first materializes whole decompressed chunks back into a
// RAM-resident buffer and then streams them to the consumer — the extra
// round trip through memory the paper charges the Sybase-IQ-style
// architecture for (Figure 1 left).
//
// Expected shape: vector-wise sustains higher effective bandwidth and far
// fewer cache misses, especially at low exception rates where
// decompression itself is cheapest.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/segment_builder.h"
#include "core/segment_reader.h"
#include "engine/vector.h"

namespace scc {
namespace {

constexpr size_t kChunkValues = 1u << 21;  // 16 MiB decompressed per chunk
constexpr size_t kChunks = 12;             // 192 MiB total: far beyond L3
constexpr int kB = 8;
constexpr int kReps = 3;

}  // namespace

int Main() {
  bench::PrintHeader(
      "I/O-RAM (page-wise) vs RAM-CPU cache (vector-wise) decompression",
      "Figure 7");
  printf("%zu chunks x %zu int64 values (%zu MiB decompressed), %d-bit "
         "codes\n\n",
         kChunks, kChunkValues,
         kChunks * kChunkValues * sizeof(int64_t) >> 20, kB);
  printf("exc.rate | vector-wise GB/s  cachemiss%% | page-wise GB/s    "
         "cachemiss%%\n");
  printf("---------+------------------------------+----------------------"
         "--------\n");

  std::vector<int64_t> vec(kVectorSize);
  std::vector<int64_t> page(kChunkValues);
  volatile int64_t sink = 0;

  for (double rate : {0.0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 1.0}) {
    // Build the compressed chunks.
    std::vector<AlignedBuffer> chunks;
    for (size_t c = 0; c < kChunks; c++) {
      auto data = bench::ExceptionData<int64_t>(
          kChunkValues, kB, 100, rate, c * 977 + uint64_t(rate * 1000));
      auto seg = SegmentBuilder<int64_t>::BuildPFor(
          data, PForParams<int64_t>{kB, 100});
      SCC_CHECK(seg.ok(), "build failed");
      chunks.push_back(seg.MoveValueOrDie());
    }
    const double bytes =
        double(kChunks) * kChunkValues * sizeof(int64_t);

    auto vector_wise = bench::MeasureWithCounters(kReps, [&] {
      int64_t acc = 0;
      for (const auto& chunk : chunks) {
        auto reader = SegmentReader<int64_t>::Open(chunk.data(), chunk.size());
        const auto& r = reader.ValueOrDie();
        for (size_t pos = 0; pos < kChunkValues; pos += kVectorSize) {
          r.DecompressRange(pos, kVectorSize, vec.data());
          for (size_t i = 0; i < kVectorSize; i++) acc += vec[i];
        }
      }
      sink = acc;
    });

    auto page_wise = bench::MeasureWithCounters(kReps, [&] {
      int64_t acc = 0;
      for (const auto& chunk : chunks) {
        auto reader = SegmentReader<int64_t>::Open(chunk.data(), chunk.size());
        reader.ValueOrDie().DecompressAll(page.data());
        for (size_t i = 0; i < kChunkValues; i++) acc += page[i];
      }
      sink = acc;
    });

    printf("  %4.2f   |     %7.2f        %s    |    %7.2f        %s\n", rate,
           GBPerSec(bytes, vector_wise.seconds),
           bench::FmtRate(vector_wise.perf.CacheMissRate()).c_str(),
           GBPerSec(bytes, page_wise.seconds),
           bench::FmtRate(page_wise.perf.CacheMissRate()).c_str());
  }
  (void)sink;
  printf("\nPaper reference (Fig. 7): vector-wise RAM-CPU cache "
         "decompression clearly\noutruns page-wise I/O-RAM decompression, "
         "which pays an extra write+read of\nevery page through main "
         "memory (more L2 misses).\n");
  return 0;
}

}  // namespace scc

int main() { return scc::Main(); }
