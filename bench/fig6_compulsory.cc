// Figure 6 reproduction: the effective exception rate E'(E, b) once
// compulsory exceptions are accounted for, for code widths b = 1..4 (and
// b > 4 where the effect vanishes). Printed three ways:
//   analytic  - the paper's model E' = MAX(E, (128E-1)/(128E) * 2^-b)
//   segments  - measured from real PFOR segments, whose exception lists
//               restart at every 128-value entry point
//   no-restart- ablation: one linked list across the whole block (what
//               the format would pay without per-group entry points)

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/exception_model.h"
#include "core/kernels.h"
#include "core/segment_builder.h"
#include "core/segment_reader.h"

namespace scc {
namespace {

constexpr size_t kN = 128 * 4096;

double MeasuredSegmentRate(double e, int b) {
  auto data = bench::ExceptionData<int64_t>(kN, b, 0, e,
                                            uint64_t(e * 1000) * 31 + b);
  auto seg = SegmentBuilder<int64_t>::BuildPFor(data,
                                                PForParams<int64_t>{b, 0});
  SCC_CHECK(seg.ok(), "segment build failed");
  auto reader = SegmentReader<int64_t>::Open(seg.ValueOrDie().data(),
                                             seg.ValueOrDie().size());
  return double(reader.ValueOrDie().exception_count()) / double(kN);
}

double MeasuredFlatRate(double e, int b) {
  auto data = bench::ExceptionData<int64_t>(kN, b, 0, e,
                                            uint64_t(e * 1000) * 31 + b);
  std::vector<uint32_t> codes(kN), miss(kN);
  std::vector<int64_t> exc(kN);
  size_t first = 0;
  size_t n_exc = CompressPred(data.data(), kN, b, int64_t(0), codes.data(),
                              exc.data(), &first, miss.data());
  return double(n_exc) / double(kN);
}

}  // namespace

int Main() {
  bench::PrintHeader("Compulsory exceptions: effective rate E'(E, b)",
                     "Figure 6");
  for (int b : {1, 2, 3, 4, 8}) {
    printf("bit width b = %d\n", b);
    printf("   E     analytic   segments   no-restart\n");
    for (double e : {0.005, 0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3}) {
      printf(" %5.3f   %7.3f    %7.3f    %7.3f\n", e,
             EffectiveExceptionRate(e, b), MeasuredSegmentRate(e, b),
             MeasuredFlatRate(e, b));
    }
    printf("\n");
  }
  printf("Paper reference (Fig. 6): with b=1, E' saturates near 0.47 for "
         "E > 0.01;\nb=2 peaks around 0.22; for b > 4 compulsory exceptions "
         "are negligible.\nThe per-128 entry-point restart (\"segments\") "
         "removes the list-coverage cost at\nblock edges versus the "
         "no-restart ablation.\n");
  return 0;
}

}  // namespace scc

int main() { return scc::Main(); }
