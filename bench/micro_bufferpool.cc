// Buffer-pool ablation for the paper's Figure 1 argument: caching pages
// COMPRESSED means more of the working set stays in RAM, so repeated
// queries do less I/O. We sweep the buffer-pool capacity as a fraction of
// the raw table size and re-run a scan-heavy query mix; at every capacity
// the compressed table takes fewer misses, and in the band between the
// compressed and raw working-set sizes it takes none at all.

#include <cstdio>

#include "bench/bench_util.h"
#include "tpch/queries.h"

namespace scc {

int Main(int argc, char** argv) {
  double sf = argc > 1 ? atof(argv[1]) : 0.02;
  bench::PrintHeader("Buffer-pool capacity sweep: compressed vs raw caching",
                     "Figure 1 (RAM caching argument)");
  TpchData data = GenerateTpch(sf);
  TpchDatabase comp = TpchDatabase::Build(data, ColumnCompression::kAuto,
                                          1u << 14);
  TpchDatabase raw = TpchDatabase::Build(data, ColumnCompression::kNone,
                                         1u << 14);
  const size_t raw_bytes = raw.ByteSize();
  printf("table bytes: %.1f MB raw, %.1f MB compressed\n\n",
         raw_bytes / 1048576.0, comp.ByteSize() / 1048576.0);
  printf("pool (%% of raw) | raw: misses  io MB   | compressed: misses  "
         "io MB\n");
  printf("----------------+----------------------+------------------------"
         "--\n");

  const int kRounds = 3;  // repeated query mix over a warm pool
  for (double frac : {0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    size_t capacity = size_t(double(raw_bytes) * frac);
    size_t misses[2] = {0, 0};
    double io_mb[2] = {0, 0};
    const TpchDatabase* dbs[2] = {&raw, &comp};
    for (int which = 0; which < 2; which++) {
      SimDisk disk;
      BufferManager bm(&disk, capacity, Layout::kDSM);
      for (int round = 0; round < kRounds; round++) {
        for (int q : {1, 6, 14}) {
          RunTpchQuery(q, *dbs[which], &bm, TableScanOp::Mode::kVectorWise);
        }
      }
      misses[which] = bm.misses();
      io_mb[which] = disk.bytes_read() / 1048576.0;
    }
    printf("      %4.0f%%     |      %6zu %8.1f |           %6zu %8.1f\n",
           frac * 100, misses[0], io_mb[0], misses[1], io_mb[1]);
  }
  printf("\nPaper reference (Fig. 1): a buffer manager that caches "
         "decompressed pages\nholds ~r times less data; caching compressed "
         "pages keeps the working set\nresident at pool sizes where the "
         "raw table thrashes.\n");
  return 0;
}

}  // namespace scc

int main(int argc, char** argv) { return scc::Main(argc, argv); }
