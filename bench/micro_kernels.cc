// Micro-benchmarks (google-benchmark) for the kernel-level claims:
//   * bit-unpacking takes < 10% of decompression cost (Section 3)
//   * fine-grained random access costs ~1 cache-miss-equivalent
//     (~200 work cycles per value, Section 3.1)
//   * vector-granularity sweep: the RAM-CPU cache sweet spot
//   * analyzer cost is O(s log s) in the sample

#include <benchmark/benchmark.h>

#include <vector>

#include "bench/bench_util.h"
#include "bitpack/bitpack.h"
#include "core/analyzer.h"
#include "core/kernels.h"
#include "core/segment_builder.h"
#include "core/segment_reader.h"
#include "engine/vector.h"
#include "util/rng.h"

namespace scc {
namespace {

// ---------------------------------------------------------------------------
// Bit packing
// ---------------------------------------------------------------------------

void BM_BitUnpack(benchmark::State& state) {
  const int b = int(state.range(0));
  const size_t n = 1u << 20;
  Rng rng(1);
  std::vector<uint32_t> codes(n);
  for (auto& c : codes) c = uint32_t(rng.Next()) & MaxCode(b);
  std::vector<uint32_t> packed(PackedByteSize(n, b) / 4 + 1);
  BitPack(codes.data(), n, b, packed.data());
  std::vector<uint32_t> out(n + 32);
  for (auto _ : state) {
    BitUnpack(packed.data(), n, b, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * int64_t(n) * 4);
}
BENCHMARK(BM_BitUnpack)->Arg(1)->Arg(4)->Arg(8)->Arg(12)->Arg(16)->Arg(24);

void BM_BitPack(benchmark::State& state) {
  const int b = int(state.range(0));
  const size_t n = 1u << 20;
  Rng rng(2);
  std::vector<uint32_t> codes(n);
  for (auto& c : codes) c = uint32_t(rng.Next()) & MaxCode(b);
  std::vector<uint32_t> packed(PackedByteSize(n, b) / 4 + 1);
  for (auto _ : state) {
    BitPack(codes.data(), n, b, packed.data());
    benchmark::DoNotOptimize(packed.data());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * int64_t(n) * 4);
}
BENCHMARK(BM_BitPack)->Arg(1)->Arg(8)->Arg(16);

// Decode-only vs unpack+decode: quantifies the paper's "<10% of cost"
// claim for bit-unpacking within full decompression.
void BM_UnpackPlusDecode(benchmark::State& state) {
  const int b = 8;
  const size_t n = 1u << 20;
  auto data = bench::ExceptionData<int64_t>(n, b, 0, 0.02, 3);
  auto seg = SegmentBuilder<int64_t>::BuildPFor(data, PForParams<int64_t>{b, 0});
  std::vector<int64_t> out(n);
  for (auto _ : state) {
    auto reader = SegmentReader<int64_t>::Open(seg.ValueOrDie().data(),
                                               seg.ValueOrDie().size());
    reader.ValueOrDie().DecompressAll(out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * int64_t(n) * 8);
}
BENCHMARK(BM_UnpackPlusDecode);

void BM_DecodeOnly(benchmark::State& state) {
  const int b = 8;
  const size_t n = 1u << 20;
  auto data = bench::ExceptionData<int64_t>(n, b, 0, 0.02, 3);
  std::vector<uint32_t> codes(n), miss(n);
  std::vector<int64_t> exc(n), out(n);
  size_t first = 0;
  size_t nexc = CompressPred(data.data(), n, b, int64_t(0), codes.data(),
                             exc.data(), &first, miss.data());
  ForCodec<int64_t> codec(int64_t(0));
  for (auto _ : state) {
    DecompressPatched(codes.data(), n, codec, exc.data(), first, nexc,
                      out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * int64_t(n) * 8);
}
BENCHMARK(BM_DecodeOnly);

// ---------------------------------------------------------------------------
// Fine-grained access
// ---------------------------------------------------------------------------

void BM_FineGrainedGet(benchmark::State& state) {
  const double rate = double(state.range(0)) / 100.0;
  const size_t n = 1u << 20;
  auto data = bench::ExceptionData<int32_t>(n, 8, 0, rate, 4);
  auto seg = SegmentBuilder<int32_t>::BuildPFor(data, PForParams<int32_t>{8, 0});
  auto reader = SegmentReader<int32_t>::Open(seg.ValueOrDie().data(),
                                             seg.ValueOrDie().size());
  const auto& r = reader.ValueOrDie();
  Rng rng(5);
  std::vector<uint32_t> positions(4096);
  for (auto& p : positions) p = uint32_t(rng.Uniform(n));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.Get(positions[i]));
    i = (i + 1) & 4095;
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_FineGrainedGet)->Arg(0)->Arg(10)->Arg(30);

void BM_SequentialPerValue(benchmark::State& state) {
  const size_t n = 1u << 20;
  auto data = bench::ExceptionData<int32_t>(n, 8, 0, 0.1, 6);
  auto seg = SegmentBuilder<int32_t>::BuildPFor(data, PForParams<int32_t>{8, 0});
  auto reader = SegmentReader<int32_t>::Open(seg.ValueOrDie().data(),
                                             seg.ValueOrDie().size());
  std::vector<int32_t> out(n);
  for (auto _ : state) {
    reader.ValueOrDie().DecompressAll(out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n));
}
BENCHMARK(BM_SequentialPerValue);

// ---------------------------------------------------------------------------
// Vector granularity ablation (the RAM-CPU cache design point)
// ---------------------------------------------------------------------------

void BM_VectorGranularity(benchmark::State& state) {
  const size_t vec = size_t(state.range(0));
  const size_t n = 4u << 20;
  auto data = bench::ExceptionData<int32_t>(n, 8, 0, 0.05, 7);
  auto seg = SegmentBuilder<int32_t>::BuildPFor(data, PForParams<int32_t>{8, 0});
  auto reader = SegmentReader<int32_t>::Open(seg.ValueOrDie().data(),
                                             seg.ValueOrDie().size());
  const auto& r = reader.ValueOrDie();
  std::vector<int32_t> buf(vec);
  for (auto _ : state) {
    int64_t acc = 0;
    for (size_t pos = 0; pos < n; pos += vec) {
      r.DecompressRange(pos, std::min(vec, n - pos), buf.data());
      for (size_t i = 0; i < std::min(vec, n - pos); i++) acc += buf[i];
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * int64_t(n) * 4);
}
BENCHMARK(BM_VectorGranularity)
    ->Arg(128)
    ->Arg(1024)
    ->Arg(8192)
    ->Arg(65536)
    ->Arg(1 << 20);

// ---------------------------------------------------------------------------
// Analyzer
// ---------------------------------------------------------------------------

void BM_AnalyzeSample(benchmark::State& state) {
  const size_t s = size_t(state.range(0));
  auto data = bench::ExceptionData<int64_t>(s, 12, 1000, 0.05, 8);
  for (auto _ : state) {
    auto choice = Analyzer<int64_t>::Analyze(data);
    benchmark::DoNotOptimize(choice.est_bits_per_value);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(s));
}
BENCHMARK(BM_AnalyzeSample)->Arg(4096)->Arg(65536);

}  // namespace
}  // namespace scc

BENCHMARK_MAIN();
