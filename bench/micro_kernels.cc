// Micro-benchmarks (google-benchmark) for the kernel-level claims:
//   * bit-unpacking takes < 10% of decompression cost (Section 3)
//   * fine-grained random access costs ~1 cache-miss-equivalent
//     (~200 work cycles per value, Section 3.1)
//   * vector-granularity sweep: the RAM-CPU cache sweet spot
//   * analyzer cost is O(s log s) in the sample

#include <benchmark/benchmark.h>

#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "bitpack/bitpack.h"
#include "core/analyzer.h"
#include "core/kernels.h"
#include "core/segment.h"
#include "core/segment_builder.h"
#include "core/segment_reader.h"
#include "engine/vector.h"
#include "util/crc32c.h"
#include "util/rng.h"

namespace scc {
namespace {

// ---------------------------------------------------------------------------
// Bit packing
// ---------------------------------------------------------------------------

void BM_BitUnpack(benchmark::State& state) {
  const int b = int(state.range(0));
  const size_t n = 1u << 20;
  Rng rng(1);
  std::vector<uint32_t> codes(n);
  for (auto& c : codes) c = uint32_t(rng.Next()) & MaxCode(b);
  std::vector<uint32_t> packed(PackedByteSize(n, b) / 4 + 1);
  BitPack(codes.data(), n, b, packed.data());
  std::vector<uint32_t> out(n + 32);
  for (auto _ : state) {
    BitUnpack(packed.data(), n, b, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * int64_t(n) * 4);
}
BENCHMARK(BM_BitUnpack)->Arg(1)->Arg(4)->Arg(8)->Arg(12)->Arg(16)->Arg(24);

void BM_BitPack(benchmark::State& state) {
  const int b = int(state.range(0));
  const size_t n = 1u << 20;
  Rng rng(2);
  std::vector<uint32_t> codes(n);
  for (auto& c : codes) c = uint32_t(rng.Next()) & MaxCode(b);
  std::vector<uint32_t> packed(PackedByteSize(n, b) / 4 + 1);
  for (auto _ : state) {
    BitPack(codes.data(), n, b, packed.data());
    benchmark::DoNotOptimize(packed.data());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * int64_t(n) * 4);
}
BENCHMARK(BM_BitPack)->Arg(1)->Arg(8)->Arg(16);

// Decode-only vs unpack+decode: quantifies the paper's "<10% of cost"
// claim for bit-unpacking within full decompression.
void BM_UnpackPlusDecode(benchmark::State& state) {
  const int b = 8;
  const size_t n = 1u << 20;
  auto data = bench::ExceptionData<int64_t>(n, b, 0, 0.02, 3);
  auto seg = SegmentBuilder<int64_t>::BuildPFor(data, PForParams<int64_t>{b, 0});
  std::vector<int64_t> out(n);
  for (auto _ : state) {
    auto reader = SegmentReader<int64_t>::Open(seg.ValueOrDie().data(),
                                               seg.ValueOrDie().size());
    reader.ValueOrDie().DecompressAll(out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * int64_t(n) * 8);
}
BENCHMARK(BM_UnpackPlusDecode);

void BM_DecodeOnly(benchmark::State& state) {
  const int b = 8;
  const size_t n = 1u << 20;
  auto data = bench::ExceptionData<int64_t>(n, b, 0, 0.02, 3);
  std::vector<uint32_t> codes(n), miss(n);
  std::vector<int64_t> exc(n), out(n);
  size_t first = 0;
  size_t nexc = CompressPred(data.data(), n, b, int64_t(0), codes.data(),
                             exc.data(), &first, miss.data());
  ForCodec<int64_t> codec(int64_t(0));
  for (auto _ : state) {
    DecompressPatched(codes.data(), n, codec, exc.data(), first, nexc,
                      out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * int64_t(n) * 8);
}
BENCHMARK(BM_DecodeOnly);

// ---------------------------------------------------------------------------
// Fine-grained access
// ---------------------------------------------------------------------------

void BM_FineGrainedGet(benchmark::State& state) {
  const double rate = double(state.range(0)) / 100.0;
  const size_t n = 1u << 20;
  auto data = bench::ExceptionData<int32_t>(n, 8, 0, rate, 4);
  auto seg = SegmentBuilder<int32_t>::BuildPFor(data, PForParams<int32_t>{8, 0});
  auto reader = SegmentReader<int32_t>::Open(seg.ValueOrDie().data(),
                                             seg.ValueOrDie().size());
  const auto& r = reader.ValueOrDie();
  Rng rng(5);
  std::vector<uint32_t> positions(4096);
  for (auto& p : positions) p = uint32_t(rng.Uniform(n));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.Get(positions[i]));
    i = (i + 1) & 4095;
  }
  state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_FineGrainedGet)->Arg(0)->Arg(10)->Arg(30);

void BM_SequentialPerValue(benchmark::State& state) {
  const size_t n = 1u << 20;
  auto data = bench::ExceptionData<int32_t>(n, 8, 0, 0.1, 6);
  auto seg = SegmentBuilder<int32_t>::BuildPFor(data, PForParams<int32_t>{8, 0});
  auto reader = SegmentReader<int32_t>::Open(seg.ValueOrDie().data(),
                                             seg.ValueOrDie().size());
  std::vector<int32_t> out(n);
  for (auto _ : state) {
    reader.ValueOrDie().DecompressAll(out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n));
}
BENCHMARK(BM_SequentialPerValue);

// ---------------------------------------------------------------------------
// Vector granularity ablation (the RAM-CPU cache design point)
// ---------------------------------------------------------------------------

void BM_VectorGranularity(benchmark::State& state) {
  const size_t vec = size_t(state.range(0));
  const size_t n = 4u << 20;
  auto data = bench::ExceptionData<int32_t>(n, 8, 0, 0.05, 7);
  auto seg = SegmentBuilder<int32_t>::BuildPFor(data, PForParams<int32_t>{8, 0});
  auto reader = SegmentReader<int32_t>::Open(seg.ValueOrDie().data(),
                                             seg.ValueOrDie().size());
  const auto& r = reader.ValueOrDie();
  std::vector<int32_t> buf(vec);
  for (auto _ : state) {
    int64_t acc = 0;
    for (size_t pos = 0; pos < n; pos += vec) {
      r.DecompressRange(pos, std::min(vec, n - pos), buf.data());
      for (size_t i = 0; i < std::min(vec, n - pos); i++) acc += buf[i];
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * int64_t(n) * 4);
}
BENCHMARK(BM_VectorGranularity)
    ->Arg(128)
    ->Arg(1024)
    ->Arg(8192)
    ->Arg(65536)
    ->Arg(1 << 20);

// ---------------------------------------------------------------------------
// Analyzer
// ---------------------------------------------------------------------------

void BM_AnalyzeSample(benchmark::State& state) {
  const size_t s = size_t(state.range(0));
  auto data = bench::ExceptionData<int64_t>(s, 12, 1000, 0.05, 8);
  for (auto _ : state) {
    auto choice = Analyzer<int64_t>::Analyze(data);
    benchmark::DoNotOptimize(choice.est_bits_per_value);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(s));
}
BENCHMARK(BM_AnalyzeSample)->Arg(4096)->Arg(65536);

// ---------------------------------------------------------------------------
// Kernel ISA sweep: scalar vs SIMD backends side by side
// ---------------------------------------------------------------------------

/// One measured kernel variant: best-of-reps wall time plus a hardware
/// counter reading of a single run (ScopedPerfReading), so each row can
/// print IPC / cache-miss / branch-miss next to its bandwidth.
struct IsaMeasurement {
  double seconds = 0;
  PerfReading perf;
};

IsaMeasurement MeasureKernel(const std::function<void()>& fn) {
  IsaMeasurement m;
  m.seconds = bench::BestSeconds(5, fn);
  PerfCounters counters;
  if (counters.available()) {
    ScopedPerfReading scope(&counters, &m.perf);
    fn();
  }
  return m;
}

std::vector<KernelIsa> SupportedIsas() {
  std::vector<KernelIsa> isas;
  for (int i = 0; i < kNumKernelIsas; i++) {
    if (KernelIsaSupported(KernelIsa(i))) isas.push_back(KernelIsa(i));
  }
  return isas;
}

void PrintIsaRow(const char* name, KernelIsa isa, const IsaMeasurement& m,
                 double bytes, double n, double speedup, bool json) {
  if (json) {
    std::vector<std::pair<std::string, double>> extra;
    if (m.perf.IPC() >= 0) {
      extra.emplace_back("ipc", m.perf.IPC());
      extra.emplace_back("cache_miss_rate", m.perf.CacheMissRate());
      extra.emplace_back("branch_miss_rate", m.perf.BranchMissRate());
    }
    if (speedup > 0) extra.emplace_back("speedup_vs_scalar", speedup);
    bench::EmitJsonLine(std::string(name) + "/" + KernelIsaName(isa),
                        bytes / m.seconds, m.seconds * 1e9 / n, extra);
  } else {
    printf("  %-28s %-6s %8.2f GB/s  %6.2f ns/kval  ipc=%s miss=%s "
           "br=%s",
           name, KernelIsaName(isa), GBPerSec(bytes, m.seconds),
           m.seconds * 1e9 / (n / 1000.0), bench::FmtIpc(m.perf.IPC()).c_str(),
           bench::FmtRate(m.perf.CacheMissRate()).c_str(),
           bench::FmtRate(m.perf.BranchMissRate()).c_str());
    if (speedup > 0) printf("  %4.2fx", speedup);
    printf("\n");
  }
}

/// The tentpole measurement: every supported backend decoding the same
/// packed streams, per bit width, with the scalar column as the baseline.
/// Buffers are sized L1-resident (16 KB out) and each timed run loops the
/// kernel kInner times, so the sweep measures kernel throughput rather
/// than the cache-level store bandwidth a multi-MB working set hits.
/// Restores the startup-selected backend before returning.
void RunIsaSweep(bool json) {
  const KernelIsa original = ActiveKernelIsa();
  const auto isas = SupportedIsas();
  const size_t n = 4096;
  const size_t kInner = 2048;
  Rng rng(42);

  if (!json) {
    printf("\n=== Kernel ISA sweep (scalar vs SIMD) ===\n");
    printf("active backend at startup: %s\n\n", KernelIsaName(original));
  }

  // BitUnpack per bit width. Geometric-mean speedup over widths 1..16 is
  // the acceptance number for the SIMD backends.
  std::vector<double> simd_speedups_1_16;
  for (int b : {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 20,
                24, 28, 32}) {
    std::vector<uint32_t> codes(n);
    for (auto& c : codes) c = uint32_t(rng.Next()) & MaxCode(b);
    std::vector<uint32_t> packed(PackedByteSize(n, b) / 4 + 4);
    BitPack(codes.data(), n, b, packed.data());
    std::vector<uint32_t> out(n + 32);
    const double bytes = double(n) * 4 * double(kInner);
    char name[32];
    snprintf(name, sizeof(name), "BitUnpack/%d", b);
    double scalar_seconds = 0;
    for (KernelIsa isa : isas) {
      SetKernelIsa(isa);
      auto m = MeasureKernel([&] {
        for (size_t k = 0; k < kInner; k++) {
          BitUnpack(packed.data(), n, b, out.data());
        }
      });
      double speedup = 0;
      if (isa == KernelIsa::kScalar) {
        scalar_seconds = m.seconds;
      } else if (scalar_seconds > 0) {
        speedup = scalar_seconds / m.seconds;
        if (isa == original && b <= 16) simd_speedups_1_16.push_back(speedup);
      }
      PrintIsaRow(name, isa, m, bytes, double(n) * double(kInner), speedup,
                  json);
    }
  }

  // Fused unpack+FOR and the PFOR-DELTA prefix sum at one representative
  // width each — the two other decode-path kernels the dispatch serves.
  {
    const int b = 8;
    std::vector<uint32_t> codes(n);
    for (auto& c : codes) c = uint32_t(rng.Next()) & MaxCode(b);
    std::vector<uint32_t> packed(PackedByteSize(n, b) / 4 + 4);
    BitPack(codes.data(), n, b, packed.data());
    std::vector<uint32_t> out32(n);
    std::vector<uint64_t> out64(n);
    const double values = double(n) * double(kInner);
    for (KernelIsa isa : isas) {
      SetKernelIsa(isa);
      auto m = MeasureKernel([&] {
        for (size_t k = 0; k < kInner; k++) {
          BitUnpackFor32(packed.data(), n, b, 1000u, out32.data());
        }
      });
      PrintIsaRow("BitUnpackFor32/8", isa, m, values * 4, values, 0, json);
    }
    for (KernelIsa isa : isas) {
      SetKernelIsa(isa);
      auto m = MeasureKernel([&] {
        for (size_t k = 0; k < kInner; k++) {
          BitUnpackFor64(packed.data(), n, b, 1000u, out64.data());
        }
      });
      PrintIsaRow("BitUnpackFor64/8", isa, m, values * 8, values, 0, json);
    }
    for (KernelIsa isa : isas) {
      SetKernelIsa(isa);
      auto m = MeasureKernel([&] {
        for (size_t k = 0; k < kInner; k++) {
          std::memcpy(out32.data(), codes.data(), n * 4);
          PrefixSum32(out32.data(), n, 0);
        }
      });
      PrintIsaRow("PrefixSum32", isa, m, values * 4, values, 0, json);
    }
    for (KernelIsa isa : isas) {
      SetKernelIsa(isa);
      auto m = MeasureKernel([&] {
        for (size_t k = 0; k < kInner; k++) {
          for (size_t i = 0; i < n; i++) out64[i] = codes[i];
          PrefixSum64(out64.data(), n, 0);
        }
      });
      PrintIsaRow("PrefixSum64", isa, m, values * 8, values, 0, json);
    }
  }

  SetKernelIsa(original);
  const double geomean = bench::GeoMean(simd_speedups_1_16);
  if (json) {
    if (geomean > 0) {
      bench::EmitJsonLine(std::string("BitUnpackGeoMeanSpeedup/b1-16/") +
                              KernelIsaName(original),
                          0, 0, {{"speedup_vs_scalar", geomean}});
    }
  } else if (geomean > 0) {
    printf("\nBitUnpack geomean speedup (b=1..16, %s vs scalar): %.2fx\n\n",
           KernelIsaName(original), geomean);
  }
}

// ---------------------------------------------------------------------------
// Checksum cost: verified vs unverified decode of the same segment
// ---------------------------------------------------------------------------

/// The format-v2 acceptance number: opening a segment with CRC
/// verification on, then decoding it at the paper's 128-value vector
/// granularity, must cost < 5% of the unverified decode bandwidth. The
/// CRC pass is a single streaming sweep per segment open, amortized over
/// every vector decoded from it — this sweep makes that amortization
/// visible (plus a raw CRC32C bandwidth row for context).
void RunChecksumSweep(bool json) {
  const size_t n = 1u << 20;
  const size_t kGran = 128;  // the paper's vector granularity
  const int b = 8;
  auto data = bench::ExceptionData<int64_t>(n, b, 0, 0.01, 3);
  auto seg = SegmentBuilder<int64_t>::BuildPFor(data, PForParams<int64_t>{b, 0},
                                                {.with_checksums = true});
  SCC_CHECK(seg.ok(), "bench segment build failed");
  const AlignedBuffer& buf = seg.ValueOrDie();
  std::vector<int64_t> out(kGran);

  // Whole-segment decode at 128-value granularity, no verification.
  auto decode_pass = [&] {
    auto r = SegmentReader<int64_t>::Open(buf.data(), buf.size());
    SCC_CHECK(r.ok(), "bench segment open failed");
    for (size_t off = 0; off < n; off += kGran) {
      r.ValueOrDie().DecompressRange(off, kGran, out.data());
    }
    benchmark::DoNotOptimize(out.data());
  };

  // The verify-on cost is (verify once per open) + (decode). Timing the
  // two phases separately and summing is equivalent but far less noisy
  // than subtracting two whole-pass timings: the verify term is ~4% of
  // the decode term, well below this machine's run-to-run jitter.
  const double bytes = double(n) * sizeof(int64_t);
  const double off_s = bench::BestSeconds(9, decode_pass);
  const double ver_s = bench::BestSeconds(9, [&] {
    SCC_CHECK(VerifySegmentChecksums(buf.data(), buf.size()).ok(), "crc");
  });
  const double on_s = off_s + ver_s;
  const double crc_s = bench::BestSeconds(9, [&] {
    benchmark::DoNotOptimize(Crc32c(buf.data(), buf.size()));
  });
  const double overhead = off_s > 0 ? ver_s / off_s : 0.0;

  if (json) {
    bench::EmitJsonLine("ChecksumDecode/off", bytes / off_s,
                        off_s * 1e9 / double(n), {});
    bench::EmitJsonLine("ChecksumDecode/on", bytes / on_s,
                        on_s * 1e9 / double(n),
                        {{"overhead_vs_off", overhead}});
    bench::EmitJsonLine(std::string("Crc32c/") + Crc32cBackendName(),
                        double(buf.size()) / crc_s, 0, {});
    return;
  }
  printf("\n=== Checksum cost (PFOR b=%d, %zu values, 128-value vectors) "
         "===\n",
         b, n);
  printf("  %-28s %8.2f GB/s\n", "decode, verify off",
         GBPerSec(bytes, off_s));
  printf("  %-28s %8.2f GB/s  overhead=%.2f%%  [%s, budget 5%%]\n",
         "decode, verify on", GBPerSec(bytes, on_s), overhead * 100.0,
         overhead < 0.05 ? "PASS" : "WARN");
  printf("  %-28s %8.2f GB/s\n",
         (std::string("crc32c sweep (") + Crc32cBackendName() + ")").c_str(),
         GBPerSec(double(buf.size()), crc_s));
}

}  // namespace
}  // namespace scc

int main(int argc, char** argv) {
  const bool json = scc::bench::StripFlag(&argc, argv, "--json");
  scc::RunIsaSweep(json);
  scc::RunChecksumSweep(json);
  if (json) return 0;  // machine-readable mode: sweep only, no gbench text
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
