// Parallel decompression (the paper's Conclusions: multi-core CPUs make
// high-performance data delivery a memory-bandwidth problem; the
// super-scalar routines parallelize trivially across segments). This
// bench decompresses a fixed set of compressed chunks with 1..8 worker
// threads and reports aggregate bandwidth.
//
// NOTE: on a single-core machine (as in some CI containers) the curve is
// flat — run on multi-core hardware to see the scaling the paper
// anticipates.

#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/parallel.h"
#include "core/segment_builder.h"

namespace scc {
namespace {

constexpr size_t kChunkValues = 1u << 20;
constexpr size_t kChunks = 24;
constexpr int kB = 8;

}  // namespace

int Main() {
  bench::PrintHeader("Parallel segment decompression",
                     "Conclusions / future work");
  printf("hardware threads available: %u\n\n",
         std::thread::hardware_concurrency());

  std::vector<AlignedBuffer> segments;
  size_t total = 0;
  for (size_t c = 0; c < kChunks; c++) {
    auto data =
        bench::ExceptionData<int64_t>(kChunkValues, kB, 0, 0.05, c + 1);
    auto seg =
        SegmentBuilder<int64_t>::BuildPFor(data, PForParams<int64_t>{kB, 0});
    SCC_CHECK(seg.ok(), "build");
    segments.push_back(seg.MoveValueOrDie());
    total += kChunkValues;
  }
  std::vector<int64_t> out(total);
  const double bytes = double(total) * sizeof(int64_t);

  printf("threads | aggregate GB/s\n");
  printf("--------+---------------\n");
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    double secs = bench::BestSeconds(3, [&] {
      auto r = ParallelDecompress<int64_t>(segments, out.data(), out.size(),
                                           threads);
      SCC_CHECK(r.ok(), "decompress");
    });
    printf("  %2u    | %10.2f\n", threads, GBPerSec(bytes, secs));
  }
  printf("\nPaper reference: decompression bandwidth scales with cores "
         "until it\nsaturates memory bandwidth — segments (and their "
         "128-value groups) are\nindependent decode units.\n");
  return 0;
}

}  // namespace scc

int main() { return scc::Main(); }
