// Figure 2 reproduction: compression ratio, compression speed and
// decompression speed of general-purpose codecs versus the super-scalar
// schemes, on four TPC-H lineitem columns (L_ORDERKEY, L_LINENUMBER,
// L_COMMITDATE, L_EXTENDEDPRICE).
//
// Codecs: real zlib when the system provides it (the paper's exact
// baseline), plus our from-scratch LZSS+Huffman ("heavy" class, stands in
// for bzip2), LZRW1 ("fast LZ" class, as used by Sybase IQ; also the
// lzop class), and a bytewise semi-static Huffman coder for the
// entropy-only point (see DESIGN.md substitutions).
// "PFOR" is the segment pipeline with the analyzer's per-column scheme
// (PFOR / PFOR-DELTA / PDICT), as in the paper.
//
// Expected shape: generic codecs decompress at 0.1-0.5 GB/s; the
// super-scalar schemes compress >1 GB/s and decompress several GB/s — an
// order of magnitude faster at comparable (or better) ratios on these
// integer columns.

#include <cstdio>
#include <cstring>
#include <vector>

#include "baselines/huffman.h"
#include "baselines/lzrw1.h"
#include "baselines/lzss_huffman.h"
#include "bench/bench_util.h"
#include "core/analyzer.h"
#include "core/segment_builder.h"
#include "core/segment_reader.h"
#include "tpch/dbgen.h"

#ifdef SCC_HAVE_ZLIB
#include <zlib.h>
#endif

namespace scc {
namespace {

constexpr int kReps = 3;

struct Row {
  const char* codec;
  double ratio;
  double comp_mb_s;
  double dec_mb_s;
};

template <typename T>
std::vector<Row> BenchColumn(const std::vector<T>& column) {
  std::vector<Row> rows;
  const uint8_t* raw = reinterpret_cast<const uint8_t*>(column.data());
  const size_t raw_bytes = column.size() * sizeof(T);

#ifdef SCC_HAVE_ZLIB
  {  // real zlib (the paper's exact baseline), default level
    uLongf cap = compressBound(uLong(raw_bytes));
    std::vector<uint8_t> comp(cap);
    uLongf csize = cap;
    double cs = bench::BestSeconds(kReps, [&] {
      csize = cap;
      SCC_CHECK(compress2(comp.data(), &csize, raw, uLong(raw_bytes), 6) ==
                    Z_OK,
                "zlib compress");
    });
    std::vector<uint8_t> out(raw_bytes);
    double ds = bench::BestSeconds(kReps, [&] {
      uLongf dsize = uLongf(raw_bytes);
      SCC_CHECK(uncompress(out.data(), &dsize, comp.data(), csize) == Z_OK,
                "zlib uncompress");
    });
    rows.push_back(Row{"zlib", double(raw_bytes) / csize,
                       MBPerSec(raw_bytes, cs), MBPerSec(raw_bytes, ds)});
  }
#endif
  {  // LZSS + Huffman (heavy general-purpose class)
    std::vector<uint8_t> comp;
    double cs = bench::BestSeconds(
        1, [&] { comp = LzssHuffman::Compress(raw, raw_bytes); });
    std::vector<uint8_t> out;
    double ds = bench::BestSeconds(kReps, [&] {
      SCC_CHECK(LzssHuffman::Decompress(comp.data(), comp.size(), &out).ok(),
                "lzh");
    });
    rows.push_back(Row{"lzss-huff", double(raw_bytes) / comp.size(),
                       MBPerSec(raw_bytes, cs), MBPerSec(raw_bytes, ds)});
  }
  {  // bytewise Huffman (entropy-only)
    std::vector<uint8_t> comp;
    double cs = bench::BestSeconds(
        kReps, [&] { comp = HuffmanCompressBytes(raw, raw_bytes); });
    std::vector<uint8_t> out;
    double ds = bench::BestSeconds(kReps, [&] {
      SCC_CHECK(HuffmanDecompressBytes(comp.data(), comp.size(), &out).ok(),
                "huff");
    });
    rows.push_back(Row{"huffman", double(raw_bytes) / comp.size(),
                       MBPerSec(raw_bytes, cs), MBPerSec(raw_bytes, ds)});
  }
  {  // LZRW1 (fast LZ, Sybase IQ class)
    std::vector<uint8_t> comp(Lzrw1::MaxCompressedSize(raw_bytes));
    size_t csize = 0;
    double cs = bench::BestSeconds(
        kReps, [&] { csize = Lzrw1::Compress(raw, raw_bytes, comp.data()); });
    std::vector<uint8_t> out(raw_bytes);
    double ds = bench::BestSeconds(kReps, [&] {
      SCC_CHECK(Lzrw1::Decompress(comp.data(), csize, out.data(), raw_bytes)
                    .ok(),
                "lzrw1");
    });
    rows.push_back(Row{"lzrw1", double(raw_bytes) / csize,
                       MBPerSec(raw_bytes, cs), MBPerSec(raw_bytes, ds)});
  }
  {  // super-scalar segments, analyzer-chosen scheme
    std::span<const T> span(column);
    CompressionChoice<T> choice = Analyzer<T>::Analyze(
        span.subspan(0, std::min(span.size(), size_t(64) * 1024)));
    AlignedBuffer seg;
    double cs = bench::BestSeconds(kReps, [&] {
      auto r = SegmentBuilder<T>::Build(span, choice);
      SCC_CHECK(r.ok(), "segment");
      seg = r.MoveValueOrDie();
    });
    std::vector<T> out(column.size());
    double ds = bench::BestSeconds(kReps, [&] {
      auto reader = SegmentReader<T>::Open(seg.data(), seg.size());
      reader.ValueOrDie().DecompressAll(out.data());
    });
    static char label[64];
    snprintf(label, sizeof(label), "%s", SchemeName(choice.scheme));
    rows.push_back(Row{label, double(raw_bytes) / seg.size(),
                       MBPerSec(raw_bytes, cs), MBPerSec(raw_bytes, ds)});
  }
  return rows;
}

void PrintColumn(const char* name, const std::vector<Row>& rows) {
  printf("%s\n", name);
  printf("  %-12s %8s %12s %12s\n", "codec", "ratio", "comp MB/s",
         "dec MB/s");
  for (const auto& r : rows) {
    printf("  %-12s %8.2f %12.0f %12.0f\n", r.codec, r.ratio, r.comp_mb_s,
           r.dec_mb_s);
  }
  printf("\n");
}

}  // namespace

int Main() {
  bench::PrintHeader("Codec comparison on TPC-H columns", "Figure 2");
  TpchData data = GenerateTpch(0.02);
  printf("lineitem rows: %zu\n\n", data.lineitem.rows());

  PrintColumn("L_ORDERKEY (int64, clustered)",
              BenchColumn(data.lineitem.orderkey));
  PrintColumn("L_LINENUMBER (int8, 1..7)",
              BenchColumn(data.lineitem.linenumber));
  PrintColumn("L_COMMITDATE (int32, date domain)",
              BenchColumn(data.lineitem.commitdate));
  PrintColumn("L_EXTENDEDPRICE (int64, cents)",
              BenchColumn(data.lineitem.extendedprice));

  printf("Paper reference (Fig. 2): generic codecs decompress at "
         "~0.2-0.5 GB/s and\ncompress far slower; PFOR-class schemes reach "
         "multi-GB/s decompression and\n>1 GB/s compression — roughly an "
         "order of magnitude faster. L_ORDERKEY\ncompresses best (42.8x in "
         "the paper via delta), L_EXTENDEDPRICE worst (~2.4x).\n");
  return 0;
}

}  // namespace scc

int main() { return scc::Main(); }
