// tail_latency — workload-level latency distribution harness. Where the
// fig*/table* benches reproduce the paper's throughput numbers, this one
// measures what a scan *service* built on the library would quote in an
// SLO: per-operation latency quantiles under concurrent clients, for
//
//   read_only    100% point reads — fine-grained access decodes exactly
//                one 128-value group (Section 5.2) behind the buffer
//                manager, so a hit is a few µs and a miss pays the
//                (virtual-time) disk fetch
//   mixed_80_20  80% point reads / 20% chunk scans — the scans evict and
//                recompress the working set under the readers, which is
//                what drags the read tail out
//
// The table is synthetic (same column shapes as scc_load: sequential id,
// zipf-skewed code, price with 1% outliers, timestamp), loaded through
// the morsel-parallel bulk loader, and sized ~4x the buffer-manager
// capacity so misses and evictions are part of steady state. Row choice
// is zipf-skewed: the hot set mostly hits, the cold tail mostly misses.
//
// Quantiles are computed two ways and both reported: exactly, from the
// sorted per-op latency vector, and interpolated, from the log2-bucket
// telemetry histogram (bench.tail.op_ns) — so the bench continuously
// cross-checks the estimator the service would rely on against ground
// truth (tests/telemetry_test.cc pins the bound; here it is printed).
//
//   tail_latency [--rows N] [--ops N] [--threads N] [--seed S]
//                [--json PATH] [--trace PATH]
//
// --json writes the BenchReport format tools/scc_bench_diff consumes
// (flat "metrics" map); the checked-in BENCH_PR6.json baseline was
// recorded with the defaults. --trace wraps each mix in a TraceOperation
// and dumps the chrome trace. Defaults are CI-smoke sized (< 1 s).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/segment_reader.h"
#include "exec/thread_pool.h"
#include "storage/buffer_manager.h"
#include "storage/bulk_load.h"
#include "storage/sim_disk.h"
#include "sys/telemetry.h"
#include "sys/timer.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace scc {
namespace {

struct MixResult {
  std::string name;
  std::vector<uint64_t> latencies_ns;  // merged across clients, sorted
  double wall_seconds = 0;

  uint64_t Exact(double q) const {
    if (latencies_ns.empty()) return 0;
    double r = q * double(latencies_ns.size() - 1);
    return latencies_ns[size_t(r + 0.5)];
  }
  double OpsPerSec() const {
    return wall_seconds > 0 ? double(latencies_ns.size()) / wall_seconds : 0;
  }
};

struct Workload {
  Table table{size_t(1) << 14};
  SimDisk disk{SimDisk::MidRangeRaid()};
  std::unique_ptr<BufferManager> bm;
  std::vector<const StoredColumn*> cols;
};

void BuildTable(Workload* w, size_t rows, uint64_t seed) {
  Rng rng(seed);
  ZipfGenerator zipf(1000, 1.1, seed + 1);
  std::vector<int64_t> id(rows), code(rows), price(rows), ts(rows);
  int64_t t = 1700000000;
  for (size_t i = 0; i < rows; i++) {
    id[i] = int64_t(i);
    code[i] = int64_t(zipf.Next());
    price[i] = int64_t(100 + rng.Uniform(900));
    if (rng.Bernoulli(0.01)) price[i] = int64_t(rng.Uniform(1u << 30));
    t += int64_t(rng.Uniform(30));
    ts[i] = t;
  }
  for (const auto& [name, vec] :
       {std::pair<const char*, std::vector<int64_t>*>{"id", &id},
        {"code", &code},
        {"price", &price},
        {"ts", &ts}}) {
    Status st = BulkLoadColumn<int64_t>(&w->table, name, *vec);
    SCC_CHECK(st.ok(), st.ToString().c_str());
  }
  // Working set ~4x capacity: steady-state misses and eviction churn are
  // the point, not an artifact.
  w->bm = std::make_unique<BufferManager>(&w->disk,
                                          w->table.ByteSize() / 4 + 1,
                                          Layout::kDSM);
  for (size_t c = 0; c < w->table.column_count(); c++) {
    w->cols.push_back(w->table.column(c));
  }
}

/// One point read: pin the chunk's page and decode exactly the 128-value
/// group holding `row` (SegmentReader::Get — the paper's fine-grained
/// access path). Returns the value to keep the work observable.
uint64_t PointRead(Workload* w, const StoredColumn* col, size_t row) {
  const size_t chunk = row / w->table.chunk_values();
  Result<BufferManager::PageGuard> g =
      w->bm->FetchPinned(&w->table, col, chunk);
  SCC_CHECK(g.ok(), g.status().ToString().c_str());
  BufferManager::PageGuard guard = g.MoveValueOrDie();
  auto reader = SegmentReader<int64_t>::Open(guard->data(), guard->size());
  SCC_CHECK(reader.ok(), "tail_latency: segment failed validation");
  return uint64_t(
      reader.ValueOrDie().Get(row % w->table.chunk_values()));
}

/// One scan op: decompress a whole random chunk of one column (the unit
/// of work a morsel worker performs), thrashing the cache the point
/// reads depend on.
uint64_t ScanChunk(Workload* w, const StoredColumn* col, size_t chunk,
                   std::vector<int64_t>* scratch) {
  Result<BufferManager::PageGuard> g =
      w->bm->FetchPinned(&w->table, col, chunk);
  SCC_CHECK(g.ok(), g.status().ToString().c_str());
  BufferManager::PageGuard guard = g.MoveValueOrDie();
  auto reader = SegmentReader<int64_t>::Open(guard->data(), guard->size());
  SCC_CHECK(reader.ok(), "tail_latency: segment failed validation");
  const SegmentReader<int64_t>& r = reader.ValueOrDie();
  scratch->resize(r.count());
  r.DecompressAll(scratch->data());
  return uint64_t(r.count());
}

/// Runs one mix with `threads` concurrent clients on the shared pool
/// (ops split evenly; each client keeps a local latency vector, merged
/// and sorted afterwards so the measurement itself never contends).
MixResult RunMix(Workload* w, const std::string& name, size_t ops,
                 unsigned threads, int scan_pct, uint64_t seed,
                 Histogram* hist) {
  MixResult result;
  result.name = name;
  // Per-operation attribution: everything below — including work stolen
  // by other pool threads — exports under this mix's trace tree.
  TraceOperation op("bench.tail_latency." + name);

  const size_t rows = w->table.rows();
  const size_t chunks = w->table.chunk_count();
  std::vector<std::vector<uint64_t>> per_client(threads);
  const size_t per = (ops + threads - 1) / threads;

  Timer wall;
  ThreadPool::Instance().ParallelFor(
      threads,
      [&](size_t client) {
        Rng rng(seed + 7919 * client);
        // Zipf over rows: a hot head that hits cache and a long cold
        // tail that faults — the shape that produces a real p99/p50 gap.
        ZipfGenerator row_pick(rows, 0.9, seed + 13 * client);
        std::vector<uint64_t>& lat = per_client[client];
        lat.reserve(per);
        std::vector<int64_t> scratch;
        uint64_t sink = 0;
        for (size_t i = 0; i < per; i++) {
          const StoredColumn* col = w->cols[rng.Uniform(w->cols.size())];
          const bool scan = int(rng.Uniform(100)) < scan_pct;
          Timer t;
          if (scan) {
            sink += ScanChunk(w, col, rng.Uniform(chunks), &scratch);
          } else {
            sink += PointRead(w, col, row_pick.Next());
          }
          const uint64_t ns = uint64_t(t.ElapsedNanos());
          lat.push_back(ns);
          hist->Observe(ns);
        }
        if (sink == 0xdeadbeef) printf("%llu\n", (unsigned long long)sink);
      },
      threads > 0 ? threads - 1 : 0);
  result.wall_seconds = wall.ElapsedSeconds();

  for (auto& v : per_client) {
    result.latencies_ns.insert(result.latencies_ns.end(), v.begin(), v.end());
  }
  std::sort(result.latencies_ns.begin(), result.latencies_ns.end());
  return result;
}

int Run(int argc, char** argv) {
  size_t rows = size_t(1) << 17;  // 128K rows x 4 cols: CI-smoke sized
  size_t ops = 4000;              // per mix, split across clients
  unsigned threads = 4;
  uint64_t seed = 2026;
  const char* json_path = nullptr;
  const char* trace_path = nullptr;
  for (int i = 1; i < argc; i++) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(argv[i], "--rows") == 0) {
      if (const char* v = next()) rows = size_t(std::atoll(v));
    } else if (std::strcmp(argv[i], "--ops") == 0) {
      if (const char* v = next()) ops = size_t(std::atoll(v));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      if (const char* v = next()) threads = unsigned(std::atoi(v));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      if (const char* v = next()) seed = uint64_t(std::atoll(v));
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = next();
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace_path = next();
    } else {
      fprintf(stderr,
              "usage: %s [--rows N] [--ops N] [--threads N] [--seed S] "
              "[--json PATH] [--trace PATH]\n",
              argv[0]);
      return 2;
    }
  }
  if (threads == 0) threads = 1;

  SetTelemetryEnabled(true);
  if (trace_path != nullptr) SetTraceEnabled(true);

  bench::PrintHeader("Tail latency under concurrent point-read/scan mixes",
                     "the workload-observability harness; Section 5.2 "
                     "fine-grained access");

  Workload w;
  BuildTable(&w, rows, seed);
  printf("table: %zu rows x %zu cols, %.2f MB stored, bm capacity %.2f MB, "
         "%u clients, %zu ops/mix\n\n",
         w.table.rows(), w.table.column_count(),
         w.table.ByteSize() / 1048576.0,
         (w.table.ByteSize() / 4 + 1) / 1048576.0, threads, ops);

  struct Mix {
    const char* name;
    int scan_pct;
  };
  const Mix mixes[] = {{"read_only", 0}, {"mixed_80_20", 20}};

  std::string metrics_json;
  char buf[256];
  printf("%-12s %10s %10s %10s %10s %10s %12s\n", "mix", "p50(us)",
         "p95(us)", "p99(us)", "p999(us)", "max(us)", "ops/s");
  for (const Mix& mix : mixes) {
    Histogram& hist = MetricsRegistry::Instance().GetHistogram(
        std::string("bench.tail.") + mix.name + ".op_ns");
    hist.Reset();
    // Warm nothing: cold cache is part of the distribution for the first
    // ops; steady-state dominates at default op counts.
    MixResult r = RunMix(&w, mix.name, ops, threads, mix.scan_pct, seed,
                         &hist);
    printf("%-12s %10.1f %10.1f %10.1f %10.1f %10.1f %12.0f\n",
           mix.name, r.Exact(0.50) / 1e3, r.Exact(0.95) / 1e3,
           r.Exact(0.99) / 1e3, r.Exact(0.999) / 1e3,
           r.latencies_ns.empty() ? 0.0 : r.latencies_ns.back() / 1e3,
           r.OpsPerSec());
    // Estimator cross-check: interpolated quantiles from the log2
    // histogram vs the exact ones (log-scale bound, so report the ratio).
    HistogramSnapshot hs = hist.SnapshotNow();
    printf("%-12s   histogram-interpolated: p50 %.1f p99 %.1f p999 %.1f "
           "(x%.2f / x%.2f / x%.2f of exact)\n",
           "", hs.Quantile(0.5) / 1e3, hs.Quantile(0.99) / 1e3,
           hs.Quantile(0.999) / 1e3,
           r.Exact(0.5) ? hs.Quantile(0.5) / double(r.Exact(0.5)) : 0.0,
           r.Exact(0.99) ? hs.Quantile(0.99) / double(r.Exact(0.99)) : 0.0,
           r.Exact(0.999) ? hs.Quantile(0.999) / double(r.Exact(0.999))
                          : 0.0);
    for (const auto& [q, label] :
         {std::pair<double, const char*>{0.50, "p50_ns"},
          {0.95, "p95_ns"},
          {0.99, "p99_ns"},
          {0.999, "p999_ns"}}) {
      snprintf(buf, sizeof(buf), "\"%s.%s\":%llu,", mix.name, label,
               (unsigned long long)r.Exact(q));
      metrics_json += buf;
    }
    snprintf(buf, sizeof(buf), "\"%s.ops_per_sec\":%.1f,", mix.name,
             r.OpsPerSec());
    metrics_json += buf;
  }
  printf("\nbm: %zu hits, %zu misses, %zu evictions, %zu coalesced\n",
         w.bm->hits(), w.bm->misses(), w.bm->evictions(),
         w.bm->coalesced_misses());

  if (json_path != nullptr) {
    if (!metrics_json.empty()) metrics_json.pop_back();  // trailing comma
    FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      fprintf(stderr, "error: cannot write %s\n", json_path);
      return 1;
    }
    fprintf(f,
            "{\"bench\":\"tail_latency\",\"config\":{\"rows\":%zu,"
            "\"ops\":%zu,\"threads\":%u,\"seed\":%llu},\"metrics\":{%s}}\n",
            rows, ops, threads, (unsigned long long)seed,
            metrics_json.c_str());
    std::fclose(f);
    printf("wrote %s\n", json_path);
  }
  if (trace_path != nullptr) {
    TraceRecorder& tr = TraceRecorder::Instance();
    if (!tr.WriteChromeTrace(trace_path)) {
      fprintf(stderr, "error: cannot write trace to %s\n", trace_path);
      return 1;
    }
    printf("wrote %zu trace events to %s\n", tr.event_count(), trace_path);
  }
  return 0;
}

}  // namespace
}  // namespace scc

int main(int argc, char** argv) { return scc::Run(argc, argv); }
