// Telemetry overhead check: PFOR decompression throughput with metrics
// enabled vs disabled (runtime flag off) vs a ScopedPerfReading-bracketed
// run. The instrumentation contract (docs/OBSERVABILITY.md) is one
// sharded relaxed add per *vector* in DecompressRange, so the enabled
// cost must stay within the noise floor — the acceptance bar is <= 2%
// throughput loss enabled and no measurable loss disabled.
//
// Build with -DSCC_TELEMETRY=0 to verify the compile-time kill switch:
// this bench then reports identical enabled/disabled numbers because
// every call site folds away.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/segment_builder.h"
#include "core/segment_reader.h"
#include "sys/telemetry.h"

namespace scc {
namespace {

constexpr size_t kValues = 1u << 22;  // 4M int32 codes
constexpr int kReps = 7;

double DecompressThroughput(const AlignedBuffer& seg,
                            std::vector<int32_t>* out) {
  auto reader = SegmentReader<int32_t>::Open(seg.data(), seg.size());
  SCC_CHECK(reader.ok(), "bench segment");
  const auto& r = reader.ValueOrDie();
  double secs = bench::BestSeconds(kReps, [&] {
    // Vector-at-a-time, as the scan does: the per-call metric add is
    // amortized over kVectorSize values.
    for (size_t pos = 0; pos < r.count(); pos += 1024) {
      size_t n = std::min(size_t(1024), r.count() - pos);
      r.DecompressRange(pos, n, out->data() + pos);
    }
  });
  return double(kValues) * sizeof(int32_t) / secs / 1e9;  // GB/s
}

int Main() {
  bench::PrintHeader("telemetry overhead on PFOR decompression",
                     "the <=2% overhead budget in docs/OBSERVABILITY.md");
  std::vector<int32_t> data =
      bench::ExceptionData<int32_t>(kValues, 8, 1000, 0.01, 42);
  auto seg = SegmentBuilder<int32_t>::BuildPFor(
      data, PForParams<int32_t>{8, 1000});
  SCC_CHECK(seg.ok(), "build");
  std::vector<int32_t> out(kValues);

  // Warm up once so page faults and the analyzer don't skew run 1.
  SetTelemetryEnabled(false);
  DecompressThroughput(seg.ValueOrDie(), &out);

  SetTelemetryEnabled(false);
  double off = DecompressThroughput(seg.ValueOrDie(), &out);
  SetTelemetryEnabled(true);
  double on = DecompressThroughput(seg.ValueOrDie(), &out);

  // A perf-counter-bracketed enabled run, exercising ScopedPerfReading.
  PerfCounters counters;
  PerfReading reading;
  {
    ScopedPerfReading scope(&counters, &reading);
    for (size_t pos = 0; pos < kValues; pos += 1024) {
      size_t n = std::min(size_t(1024), kValues - pos);
      SegmentReader<int32_t>::Open(seg.ValueOrDie().data(),
                                   seg.ValueOrDie().size())
          .ValueOrDie()
          .DecompressRange(pos, n, out.data() + pos);
    }
  }
  SetTelemetryEnabled(false);

  double overhead_pct = off > 0 ? 100.0 * (off - on) / off : 0.0;
  printf("telemetry off: %6.2f GB/s\n", off);
  printf("telemetry on:  %6.2f GB/s\n", on);
  printf("overhead:      %+6.2f%% (budget: <= 2%%)\n", overhead_pct);
  printf("perf counters: %s\n", reading.ToString().c_str());
  if (overhead_pct > 2.0) {
    printf("WARNING: overhead above the 2%% budget\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace scc

int main() { return scc::Main(); }
