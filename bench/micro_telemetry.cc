// Telemetry overhead check: PFOR decompression throughput with metrics
// enabled vs disabled (runtime flag off) vs a ScopedPerfReading-bracketed
// run. The instrumentation contract (docs/OBSERVABILITY.md) is one
// sharded relaxed add per *vector* in DecompressRange, so the enabled
// cost must stay within the noise floor — the acceptance bar is <= 2%
// throughput loss enabled and no measurable loss disabled.
//
// Build with -DSCC_TELEMETRY=0 to verify the compile-time kill switch:
// this bench then reports identical enabled/disabled numbers because
// every call site folds away.
//
// A second leg runs the same decode as coarse tasks through the shared
// ThreadPool, measuring what Submit/Execute instrumentation (enqueue
// timestamps, queue-wait/run histograms, trace-context capture) adds per
// task. Same <= 2% budget for metrics-on; the tracing-on number is
// informational (tracing is an opt-in debugging mode, not an
// always-on production path).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/segment_builder.h"
#include "core/segment_reader.h"
#include "exec/thread_pool.h"
#include "sys/telemetry.h"

namespace scc {
namespace {

constexpr size_t kValues = 1u << 22;  // 4M int32 codes
constexpr int kReps = 7;

double DecompressThroughput(const AlignedBuffer& seg,
                            std::vector<int32_t>* out) {
  auto reader = SegmentReader<int32_t>::Open(seg.data(), seg.size());
  SCC_CHECK(reader.ok(), "bench segment");
  const auto& r = reader.ValueOrDie();
  double secs = bench::BestSeconds(kReps, [&] {
    // Vector-at-a-time, as the scan does: the per-call metric add is
    // amortized over kVectorSize values.
    for (size_t pos = 0; pos < r.count(); pos += 1024) {
      size_t n = std::min(size_t(1024), r.count() - pos);
      r.DecompressRange(pos, n, out->data() + pos);
    }
  });
  return double(kValues) * sizeof(int32_t) / secs / 1e9;  // GB/s
}

/// Same decode, but fanned out as ~32 coarse pool tasks (128K values
/// each) the way the morsel scan does it. The delta vs the off run is
/// the per-task cost of the pool's observability hooks, span
/// propagation included.
double PoolThroughput(const AlignedBuffer& seg, std::vector<int32_t>* out) {
  ThreadPool& pool = ThreadPool::Instance();
  auto reader = SegmentReader<int32_t>::Open(seg.data(), seg.size());
  SCC_CHECK(reader.ok(), "bench segment");
  const auto& r = reader.ValueOrDie();
  constexpr size_t kPerTask = 1u << 17;
  double secs = bench::BestSeconds(kReps, [&] {
    pool.ParallelFor(kValues / kPerTask, [&](size_t task) {
      const size_t base = task * kPerTask;
      for (size_t pos = base; pos < base + kPerTask; pos += 1024) {
        r.DecompressRange(pos, 1024, out->data() + pos);
      }
    });
  });
  return double(kValues) * sizeof(int32_t) / secs / 1e9;  // GB/s
}

int Main() {
  bench::PrintHeader("telemetry overhead on PFOR decompression",
                     "the <=2% overhead budget in docs/OBSERVABILITY.md");
  std::vector<int32_t> data =
      bench::ExceptionData<int32_t>(kValues, 8, 1000, 0.01, 42);
  auto seg = SegmentBuilder<int32_t>::BuildPFor(
      data, PForParams<int32_t>{8, 1000});
  SCC_CHECK(seg.ok(), "build");
  std::vector<int32_t> out(kValues);

  // Warm up once so page faults and the analyzer don't skew run 1.
  SetTelemetryEnabled(false);
  DecompressThroughput(seg.ValueOrDie(), &out);

  // Noise strategy: measure off/on in adjacent pairs and gate on the
  // MINIMUM overhead across pairs. Real instrumentation cost is
  // systematic — it shows up in every pair — while a scheduler burp on a
  // shared CI runner poisons one pair, not all of them.
  constexpr int kPairs = 5;
  double off = 0, on = 0, overhead_pct = 1e9;
  for (int p = 0; p < kPairs; p++) {
    SetTelemetryEnabled(false);
    double o = DecompressThroughput(seg.ValueOrDie(), &out);
    SetTelemetryEnabled(true);
    double e = DecompressThroughput(seg.ValueOrDie(), &out);
    double pct = o > 0 ? 100.0 * (o - e) / o : 0.0;
    if (pct < overhead_pct) {
      overhead_pct = pct;
      off = o;
      on = e;
    }
  }

  // A perf-counter-bracketed enabled run, exercising ScopedPerfReading.
  PerfCounters counters;
  PerfReading reading;
  {
    ScopedPerfReading scope(&counters, &reading);
    for (size_t pos = 0; pos < kValues; pos += 1024) {
      size_t n = std::min(size_t(1024), kValues - pos);
      SegmentReader<int32_t>::Open(seg.ValueOrDie().data(),
                                   seg.ValueOrDie().size())
          .ValueOrDie()
          .DecompressRange(pos, n, out.data() + pos);
    }
  }
  SetTelemetryEnabled(false);

  printf("telemetry off: %6.2f GB/s\n", off);
  printf("telemetry on:  %6.2f GB/s\n", on);
  printf("overhead:      %+6.2f%% (best of %d pairs, budget: <= 2%%)\n",
         overhead_pct, kPairs);
  printf("perf counters: %s\n", reading.ToString().c_str());

  // Pool leg: span propagation + queue-wait/run accounting per task.
  // Same paired-minimum scheme; the traced run additionally captures a
  // TraceContext per Submit and two span records per Execute.
  SetTelemetryEnabled(false);
  PoolThroughput(seg.ValueOrDie(), &out);  // warm the pool + pages
  double pool_off = 0, pool_on = 0, pool_traced = 0;
  double pool_pct = 1e9, traced_pct = 1e9;
  for (int p = 0; p < kPairs; p++) {
    SetTelemetryEnabled(false);
    double o = PoolThroughput(seg.ValueOrDie(), &out);
    SetTelemetryEnabled(true);
    double e = PoolThroughput(seg.ValueOrDie(), &out);
    SetTraceEnabled(true);
    double t = PoolThroughput(seg.ValueOrDie(), &out);
    SetTraceEnabled(false);
    double pct = o > 0 ? 100.0 * (o - e) / o : 0.0;
    if (pct < pool_pct) {
      pool_pct = pct;
      pool_off = o;
      pool_on = e;
    }
    double tpct = o > 0 ? 100.0 * (o - t) / o : 0.0;
    if (tpct < traced_pct) {
      traced_pct = tpct;
      pool_traced = t;
    }
  }
  SetTelemetryEnabled(false);
  printf("\npool tasks off:    %6.2f GB/s\n", pool_off);
  printf("pool tasks on:     %6.2f GB/s\n", pool_on);
  printf("pool tasks traced: %6.2f GB/s (informational)\n", pool_traced);
  printf("pool overhead:     %+6.2f%% (best of %d pairs, budget: <= 2%%, "
         "margin %.2f points)\n",
         pool_pct, kPairs, 2.0 - pool_pct);
  printf("traced overhead:   %+6.2f%% (no budget: opt-in mode)\n",
         traced_pct);

  bool over = false;
  if (overhead_pct > 2.0) {
    printf("WARNING: decode overhead above the 2%% budget\n");
    over = true;
  }
  if (pool_pct > 2.0) {
    printf("WARNING: pool-task overhead above the 2%% budget\n");
    over = true;
  }
  return over ? 1 : 0;
}

}  // namespace
}  // namespace scc

int main() { return scc::Main(); }
