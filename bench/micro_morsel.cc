// Morsel-driven parallel scan scaling curve: decode+scan throughput on
// cache-cold compressed data at 1..N threads (the ISSUE-4 acceptance
// bench: >= 3x at 8 threads vs 1 on a machine with >= 8 cores).
//
// Each measured run clears the buffer pool first, so every chunk takes
// the full miss path — page fault, simulated disk charge, segment
// validation — then decodes vector-at-a-time on whichever worker claimed
// the morsel, exactly the shape of a cold TPC-H scan. The visitor keeps a
// running sum so the decode cannot be optimized away, and the sum is
// cross-checked across thread counts (a wrong parallel result fails
// loudly, not quietly).
//
// Caveat: wall-clock scaling requires physical cores. On a single-core
// host (some CI shards, small containers) the curve is flat — the pool
// still exercises the full concurrent path (steals, coalesced misses,
// pinning), there is just no parallel hardware to spend it on. The
// `threads` and `workers` fields in the JSON make such runs
// self-describing.
//
// Usage: micro_morsel [--json] [--ordered] [max_threads]

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "exec/parallel_scan.h"
#include "exec/thread_pool.h"
#include "storage/table.h"
#include "util/rng.h"

namespace scc {
namespace {

constexpr size_t kChunkValues = 1u << 17;
constexpr size_t kRows = size_t(24) * kChunkValues;  // 24 morsels, ~3M rows

Table BuildTable() {
  Table t(kChunkValues);
  Rng rng(42);
  // Three columns with the paper's bread-and-butter distributions:
  // narrow codes with outliers (PFOR), a sorted-ish date-like column
  // (PFOR-DELTA territory), and a low-cardinality flag column.
  std::vector<int64_t> price(kRows);
  std::vector<int32_t> date(kRows);
  std::vector<int8_t> flag(kRows);
  int32_t day = 8000;
  for (size_t i = 0; i < kRows; i++) {
    price[i] = int64_t(90000 + rng.Uniform(1u << 13)) +
               (rng.Bernoulli(0.01) ? int64_t(rng.Uniform(1u << 20)) : 0);
    if (rng.Bernoulli(0.3)) day++;
    date[i] = day;
    flag[i] = int8_t(rng.Uniform(3));
  }
  auto add = [](Status st) { SCC_CHECK(st.ok(), st.ToString().c_str()); };
  add(t.AddColumn<int64_t>("price", price, ColumnCompression::kAuto));
  add(t.AddColumn<int32_t>("date", date, ColumnCompression::kAuto));
  add(t.AddColumn<int8_t>("flag", flag, ColumnCompression::kAuto));
  return t;
}

struct ScanResult {
  double seconds = 0;
  uint64_t sum = 0;
  size_t rows = 0;
};

ScanResult RunOnce(const Table& table, BufferManager* bm, unsigned threads,
                   bool ordered) {
  bm->Clear();  // cache-cold: every morsel faults its pages back in
  ParallelScan::Options opt;
  opt.threads = threads;
  opt.ordered = ordered;
  ParallelScan scan(&table, bm, {"price", "date", "flag"}, opt);
  struct Slot {
    uint64_t sum = 0;
    size_t rows = 0;
    char pad[48];
  };
  std::vector<Slot> slots(scan.slot_count());
  Timer t;
  scan.Run([&](const Batch& b, size_t /*morsel*/, size_t slot) {
    const int64_t* price = b.col(0)->data<int64_t>();
    const int32_t* date = b.col(1)->data<int32_t>();
    const int8_t* flag = b.col(2)->data<int8_t>();
    uint64_t s = 0;
    for (size_t i = 0; i < b.rows; i++) {
      s += uint64_t(price[i]) ^ uint64_t(uint32_t(date[i])) ^
           uint64_t(uint8_t(flag[i]));
    }
    slots[slot].sum += s;
    slots[slot].rows += b.rows;
  });
  ScanResult r;
  r.seconds = t.ElapsedSeconds();
  for (const Slot& s : slots) {
    r.sum += s.sum;  // xor-of-rows folded with +: order-independent
    r.rows += s.rows;
  }
  return r;
}

int Main(int argc, char** argv) {
  bool json = bench::StripFlag(&argc, argv, "--json");
  bool ordered = bench::StripFlag(&argc, argv, "--ordered");
  unsigned hw = std::thread::hardware_concurrency();
  unsigned max_threads = std::max(8u, hw == 0 ? 1u : hw);
  if (argc > 1) max_threads = unsigned(atoi(argv[1]));
  if (max_threads == 0) max_threads = 1;

  if (!json) {
    bench::PrintHeader("morsel-driven parallel scan scaling",
                       "the multi-core outlook in the paper's Conclusions");
    printf("rows %zu, %zu morsels of %zu values, 3 columns, %s emit\n",
           kRows, kRows / kChunkValues, kChunkValues,
           ordered ? "ordered" : "unordered");
    printf("pool workers: %u (host reports %u hw threads)\n\n",
           ThreadPool::Instance().worker_count(), hw);
  }

  Table table = BuildTable();
  SimDisk disk(SimDisk::MidRangeRaid());
  BufferManager bm(&disk, size_t(1) << 32, Layout::kDSM);

  const size_t bytes = kRows * (sizeof(int64_t) + sizeof(int32_t) + 1);
  ScanResult base = RunOnce(table, &bm, 1, ordered);
  SCC_CHECK(base.rows == kRows, "scan dropped rows");
  if (!json) {
    printf("threads   seconds   rows/s       MB/s (decoded)  speedup\n");
  }
  for (unsigned t = 1; t <= max_threads; t *= 2) {
    ScanResult r;
    double best = 1e100;
    for (int rep = 0; rep < 3; rep++) {
      ScanResult cur = RunOnce(table, &bm, t, ordered);
      SCC_CHECK(cur.sum == base.sum && cur.rows == base.rows,
                "parallel scan result mismatch");
      if (cur.seconds < best) {
        best = cur.seconds;
        r = cur;
      }
    }
    double speedup = base.seconds / r.seconds;
    if (json) {
      bench::EmitJsonLine(
          std::string("morsel_scan/") + (ordered ? "ordered/" : "") +
              "threads:" + std::to_string(t),
          double(bytes) / r.seconds, r.seconds * 1e9 / double(kRows),
          {{"threads", double(t)},
           {"workers", double(ThreadPool::Instance().worker_count())},
           {"speedup", speedup}});
    } else {
      printf("%7u   %7.4f   %10.0f   %14.1f  %6.2fx\n", t, r.seconds,
             double(kRows) / r.seconds, bytes / r.seconds / 1048576.0,
             speedup);
    }
  }
  if (!json) {
    printf("\nsteals: %zu (pool lifetime)\n", ThreadPool::Instance().steals());
    printf("note: speedup needs physical cores; on a 1-core host the curve "
           "is flat.\n");
  }
  return 0;
}

}  // namespace
}  // namespace scc

int main(int argc, char** argv) { return scc::Main(argc, argv); }
