// Compressed-execution ablation (Section 2.1): a selection on a
// dictionary-compressed column evaluated three ways:
//   decode+compare - decompress values, compare each to the literal
//   code-compare   - compare the b-bit codes to the literal's code
//                    (DecompressCodes; exceptions handled via Get)
//   count only     - same, but without materializing a selection vector
//
// The code-level plan reads the same compressed bytes but skips value
// materialization and compares narrow integers, so it is both faster and
// touches less memory — the paper's "selection directly on the integer
// code" optimization.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/segment_builder.h"
#include "core/segment_reader.h"

namespace scc {
namespace {

constexpr size_t kN = 4u << 20;
constexpr int kReps = 3;

}  // namespace

int Main() {
  bench::PrintHeader("Selection on dictionary codes vs decoded values",
                     "Section 2.1 (compressed execution)");
  // A 16-value "category" domain over int64 values, 1% exceptions.
  std::vector<int64_t> dict;
  for (int i = 0; i < 16; i++) dict.push_back(int64_t(i) * 1000003 + 17);
  Rng rng(5);
  std::vector<int64_t> values(kN);
  for (auto& v : values) {
    v = rng.Bernoulli(0.01) ? int64_t(rng.Next() | (1ull << 40))
                            : dict[rng.Uniform(dict.size())];
  }
  auto seg =
      SegmentBuilder<int64_t>::BuildPDict(values, PDictParams<int64_t>{4, dict});
  SCC_CHECK(seg.ok(), "build");
  auto reader = SegmentReader<int64_t>::Open(seg.ValueOrDie().data(),
                                             seg.ValueOrDie().size());
  const auto& r = reader.ValueOrDie();
  const int64_t kLiteral = dict[7];
  const uint32_t kCode = 7;

  size_t hits_decode = 0, hits_codes = 0;
  std::vector<int64_t> decoded(kN);
  double t_decode = bench::BestSeconds(kReps, [&] {
    r.DecompressAll(decoded.data());
    size_t h = 0;
    for (size_t i = 0; i < kN; i++) h += (decoded[i] == kLiteral);
    hits_decode = h;
  });

  std::vector<uint32_t> codes(kN);
  std::vector<uint32_t> exc_pos;
  double t_codes = bench::BestSeconds(kReps, [&] {
    exc_pos.clear();
    SCC_CHECK(r.DecompressCodes(0, kN, codes.data(), &exc_pos).ok(), "codes");
    for (uint32_t p : exc_pos) codes[p] = 0xFFFFFFFFu;  // mask gap codes
    size_t h = 0;
    for (size_t i = 0; i < kN; i++) h += (codes[i] == kCode);
    // Exceptions are by construction not dictionary members; the check
    // costs one Get per exception.
    for (uint32_t p : exc_pos) h += (r.Get(p) == kLiteral);
    hits_codes = h;
  });

  SCC_CHECK(hits_decode == hits_codes, "plans disagree");
  const double bytes = double(kN) * 8;
  printf("selected %zu of %zu rows (literal = dict[7])\n\n", hits_decode, kN);
  printf("  plan            time (ms)   effective GB/s\n");
  printf("  decode+compare   %8.2f   %10.2f\n", t_decode * 1e3,
         GBPerSec(bytes, t_decode));
  printf("  code-compare     %8.2f   %10.2f\n", t_codes * 1e3,
         GBPerSec(bytes, t_codes));
  printf("\nPaper reference (Section 2.1): selecting on the integer code "
         "needs less\nI/O and a cheaper predicate than decoding to the "
         "value domain first.\n");
  return 0;
}

}  // namespace scc

int main() { return scc::Main(); }
