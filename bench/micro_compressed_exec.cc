// Compressed-execution ablations:
//
// 1. Section 2.1: a selection on a dictionary-compressed column evaluated
//    three ways:
//      decode+compare - decompress values, compare each to the literal
//      code-compare   - compare the b-bit codes to the literal's code
//                       (DecompressCodes; exceptions handled via Get)
//    The code-level plan reads the same compressed bytes but skips value
//    materialization and compares narrow integers, so it is both faster
//    and touches less memory — the paper's "selection directly on the
//    integer code" optimization.
//
// 2. Selection pushdown sweep: SegmentReader::SelectBetween (summary skip
//    + packed SelectBetween kernels) against decode-then-select, across
//    selectivities from 0.1% to 99%, on a uniform column (summaries never
//    skip: the win is pure kernel) and a clustered/sorted one (summaries
//    skip or bulk-accept almost every group). Both plans must agree
//    exactly; the sweep records per-value latency for the perf gate.
//
// --json PATH writes the BenchReport format tools/scc_bench_diff consumes
// (flat "metrics" map); BENCH_PR7.json is the checked-in baseline.
// Bandwidth numbers are single-threaded and the working set at the sweep
// size fits the last-level cache on typical hardware — treat absolute
// GB/s from 1-core CI runners as indicative only.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/segment_builder.h"
#include "core/segment_reader.h"

namespace scc {
namespace {

constexpr size_t kN = 4u << 20;
constexpr int kReps = 3;

// Selection sweep working set: 1M values keeps the packed codes (~1.25 MB
// at b=10) cache-resident so the sweep measures the kernels, not DRAM.
constexpr size_t kSweepN = 1u << 20;
constexpr int kSweepB = 10;

void RunDictAblation() {
  // A 16-value "category" domain over int64 values, 1% exceptions.
  std::vector<int64_t> dict;
  for (int i = 0; i < 16; i++) dict.push_back(int64_t(i) * 1000003 + 17);
  Rng rng(5);
  std::vector<int64_t> values(kN);
  for (auto& v : values) {
    v = rng.Bernoulli(0.01) ? int64_t(rng.Next() | (1ull << 40))
                            : dict[rng.Uniform(dict.size())];
  }
  auto seg =
      SegmentBuilder<int64_t>::BuildPDict(values, PDictParams<int64_t>{4, dict});
  SCC_CHECK(seg.ok(), "build");
  auto reader = SegmentReader<int64_t>::Open(seg.ValueOrDie().data(),
                                             seg.ValueOrDie().size());
  const auto& r = reader.ValueOrDie();
  const int64_t kLiteral = dict[7];
  const uint32_t kCode = 7;

  size_t hits_decode = 0, hits_codes = 0;
  std::vector<int64_t> decoded(kN);
  double t_decode = bench::BestSeconds(kReps, [&] {
    r.DecompressAll(decoded.data());
    size_t h = 0;
    for (size_t i = 0; i < kN; i++) h += (decoded[i] == kLiteral);
    hits_decode = h;
  });

  std::vector<uint32_t> codes(kN);
  std::vector<uint32_t> exc_pos;
  double t_codes = bench::BestSeconds(kReps, [&] {
    exc_pos.clear();
    SCC_CHECK(r.DecompressCodes(0, kN, codes.data(), &exc_pos).ok(), "codes");
    for (uint32_t p : exc_pos) codes[p] = 0xFFFFFFFFu;  // mask gap codes
    size_t h = 0;
    for (size_t i = 0; i < kN; i++) h += (codes[i] == kCode);
    // Exceptions are by construction not dictionary members; the check
    // costs one Get per exception.
    for (uint32_t p : exc_pos) h += (r.Get(p) == kLiteral);
    hits_codes = h;
  });

  SCC_CHECK(hits_decode == hits_codes, "plans disagree");
  const double bytes = double(kN) * 8;
  printf("selected %zu of %zu rows (literal = dict[7])\n\n", hits_decode, kN);
  printf("  plan            time (ms)   effective GB/s\n");
  printf("  decode+compare   %8.2f   %10.2f\n", t_decode * 1e3,
         GBPerSec(bytes, t_decode));
  printf("  code-compare     %8.2f   %10.2f\n", t_codes * 1e3,
         GBPerSec(bytes, t_codes));
}

void RunSelectionSweep(std::string* metrics_json) {
  bench::PrintHeader("Selection pushdown vs decode-then-select",
                     "compressed-domain SelectBetween");
  // Uniform: every 128-value group spans nearly the whole [0, 1024)
  // domain, so the min/max summaries never skip a group — the compressed
  // plan wins only through the packed SelectBetween kernels. Clustered:
  // the same values sorted, so at low selectivity the summaries skip
  // nearly every group and at high selectivity they bulk-accept them.
  Rng rng(7);
  std::vector<int64_t> uniform(kSweepN);
  for (auto& v : uniform) {
    v = rng.Bernoulli(0.01) ? int64_t(rng.Next() & 0xFFFFFFF)  // exception
                            : int64_t(rng.Uniform(1u << kSweepB));
  }
  std::vector<int64_t> clustered = uniform;
  std::sort(clustered.begin(), clustered.end());

  struct Shape {
    const char* name;
    const std::vector<int64_t>* values;
  };
  const Shape shapes[] = {{"uniform", &uniform}, {"clustered", &clustered}};
  char buf[256];
  for (const Shape& shape : shapes) {
    auto seg = SegmentBuilder<int64_t>::BuildPFor(
        *shape.values, PForParams<int64_t>{kSweepB, 0});
    SCC_CHECK(seg.ok(), "build sweep segment");
    auto reader = SegmentReader<int64_t>::Open(seg.ValueOrDie().data(),
                                               seg.ValueOrDie().size());
    const auto& r = reader.ValueOrDie();
    printf("\n%s data, %zu x int64 in %d-bit codes (%.2f MB packed):\n\n",
           shape.name, kSweepN, kSweepB,
           double(seg.ValueOrDie().size()) / 1048576.0);
    printf("  select. |  decode+select  |   compressed    | speedup\n");
    printf("          |  ms    Mrows/s  |  ms    Mrows/s  |\n");
    printf("  --------+-----------------+-----------------+--------\n");
    std::vector<int64_t> decoded(kSweepN);
    std::vector<uint32_t> sel_dec(kSweepN), sel_push(kSweepN);
    for (double s : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.99}) {
      // [0, q) over the uniform [0, 1024) domain selects ~s of the rows.
      const int64_t lo = 0;
      const int64_t hi = int64_t(s * double(1u << kSweepB)) - 1;
      size_t cnt_dec = 0, cnt_push = 0;
      const double t_dec = bench::BestSeconds(kReps, [&] {
        r.DecompressAll(decoded.data());
        size_t c = 0;
        for (size_t i = 0; i < kSweepN; i++) {
          sel_dec[c] = uint32_t(i);
          c += size_t(decoded[i] >= lo && decoded[i] <= hi);
        }
        cnt_dec = c;
      });
      const double t_push = bench::BestSeconds(kReps, [&] {
        cnt_push = r.SelectBetween(0, kSweepN, lo, hi, sel_push.data());
      });
      SCC_CHECK(cnt_dec == cnt_push, "plans disagree");
      SCC_CHECK(std::equal(sel_dec.begin(), sel_dec.begin() + cnt_dec,
                           sel_push.begin()),
                "selections disagree");
      printf("  %5.1f%%  | %5.2f %9.1f | %5.2f %9.1f | %6.2fx\n", s * 100,
             t_dec * 1e3, kSweepN / t_dec / 1e6, t_push * 1e3,
             kSweepN / t_push / 1e6, t_dec / t_push);
      snprintf(buf, sizeof(buf),
               "\"%s.s%04.1f.decoded_ns_per_value\":%.4f,"
               "\"%s.s%04.1f.compressed_ns_per_value\":%.4f,"
               "\"%s.s%04.1f.speedup\":%.3f,",
               shape.name, s * 100, t_dec * 1e9 / double(kSweepN),
               shape.name, s * 100, t_push * 1e9 / double(kSweepN),
               shape.name, s * 100, t_dec / t_push);
      *metrics_json += buf;
    }
  }
  printf("\nThe compressed plan never materializes the 8-byte values: it "
         "skips\ndisqualified groups from the summaries, bulk-accepts "
         "fully-qualifying ones,\nand runs the packed SelectBetween kernel "
         "over the rest.\n");
}

}  // namespace

int Main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  bench::PrintHeader("Selection on dictionary codes vs decoded values",
                     "Section 2.1 (compressed execution)");
  RunDictAblation();

  std::string metrics_json;
  RunSelectionSweep(&metrics_json);

  if (json_path != nullptr) {
    if (!metrics_json.empty()) metrics_json.pop_back();  // trailing comma
    FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      fprintf(stderr, "error: cannot write %s\n", json_path);
      return 1;
    }
    fprintf(f,
            "{\"bench\":\"micro_compressed_exec\",\"config\":{\"sweep_n\":%zu,"
            "\"sweep_bits\":%d},\"metrics\":{%s}}\n",
            kSweepN, kSweepB, metrics_json.c_str());
    std::fclose(f);
    printf("wrote %s\n", json_path);
  }

  printf("\nPaper reference (Section 2.1): selecting on the integer code "
         "needs less\nI/O and a cheaper predicate than decoding to the "
         "value domain first.\n");
  return 0;
}

}  // namespace scc

int main(int argc, char** argv) { return scc::Main(argc, argv); }
