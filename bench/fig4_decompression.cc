// Figure 4 reproduction: decompression bandwidth (and branch-miss rate /
// IPC where hardware counters are available) as a function of the
// exception rate, for NAIVE if-then-else decoding vs. the patched PFOR
// and PDICT kernels.
//
// Expected shape (paper, Fig. 4): NAIVE bandwidth collapses towards a 50%
// exception rate as the branch becomes unpredictable; PFOR and PDICT
// decline only gently (more LOOP2 patch work) and dominate everywhere.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "bitpack/bitpack.h"
#include "core/kernels.h"
#include "util/bitutil.h"

namespace scc {
namespace {

constexpr size_t kN = 4u << 20;  // 4M values, 64-bit decoded, 8-bit codes
constexpr int kB = 8;
constexpr int kReps = 3;

struct Prepared {
  std::vector<uint32_t> codes_naive;  // escape-coded
  std::vector<int64_t> exc_naive;
  std::vector<uint32_t> codes_patched;  // gap-linked
  std::vector<int64_t> exc_patched;
  size_t first_exc = 0;
  size_t n_exc = 0;
};

Prepared Prepare(const std::vector<int64_t>& data, int64_t base) {
  Prepared p;
  p.codes_naive.resize(kN);
  p.exc_naive.resize(kN);
  p.codes_patched.resize(kN);
  p.exc_patched.resize(kN);
  std::vector<uint32_t> miss(kN);
  CompressNaive(data.data(), kN, kB, base, p.codes_naive.data(),
                p.exc_naive.data());
  p.n_exc = CompressPred(data.data(), kN, kB, base, p.codes_patched.data(),
                         p.exc_patched.data(), &p.first_exc, miss.data());
  return p;
}

}  // namespace

int Main() {
  bench::PrintHeader("Decompression bandwidth vs. exception rate",
                     "Figure 4");
  printf("%zu x 64-bit values, %d-bit codes; bandwidth counts decoded "
         "output bytes\n\n",
         kN, kB);
  printf("exc.rate | NAIVE GB/s  miss%%  IPC | PFOR GB/s   miss%%  IPC | "
         "PDICT GB/s  miss%%  IPC\n");
  printf("---------+---------------------------+---------------------------+"
         "---------------------------\n");

  const int64_t base = 1000;
  std::vector<int64_t> out(kN);
  // PDICT dictionary: 256 entries (8-bit codes), padded for gap codes.
  std::vector<int64_t> dict(1u << kB);
  for (size_t i = 0; i < dict.size(); i++) dict[i] = int64_t(i) * 7 - 3;

  for (double rate : {0.0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    auto data = bench::ExceptionData<int64_t>(kN, kB, base, rate,
                                              uint64_t(rate * 1000) + 1);
    Prepared p = Prepare(data, base);

    const double bytes = double(kN) * sizeof(int64_t);
    ForCodec<int64_t> codec(base);
    auto naive = bench::MeasureWithCounters(kReps, [&] {
      DecompressNaive(p.codes_naive.data(), kN, kB, codec, p.exc_naive.data(),
                      out.data());
    });
    auto pfor = bench::MeasureWithCounters(kReps, [&] {
      DecompressPatched(p.codes_patched.data(), kN, codec,
                        p.exc_patched.data(), p.first_exc, p.n_exc,
                        out.data());
    });
    // PDICT: decode through the dictionary; same patch list layout.
    DictCodec<int64_t> dcodec(dict.data());
    auto pdict = bench::MeasureWithCounters(kReps, [&] {
      DecompressPatched(p.codes_patched.data(), kN, dcodec,
                        p.exc_patched.data(), p.first_exc, p.n_exc,
                        out.data());
    });

    printf("  %4.2f   | %9.2f  %s %s | %9.2f  %s %s | %9.2f  %s %s\n", rate,
           GBPerSec(bytes, naive.seconds),
           bench::FmtRate(naive.perf.BranchMissRate()).c_str(),
           bench::FmtIpc(naive.perf.IPC()).c_str(),
           GBPerSec(bytes, pfor.seconds),
           bench::FmtRate(pfor.perf.BranchMissRate()).c_str(),
           bench::FmtIpc(pfor.perf.IPC()).c_str(),
           GBPerSec(bytes, pdict.seconds),
           bench::FmtRate(pdict.perf.BranchMissRate()).c_str(),
           bench::FmtIpc(pdict.perf.IPC()).c_str());
  }
  // Scalar vs SIMD: the same patched PFOR decode under every kernel
  // backend this host supports, side by side. The dispatched kernels only
  // accelerate LOOP1 (FOR decode) and the delta prefix sum, so the spread
  // narrows as the exception rate (LOOP2 patch work) grows.
  const KernelIsa original = ActiveKernelIsa();
  std::vector<KernelIsa> isas;
  for (int i = 0; i < kNumKernelIsas; i++) {
    if (KernelIsaSupported(KernelIsa(i))) isas.push_back(KernelIsa(i));
  }
  printf("\nPFOR decode bandwidth by kernel backend (GB/s):\n\n");
  printf("exc.rate |");
  for (KernelIsa isa : isas) printf("  %-8s", KernelIsaName(isa));
  printf("\n---------+");
  for (size_t i = 0; i < isas.size(); i++) printf("----------");
  printf("\n");
  for (double rate : {0.0, 0.05, 0.1, 0.3, 0.5}) {
    auto data = bench::ExceptionData<int64_t>(kN, kB, base, rate,
                                              uint64_t(rate * 1000) + 1);
    Prepared p = Prepare(data, base);
    ForCodec<int64_t> codec(base);
    printf("  %4.2f   |", rate);
    for (KernelIsa isa : isas) {
      SetKernelIsa(isa);
      double secs = bench::BestSeconds(kReps, [&] {
        DecompressPatched(p.codes_patched.data(), kN, codec,
                          p.exc_patched.data(), p.first_exc, p.n_exc,
                          out.data());
      });
      printf("  %8.2f", GBPerSec(double(kN) * sizeof(int64_t), secs));
    }
    printf("\n");
  }
  // Wide bit widths (24-31): the shuffle-network unpack kernels cover the
  // whole width range, so the SIMD column no longer falls off a cliff past
  // b=25 (where the 4-byte-chunk family runs out of room). Bandwidth
  // counts unpacked uint32 output bytes.
  printf("\nWide-width unpack bandwidth by kernel backend (GB/s, "
         "%zu codes):\n\n", kN);
  printf("bits |");
  for (KernelIsa isa : isas) printf("  %-8s", KernelIsaName(isa));
  printf("\n-----+");
  for (size_t i = 0; i < isas.size(); i++) printf("----------");
  printf("\n");
  for (int b : {24, 25, 26, 27, 28, 29, 30, 31}) {
    std::vector<uint32_t> codes(kN);
    Rng rng(uint64_t(b) + 1);
    const uint32_t mask = (uint32_t(1) << b) - 1;
    for (auto& c : codes) c = uint32_t(rng.Next()) & mask;
    std::vector<uint32_t> packed(PackedByteSize(kN, b) / 4 + 1, 0);
    BitPack(codes.data(), kN, b, packed.data());
    std::vector<uint32_t> unpacked(kN);
    printf("  %2d |", b);
    for (KernelIsa isa : isas) {
      SetKernelIsa(isa);
      double secs = bench::BestSeconds(kReps, [&] {
        BitUnpackExact(packed.data(), kN, b, unpacked.data());
      });
      printf("  %8.2f", GBPerSec(double(kN) * 4, secs));
    }
    printf("\n");
  }
  SetKernelIsa(original);

  printf("\nPaper reference (Fig. 4): patched PFOR/PDICT reach 2-5 GB/s at "
         "low exception\nrates and stay well above NAIVE, whose throughput "
         "collapses near 50%% exceptions\ndue to branch mispredictions.\n");
  return 0;
}

}  // namespace scc

int main() { return scc::Main(); }
