// micro_tiered — latency quantiles of the tiered buffer manager
// (docs/STORAGE_TIERS.md) as the DRAM tier shrinks under the dataset.
// Three configurations, DRAM sized to {25%, 50%, 100%} of the stored
// bytes with a flash tier underneath and a small decoded-group hot tier
// on top:
//
//   point reads  zipf-skewed BufferManager::ReadValue — a hot-tier hit is
//                a mutex + memcpy, a miss pins the compressed page and
//                decodes exactly one 128-value entry group; at small DRAM
//                fractions the page fault itself walks DRAM -> SSD ->
//                cold
//   chunk scans  pin + DecompressAll of one random chunk — the eviction
//                churn that keeps demoting point-read pages to flash
//
// Wall-clock quantiles are exact (sorted per-op vector). The simulated
// device time (SimDisk virtual seconds, cold + flash) is reported per
// configuration: that is where the tiering shows up — smaller DRAM
// fractions trade cold-device reads for cheaper flash traffic.
//
//   micro_tiered [--rows N] [--points N] [--scans N] [--seed S]
//                [--json PATH]
//
// --json writes the BenchReport format tools/scc_bench_diff consumes
// (flat "metrics" map); the checked-in BENCH_PR8.json baseline was
// recorded with the defaults. Defaults are CI-smoke sized (< 1 s).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/segment_reader.h"
#include "storage/buffer_manager.h"
#include "storage/bulk_load.h"
#include "storage/sim_disk.h"
#include "sys/telemetry.h"
#include "sys/timer.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace scc {
namespace {

uint64_t Exact(const std::vector<uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  double r = q * double(sorted.size() - 1);
  return sorted[size_t(r + 0.5)];
}

struct Dataset {
  Table table{size_t(1) << 14};
  std::vector<const StoredColumn*> cols;
};

void BuildTable(Dataset* d, size_t rows, uint64_t seed) {
  // Same column shapes as tail_latency/scc_load: sequential id,
  // zipf-skewed code, price with 1% outliers, timestamp.
  Rng rng(seed);
  ZipfGenerator zipf(1000, 1.1, seed + 1);
  std::vector<int64_t> id(rows), code(rows), price(rows), ts(rows);
  int64_t t = 1700000000;
  for (size_t i = 0; i < rows; i++) {
    id[i] = int64_t(i);
    code[i] = int64_t(zipf.Next());
    price[i] = int64_t(100 + rng.Uniform(900));
    if (rng.Bernoulli(0.01)) price[i] = int64_t(rng.Uniform(1u << 30));
    t += int64_t(rng.Uniform(30));
    ts[i] = t;
  }
  for (const auto& [name, vec] :
       {std::pair<const char*, std::vector<int64_t>*>{"id", &id},
        {"code", &code},
        {"price", &price},
        {"ts", &ts}}) {
    Status st = BulkLoadColumn<int64_t>(&d->table, name, *vec);
    SCC_CHECK(st.ok(), st.ToString().c_str());
  }
  for (size_t c = 0; c < d->table.column_count(); c++) {
    d->cols.push_back(d->table.column(c));
  }
}

struct ConfigResult {
  std::vector<uint64_t> point_ns;  // sorted
  std::vector<uint64_t> scan_ns;   // sorted
  double sim_io_ms = 0;            // cold + flash virtual device time
  double hot_hit_pct = 0;
  size_t ssd_reads = 0;
  size_t cold_reads = 0;
};

ConfigResult RunConfig(Dataset* d, size_t dram_pct, size_t points,
                       size_t scans, uint64_t seed) {
  const size_t bytes = d->table.ByteSize();
  SimDisk disk;
  BufferManager::TierConfig tc;
  tc.hot_capacity_bytes = 1u << 20;
  tc.ssd_capacity_bytes = 4 * bytes;
  BufferManager bm(&disk, bytes * dram_pct / 100, Layout::kDSM, tc);

  ConfigResult r;
  r.point_ns.reserve(points);
  r.scan_ns.reserve(scans);
  Rng rng(seed);
  ZipfGenerator row_pick(d->table.rows(), 0.9, seed + 13);
  const size_t chunks = d->table.chunk_count();
  // Interleave: roughly one chunk scan per points/scans point reads, so
  // the scans churn the DRAM tier while the point reads are in flight.
  const size_t scan_every = scans > 0 ? (points + scans - 1) / scans : 0;
  std::vector<int64_t> scratch;
  uint64_t sink = 0;
  for (size_t i = 0; i < points; i++) {
    const StoredColumn* col = d->cols[rng.Uniform(d->cols.size())];
    {
      const size_t row = row_pick.Next();
      Timer t;
      Result<int64_t> v = bm.ReadValue<int64_t>(&d->table, col, row);
      const uint64_t ns = uint64_t(t.ElapsedNanos());
      SCC_CHECK(v.ok(), v.status().ToString().c_str());
      sink += uint64_t(v.ValueOrDie());
      r.point_ns.push_back(ns);
    }
    if (scan_every != 0 && i % scan_every == 0) {
      const StoredColumn* scol = d->cols[rng.Uniform(d->cols.size())];
      const size_t chunk = rng.Uniform(chunks);
      Timer t;
      Result<BufferManager::PageGuard> g =
          bm.FetchPinned(&d->table, scol, chunk);
      SCC_CHECK(g.ok(), g.status().ToString().c_str());
      auto reader = SegmentReader<int64_t>::Open(
          g.ValueOrDie()->data(), g.ValueOrDie()->size());
      SCC_CHECK(reader.ok(), "micro_tiered: segment failed validation");
      scratch.resize(reader.ValueOrDie().count());
      reader.ValueOrDie().DecompressAll(scratch.data());
      r.scan_ns.push_back(uint64_t(t.ElapsedNanos()));
      sink += uint64_t(scratch.empty() ? 0 : scratch.back());
    }
  }
  if (sink == 0xdeadbeef) printf("%llu\n", (unsigned long long)sink);

  std::sort(r.point_ns.begin(), r.point_ns.end());
  std::sort(r.scan_ns.begin(), r.scan_ns.end());
  r.sim_io_ms = (disk.io_seconds() + bm.ssd_disk()->io_seconds()) * 1e3;
  const BufferManager::TierStats hot =
      bm.tier_stats(BufferManager::CacheTier::kHot);
  r.hot_hit_pct = hot.hits + hot.misses > 0
                      ? 100.0 * double(hot.hits) /
                            double(hot.hits + hot.misses)
                      : 0.0;
  r.ssd_reads = bm.ssd_disk()->read_count();
  r.cold_reads = disk.read_count();
  return r;
}

int Run(int argc, char** argv) {
  size_t rows = size_t(1) << 17;  // 128K rows x 4 cols: CI-smoke sized
  size_t points = 20000;
  size_t scans = 400;
  uint64_t seed = 2026;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; i++) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(argv[i], "--rows") == 0) {
      if (const char* v = next()) rows = size_t(std::atoll(v));
    } else if (std::strcmp(argv[i], "--points") == 0) {
      if (const char* v = next()) points = size_t(std::atoll(v));
    } else if (std::strcmp(argv[i], "--scans") == 0) {
      if (const char* v = next()) scans = size_t(std::atoll(v));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      if (const char* v = next()) seed = uint64_t(std::atoll(v));
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = next();
    } else {
      fprintf(stderr,
              "usage: %s [--rows N] [--points N] [--scans N] [--seed S] "
              "[--json PATH]\n",
              argv[0]);
      return 2;
    }
  }

  SetTelemetryEnabled(true);
  bench::PrintHeader("Tiered buffer manager latency vs DRAM fraction",
                     "hot decoded groups / DRAM compressed pages / flash "
                     "residency tier; docs/STORAGE_TIERS.md");

  Dataset d;
  BuildTable(&d, rows, seed);
  printf("table: %zu rows x %zu cols, %.2f MB stored; hot 1 MB, "
         "ssd 4x data; %zu point reads + %zu chunk scans per config\n\n",
         d.table.rows(), d.table.column_count(),
         d.table.ByteSize() / 1048576.0, points, scans);

  printf("%-6s %26s %26s %9s %8s %7s %7s\n", "dram", "point p50/p99/p999(us)",
         "scan p50/p99/max(us)", "sim-io(ms)", "hot-hit", "ssd-rd",
         "cold-rd");

  std::string metrics_json;
  char buf[256];
  for (size_t pct : {25u, 50u, 100u}) {
    const ConfigResult r = RunConfig(&d, pct, points, scans, seed);
    printf("%4zu%% %8.1f /%6.1f /%6.1f %10.1f /%6.1f /%6.1f %9.2f %7.1f%% "
           "%7zu %7zu\n",
           pct, Exact(r.point_ns, 0.5) / 1e3, Exact(r.point_ns, 0.99) / 1e3,
           Exact(r.point_ns, 0.999) / 1e3, Exact(r.scan_ns, 0.5) / 1e3,
           Exact(r.scan_ns, 0.99) / 1e3,
           r.scan_ns.empty() ? 0.0 : r.scan_ns.back() / 1e3, r.sim_io_ms,
           r.hot_hit_pct, r.ssd_reads, r.cold_reads);
    for (const auto& [q, label] :
         {std::pair<double, const char*>{0.50, "p50_ns"},
          {0.95, "p95_ns"},
          {0.99, "p99_ns"},
          {0.999, "p999_ns"}}) {
      snprintf(buf, sizeof(buf), "\"point.d%zu.%s\":%llu,", pct, label,
               (unsigned long long)Exact(r.point_ns, q));
      metrics_json += buf;
      snprintf(buf, sizeof(buf), "\"scan.d%zu.%s\":%llu,", pct, label,
               (unsigned long long)Exact(r.scan_ns, q));
      metrics_json += buf;
    }
    snprintf(buf, sizeof(buf), "\"sim_io.d%zu.ms\":%.3f,", pct, r.sim_io_ms);
    metrics_json += buf;
  }

  if (json_path != nullptr) {
    if (!metrics_json.empty()) metrics_json.pop_back();  // trailing comma
    FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      fprintf(stderr, "error: cannot write %s\n", json_path);
      return 1;
    }
    fprintf(f,
            "{\"bench\":\"micro_tiered\",\"config\":{\"rows\":%zu,"
            "\"points\":%zu,\"scans\":%zu,\"seed\":%llu},\"metrics\":{%s}}\n",
            rows, points, scans, (unsigned long long)seed,
            metrics_json.c_str());
    std::fclose(f);
    printf("wrote %s\n", json_path);
  }
  return 0;
}

}  // namespace
}  // namespace scc

int main(int argc, char** argv) { return scc::Run(argc, argv); }
