// Table 4 + Section 5 reproduction: inverted-file compression on five
// synthetic collections standing in for INEX and four TREC sub-corpora
// (see DESIGN.md substitutions). For each (collection, codec) pair we
// report compression ratio (vs raw 32-bit docids), compression MB/s and
// decompression MB/s; then the Section 5 bandwidth analysis of the top-N
// retrieval query via Equation 3.1.
//
// Expected shape (paper, Table 4): shuff compresses best but decodes
// slowest; carryover-12 sits in the middle; PFOR-DELTA gives ~0.85x of
// carryover-12's ratio at ~6.5x its decompression speed. In the Eq. 3.1
// analysis only PFOR-DELTA exceeds the 883 MB/s equilibrium point and
// actually accelerates the 350 MB/s-disk query.

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "core/codec.h"
#include "ir/collection.h"
#include "ir/posting_codec.h"
#include "ir/search.h"

namespace scc {
namespace {

constexpr int kReps = 3;

void BenchCollection(const CollectionSpec& spec) {
  InvertedIndex idx = BuildCollection(spec);
  std::vector<uint32_t> gaps = FlattenToIds(idx);
  const double raw_bytes = double(gaps.size()) * 4;
  printf("%-14s docs=%u postings=%zu raw=%.1f MB\n", spec.name.c_str(),
         spec.num_docs, gaps.size(), raw_bytes / 1048576.0);
  printf("  %-14s %7s %11s %11s\n", "codec", "ratio", "comp MB/s",
         "dec MB/s");
  for (auto& codec : MakePostingCodecs()) {
    std::vector<uint8_t> comp;
    double cs = bench::BestSeconds(kReps, [&] {
      auto r = codec->Compress(gaps.data(), gaps.size());
      SCC_CHECK(r.ok(), codec->name().c_str());
      comp = r.MoveValueOrDie();
    });
    std::vector<uint32_t> out(gaps.size());
    double ds = bench::BestSeconds(kReps, [&] {
      SCC_CHECK(codec
                    ->Decompress(comp.data(), comp.size(), out.data(),
                                 out.size())
                    .ok(),
                codec->name().c_str());
    });
    SCC_CHECK(out == gaps, "codec round trip failed");
    printf("  %-14s %7.2f %11.0f %11.0f\n", codec->name().c_str(),
           raw_bytes / comp.size(), MBPerSec(raw_bytes, cs),
           MBPerSec(raw_bytes, ds));
  }
  printf("\n");
}

void QueryBandwidthAnalysis() {
  printf("--- Section 5: top-N retrieval query bandwidth (Eq. 3.1) ---\n\n");
  // Measure Q: raw query bandwidth over uncompressed postings, and the
  // per-codec decompression bandwidth C; then model the result bandwidth
  // R for a B = 350 MB/s RAID at each codec's compression ratio r.
  CollectionSpec spec = Table4Collections()[1];  // the fbis stand-in
  spec.target_postings /= 4;                     // keep the bench snappy
  InvertedIndex idx = BuildCollection(spec);
  auto searcher = PostingSearcher::Build(idx);
  SCC_CHECK(searcher.ok(), "searcher build");
  const auto& s = searcher.ValueOrDie();
  uint32_t term = s.MostFrequentTerm();

  // Q measured on raw (uncompressed) arrays: same top-N loop over the
  // in-memory posting list.
  const auto& docs = idx.postings[term];
  const auto& tfs = idx.tfs[term];
  volatile uint64_t sink = 0;
  double q_seconds = bench::BestSeconds(5, [&] {
    uint32_t best_doc = 0, best_tf = 0;
    for (size_t i = 0; i < docs.size(); i++) {
      if (tfs[i] > best_tf) {
        best_tf = tfs[i];
        best_doc = docs[i];
      }
    }
    sink = best_doc;
  });
  (void)sink;
  double Q = MBPerSec(double(docs.size()) * 8, q_seconds);

  // End-to-end compressed query (decompress + top-N).
  double full_seconds = bench::BestSeconds(5, [&] { s.TopN(term, 10); });
  double full_bw = MBPerSec(double(s.last_bytes_processed()), full_seconds);

  // Query-throughput leg: a batch of independent top-N queries fanned
  // out over the shared thread pool vs the same batch run serially.
  // Results must agree query-for-query; on a 1-core host expect ~1x.
  std::vector<uint32_t> batch_terms;
  for (uint32_t t = 0; t < uint32_t(s.term_count()); t += 7) {
    batch_terms.push_back(t);
    if (batch_terms.size() == 64) break;
  }
  std::vector<std::vector<SearchHit>> batch_hits;
  double batch_seconds = bench::BestSeconds(3, [&] {
    batch_hits = s.TopNBatch(batch_terms, 10);
  });
  double serial_seconds = bench::BestSeconds(3, [&] {
    for (size_t i = 0; i < batch_terms.size(); i++) {
      auto hits = s.TopN(batch_terms[i], 10);
      SCC_CHECK(hits.size() == batch_hits[i].size() &&
                    std::equal(hits.begin(), hits.end(), batch_hits[i].begin(),
                               [](const SearchHit& a, const SearchHit& b) {
                                 return a.doc == b.doc && a.score == b.score;
                               }),
                "batch and serial top-N disagree");
    }
  });

  std::vector<uint32_t> gaps = FlattenToIds(idx);
  const double raw_bytes = double(gaps.size()) * 4;
  const double B = 350.0;
  printf("term posting list: %zu entries; query bandwidth Q = %.0f MB/s\n",
         docs.size(), Q);
  printf("equilibrium decompression bandwidth C* = QB/(Q-B) = %.0f MB/s\n",
         EquilibriumDecompressionBandwidth(B, Q));
  printf("end-to-end compressed top-N bandwidth: %.0f MB/s\n", full_bw);
  printf("batch of %zu top-N queries: serial %.3fs, pooled %.3fs "
         "(%.2fx)\n\n",
         batch_terms.size(), serial_seconds, batch_seconds,
         batch_seconds > 0 ? serial_seconds / batch_seconds : 0.0);
  printf("  %-14s %7s %9s %22s\n", "codec", "r", "C MB/s",
         "R = modeled result MB/s");
  for (auto& codec : MakePostingCodecs()) {
    auto comp = codec->Compress(gaps.data(), gaps.size());
    SCC_CHECK(comp.ok(), "compress");
    std::vector<uint32_t> out(gaps.size());
    double ds = bench::BestSeconds(kReps, [&] {
      SCC_CHECK(codec
                    ->Decompress(comp.ValueOrDie().data(),
                                 comp.ValueOrDie().size(), out.data(),
                                 out.size())
                    .ok(),
                "decompress");
    });
    double C = MBPerSec(raw_bytes, ds);
    double r = raw_bytes / comp.ValueOrDie().size();
    printf("  %-14s %7.2f %9.0f %16.0f\n", codec->name().c_str(), r, C,
           ResultBandwidth(B, r, Q, C));
  }
  printf("  %-14s %7s %9s %16.0f   (no compression)\n", "raw", "1.00", "-",
         std::min(B, Q));
}

}  // namespace

int Main(int argc, char** argv) {
  double scale = argc > 1 ? atof(argv[1]) : 0.5;
  bench::PrintHeader("Inverted-file compression", "Table 4 and Section 5");
  printf("collections scaled to %.2fx of their calibrated size\n\n", scale);
  for (CollectionSpec spec : Table4Collections()) {
    // Scale documents and postings together: density (and therefore the
    // d-gap distribution and ratios) stays calibrated.
    spec.target_postings = uint64_t(double(spec.target_postings) * scale);
    spec.num_docs = uint32_t(double(spec.num_docs) * scale) + 1;
    BenchCollection(spec);
  }
  QueryBandwidthAnalysis();
  printf("\nPaper reference (Table 4): e.g. TREC-fbis — PFOR-DELTA 3.47x "
         "788/3911 MB/s,\ncarryover-12 4.26x 98/740 MB/s, shuff 5.11x "
         "190/164 MB/s. PFOR-DELTA keeps\n~85%% of carryover-12's ratio at "
         "~6.5x its decompression speed, and is the\nonly codec above the "
         "Eq. 3.1 equilibrium (883 MB/s), so it alone accelerates\nthe "
         "I/O-bound query (350 -> ~504 MB/s in the paper).\n");
  return 0;
}

}  // namespace scc

int main(int argc, char** argv) { return scc::Main(argc, argv); }
