// Table 3 reproduction: I/O-RAM (page-wise) versus RAM-CPU cache
// (vector-wise) decompression on full TPC-H queries Q3, Q4, Q6 and Q18.
// Reports execution time and hardware cache misses (when counters are
// available) for both buffer-manager strategies.
//
// Expected shape (paper, Table 3): vector-wise is consistently faster and
// suffers a fraction of the cache misses, because decompressed pages
// never round-trip through main memory.

#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "sys/perf_counters.h"
#include "tpch/queries.h"

namespace scc {

int Main(int argc, char** argv) {
  double sf = argc > 1 ? atof(argv[1]) : 0.05;
  bench::PrintHeader("Page-wise vs vector-wise decompression on TPC-H",
                     "Table 3");
  TpchData data = GenerateTpch(sf);
  TpchDatabase db =
      TpchDatabase::Build(data, ColumnCompression::kAuto, 1u << 16);
  printf("scale factor %.3f, lineitem rows %zu\n\n", sf,
         data.lineitem.rows());
  printf("query  page-wise:  cpu(s)  decomp(s)  cachemiss(M) |  "
         "vector-wise: cpu(s)  decomp(s)  cachemiss(M)\n");

  for (int q : {3, 4, 6, 18}) {
    QueryStats page, vec;
    PerfReading page_perf, vec_perf;
    {
      SimDisk disk;
      BufferManager bm(&disk, size_t(1) << 34, Layout::kDSM);
      PerfCounters counters;
      counters.Start();
      page = RunTpchQuery(q, db, &bm, TableScanOp::Mode::kPageWise);
      page_perf = counters.Stop();
    }
    {
      SimDisk disk;
      BufferManager bm(&disk, size_t(1) << 34, Layout::kDSM);
      PerfCounters counters;
      counters.Start();
      vec = RunTpchQuery(q, db, &bm, TableScanOp::Mode::kVectorWise);
      vec_perf = counters.Stop();
    }
    SCC_CHECK(page.checksum == vec.checksum, "modes disagree");
    auto fmt_misses = [](const PerfReading& p) {
      char buf[32];
      if (p.cache_misses < 0) {
        snprintf(buf, sizeof(buf), "   n/a");
      } else {
        snprintf(buf, sizeof(buf), "%6.2f", double(p.cache_misses) / 1e6);
      }
      return std::string(buf);
    };
    printf("%5d              %7.3f  %8.3f      %s     |              "
           "%7.3f  %8.3f      %s\n",
           q, page.cpu_seconds, page.decompress_seconds,
           fmt_misses(page_perf).c_str(), vec.cpu_seconds,
           vec.decompress_seconds, fmt_misses(vec_perf).c_str());
  }
  printf("\nPaper reference (Table 3): vector-wise wins on every query "
         "(e.g. Q18:\n14.3s vs 21.5s) with an order of magnitude fewer L2 "
         "misses (Q6: 0.38M vs\n64.9M), because page-wise decompression "
         "writes results back to RAM first.\n");
  return 0;
}

}  // namespace scc

int main(int argc, char** argv) { return scc::Main(argc, argv); }
