#ifndef SCC_BENCH_BENCH_UTIL_H_
#define SCC_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sys/perf_counters.h"
#include "sys/timer.h"
#include "util/rng.h"

// Shared helpers for the figure/table reproduction harnesses. Each bench
// binary is a standalone main() that prints the same rows/series the
// paper reports, so `for b in build/bench/*; do $b; done` regenerates the
// whole evaluation.

namespace scc {
namespace bench {

/// Synthetic values for the Section 3 microbenchmarks: codes uniform in
/// [0, 2^b), outliers above the frame with probability `exception_rate`.
template <typename T>
std::vector<T> ExceptionData(size_t n, int b, T base, double exception_rate,
                             uint64_t seed) {
  Rng rng(seed);
  std::vector<T> v(n);
  const uint64_t max_code = (uint64_t(1) << b) - 1;
  for (size_t i = 0; i < n; i++) {
    if (rng.Bernoulli(exception_rate)) {
      v[i] = T(base + T(max_code) + T(2 + rng.Uniform(100000)));
    } else {
      v[i] = T(base + T(rng.Uniform(max_code)));  // strictly below escape
    }
  }
  return v;
}

/// Runs `fn` repeatedly, returns best-of-reps seconds (steadier than the
/// mean on a shared machine).
inline double BestSeconds(int reps, const std::function<void()>& fn) {
  double best = 1e100;
  for (int r = 0; r < reps; r++) {
    Timer t;
    fn();
    double s = t.ElapsedSeconds();
    if (s < best) best = s;
  }
  return best;
}

/// Measures `fn` under the perf counter group (if available).
struct MeasuredRun {
  double seconds = 0;
  PerfReading perf;
};

inline MeasuredRun MeasureWithCounters(int reps,
                                       const std::function<void()>& fn) {
  MeasuredRun out;
  out.seconds = BestSeconds(reps, fn);
  PerfCounters counters;
  if (counters.available()) {
    counters.Start();
    fn();
    out.perf = counters.Stop();
  }
  return out;
}

/// Formats -1 readings as "n/a".
inline std::string FmtRate(double v, const char* suffix = "%") {
  char buf[32];
  if (v < 0) return "   n/a";
  snprintf(buf, sizeof(buf), "%5.1f%s", v, suffix);
  return buf;
}

inline std::string FmtIpc(double v) {
  char buf[32];
  if (v < 0) return " n/a";
  snprintf(buf, sizeof(buf), "%4.2f", v);
  return buf;
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  printf("\n=== %s ===\n", title);
  printf("(reproduces %s)\n\n", paper_ref);
}

/// Removes every occurrence of `flag` from argv (so the remainder can be
/// handed to a stricter parser, e.g. google-benchmark's). Returns whether
/// the flag was present.
inline bool StripFlag(int* argc, char** argv, const char* flag) {
  int w = 1;
  bool found = false;
  for (int i = 1; i < *argc; i++) {
    if (std::strcmp(argv[i], flag) == 0) {
      found = true;
    } else {
      argv[w++] = argv[i];
    }
  }
  *argc = w;
  return found;
}

/// Machine-readable output mode (--json): one JSON object per line per
/// benchmark, so results pipe straight into jq / a tracking dashboard.
/// `extra` appends additional numeric fields (e.g. "ipc", "speedup").
inline void EmitJsonLine(
    const std::string& name, double bytes_per_second, double ns_per_value,
    const std::vector<std::pair<std::string, double>>& extra = {}) {
  printf("{\"name\":\"%s\",\"bytes_per_second\":%.6g,\"ns_per_value\":%.6g",
         name.c_str(), bytes_per_second, ns_per_value);
  for (const auto& [key, value] : extra) {
    printf(",\"%s\":%.6g", key.c_str(), value);
  }
  printf("}\n");
}

/// Geometric mean (the right average for throughput ratios across bit
/// widths); zero/negative entries are skipped.
inline double GeoMean(const std::vector<double>& values) {
  double log_sum = 0;
  size_t count = 0;
  for (double v : values) {
    if (v > 0) {
      log_sum += std::log(v);
      count++;
    }
  }
  return count ? std::exp(log_sum / double(count)) : 0.0;
}

}  // namespace bench
}  // namespace scc

#endif  // SCC_BENCH_BENCH_UTIL_H_
