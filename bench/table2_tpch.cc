// Table 2 + Figure 8 reproduction: TPC-H with and without compression,
// under DSM and PAX storage, on two simulated RAID classes:
//   low-end   4-disk RAID,  ~80 MB/s (the paper's Opteron box)
//   mid-range 12-disk RAID, ~350 MB/s (the paper's Pentium4 box)
//
// For every implemented query we report (per the paper's Table 2):
//   * DSM and PAX compression ratios over the query's columns / row
//     groups
//   * decompression speed (decoded bytes / decompression time)
//   * query time uncompressed vs compressed, DSM and PAX
// and the Figure 8 decomposition into decompression / other CPU /
// I/O-stall time. Queries run cold (buffer pool cleared) so every chunk
// is fetched once, as in the paper's 100GB-vs-4GB-RAM setup.
//
// Scale factor defaults to 0.05 (~300K lineitems) so the whole sweep runs
// in seconds; pass a scale factor as argv[1] to increase it. Absolute
// times differ from the paper's 100 GB runs, but the structure — who is
// I/O-bound where, and the speedup vs. ratio relationship — is preserved.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench/bench_util.h"
#include "sys/telemetry.h"
#include "tpch/queries.h"

namespace scc {
namespace {

struct RunResult {
  QueryStats unc;
  QueryStats comp;
};

RunResult RunBoth(int q, const TpchDatabase& unc_db,
                  const TpchDatabase& comp_db, SimDisk::Config disk_cfg,
                  Layout layout) {
  RunResult r;
  {
    SimDisk disk(disk_cfg);
    BufferManager bm(&disk, size_t(1) << 34, layout);
    r.unc = RunTpchQuery(q, unc_db, &bm, TableScanOp::Mode::kVectorWise);
  }
  {
    SimDisk disk(disk_cfg);
    BufferManager bm(&disk, size_t(1) << 34, layout);
    r.comp = RunTpchQuery(q, comp_db, &bm, TableScanOp::Mode::kVectorWise);
  }
  SCC_CHECK(r.unc.checksum == r.comp.checksum,
            "compressed and uncompressed runs disagree");
  return r;
}

double QueryRatio(int q, const TpchDatabase& comp_db,
                  const TpchDatabase& unc_db, bool pax) {
  // DSM: ratio over the query's columns only. PAX: ratio over the full
  // row groups of the touched tables (comments included), as in Table 2.
  auto cols = QueryColumns(q);
  auto table_of = [](const TpchDatabase& db,
                     const std::string& name) -> const Table* {
    if (name == "lineitem") return &db.lineitem;
    if (name == "orders") return &db.orders;
    if (name == "customer") return &db.customer;
    if (name == "supplier") return &db.supplier;
    if (name == "part") return &db.part;
    return &db.partsupp;
  };
  double raw = 0, stored = 0;
  if (pax) {
    std::vector<std::string> tables;
    for (const auto& [t, c] : cols) {
      if (std::find(tables.begin(), tables.end(), t) == tables.end()) {
        tables.push_back(t);
      }
    }
    for (const auto& t : tables) {
      const Table* ct = table_of(comp_db, t);
      const Table* ut = table_of(unc_db, t);
      stored += double(ct->ByteSize());
      raw += double(ut->ByteSize());
    }
  } else {
    for (const auto& [t, c] : cols) {
      const StoredColumn* cc = table_of(comp_db, t)->column(c);
      const StoredColumn* uc = table_of(unc_db, t)->column(c);
      stored += double(cc->ByteSize());
      raw += double(uc->ByteSize());
    }
  }
  return stored > 0 ? raw / stored : 1.0;
}

void RunConfig(const char* label, SimDisk::Config disk_cfg,
               const TpchDatabase& unc_db, const TpchDatabase& comp_db) {
  printf("--- %s (%.0f MB/s RAID) ---\n", label, disk_cfg.bandwidth_mb_per_s);
  printf("      ratio      dec.speed   DSM time (s)          PAX time (s)\n");
  printf("query DSM  PAX    MB/s       unc.    compr.        unc.    "
         "compr.\n");
  for (int q : TpchQuerySet()) {
    RunResult dsm = RunBoth(q, unc_db, comp_db, disk_cfg, Layout::kDSM);
    RunResult pax = RunBoth(q, unc_db, comp_db, disk_cfg, Layout::kPAX);
    double dsm_ratio = QueryRatio(q, comp_db, unc_db, /*pax=*/false);
    double pax_ratio = QueryRatio(q, comp_db, unc_db, /*pax=*/true);
    // Decompression speed: decoded bytes per decompression second.
    double decoded_bytes = 0;
    for (const auto& [t, c] : QueryColumns(q)) {
      const Table* ut = (t == "lineitem")   ? &unc_db.lineitem
                        : (t == "orders")   ? &unc_db.orders
                        : (t == "customer") ? &unc_db.customer
                        : (t == "supplier") ? &unc_db.supplier
                        : (t == "part")     ? &unc_db.part
                                            : &unc_db.partsupp;
      const StoredColumn* col = ut->column(c);
      decoded_bytes += double(col->rows) * TypeSize(col->type);
    }
    double dec_speed = dsm.comp.decompress_seconds > 0
                           ? MBPerSec(decoded_bytes,
                                      dsm.comp.decompress_seconds)
                           : 0;
    printf("%5d %4.2f %4.2f %9.0f   %7.3f %7.3f       %7.3f %7.3f\n", q,
           dsm_ratio, pax_ratio, dec_speed, dsm.unc.TotalSeconds(),
           dsm.comp.TotalSeconds(), pax.unc.TotalSeconds(),
           pax.comp.TotalSeconds());
  }
  printf("\nFigure 8 decomposition (DSM, %% of uncompressed query time):\n");
  printf("query   unc: decomp proc  stall  | comp: decomp proc  stall\n");
  for (int q : TpchQuerySet()) {
    RunResult dsm = RunBoth(q, unc_db, comp_db, disk_cfg, Layout::kDSM);
    double base = dsm.unc.TotalSeconds();
    auto pct = [base](double v) { return 100.0 * v / base; };
    printf("%5d        %5.1f %5.1f %6.1f  |       %5.1f %5.1f %6.1f\n", q,
           pct(dsm.unc.decompress_seconds),
           pct(dsm.unc.ProcessingSeconds()), pct(dsm.unc.IoStallSeconds()),
           pct(dsm.comp.decompress_seconds),
           pct(dsm.comp.ProcessingSeconds()), pct(dsm.comp.IoStallSeconds()));
  }
  printf("\n");
}

/// `--threads N` leg: morsel-driven parallel Q1/Q6 vs their serial plans,
/// same data, same disk, checksums cross-checked. cpu time is the wall
/// time of the parallel region; on a single-core host expect ~1x.
void RunParallelLeg(const TpchDatabase& comp_db, SimDisk::Config disk_cfg,
                    unsigned threads) {
  printf("--- parallel scan queries (%u threads, mid-range RAID) ---\n",
         threads);
  printf("query   serial cpu (s)  parallel cpu (s)  speedup  checksum\n");
  for (int q : TpchQuerySet()) {
    if (!TpchQueryHasParallelPlan(q)) continue;
    QueryStats serial, par;
    {
      SimDisk disk(disk_cfg);
      BufferManager bm(&disk, size_t(1) << 34, Layout::kDSM);
      serial = RunTpchQuery(q, comp_db, &bm, TableScanOp::Mode::kVectorWise);
    }
    {
      SimDisk disk(disk_cfg);
      BufferManager bm(&disk, size_t(1) << 34, Layout::kDSM);
      par = RunTpchQueryParallel(q, comp_db, &bm,
                                 TableScanOp::Mode::kVectorWise, threads);
    }
    SCC_CHECK(serial.checksum == par.checksum,
              "parallel and serial plans disagree");
    printf("%5d   %14.3f  %16.3f  %6.2fx  match\n", q, serial.cpu_seconds,
           par.cpu_seconds,
           par.cpu_seconds > 0 ? serial.cpu_seconds / par.cpu_seconds : 0.0);
  }
  printf("\n");
}

}  // namespace

int Main(int argc, char** argv) {
  // Args: an optional scale factor plus optional --telemetry (metrics
  // snapshot + chrome trace at exit) and --threads N (parallel-scan
  // comparison leg on the shared pool).
  double sf = 0.05;
  bool telemetry = false;
  unsigned threads = 0;
  for (int i = 1; i < argc; i++) {
    if (strcmp(argv[i], "--telemetry") == 0) {
      telemetry = true;
    } else if (strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = unsigned(atoi(argv[++i]));
    } else {
      sf = atof(argv[i]);
    }
  }
  if (telemetry) {
    SetTelemetryEnabled(true);
    SetTraceEnabled(true);
  }
  bench::PrintHeader("TPC-H with super-scalar compression",
                     "Table 2 and Figure 8");
  printf("scale factor %.3f (all 11 Table-2 queries)\n",
         sf);
  TpchData data = GenerateTpch(sf);
  printf("lineitem rows: %zu\n", data.lineitem.rows());
  TpchDatabase comp_db =
      TpchDatabase::Build(data, ColumnCompression::kAuto, 1u << 17);
  TpchDatabase unc_db =
      TpchDatabase::Build(data, ColumnCompression::kNone, 1u << 17);
  printf("stored bytes: %.1f MB compressed vs %.1f MB raw\n\n",
         comp_db.ByteSize() / 1048576.0, unc_db.ByteSize() / 1048576.0);

  RunConfig("low-end (paper: Opteron, 4-disk RAID)", SimDisk::LowEndRaid(),
            unc_db, comp_db);
  RunConfig("mid-range (paper: Pentium4, 12-disk RAID)",
            SimDisk::MidRangeRaid(), unc_db, comp_db);

  if (threads > 0) {
    RunParallelLeg(comp_db, SimDisk::MidRangeRaid(), threads);
  }

  printf("Paper reference (Table 2 / Fig. 8): on the low-end RAID, queries "
         "stay\nI/O-bound even compressed, so speedup tracks the "
         "compression ratio (3-4x);\non the faster RAID compression makes "
         "them CPU-bound and the gain is smaller.\nPAX reads whole row "
         "groups (comments included), so its ratios and gains are\nlower "
         "than DSM's.\n");

  if (telemetry) {
    printf("\n-- telemetry --\n%s",
           MetricsRegistry::Instance().Snapshot().ToTable().c_str());
    const char* trace_path = "table2_tpch_trace.json";
    if (TraceRecorder::Instance().WriteChromeTrace(trace_path)) {
      printf("wrote %zu trace events to %s\n",
             TraceRecorder::Instance().event_count(), trace_path);
    }
  }
  return 0;
}

}  // namespace scc

int main(int argc, char** argv) { return scc::Main(argc, argv); }
