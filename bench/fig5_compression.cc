// Figure 5 reproduction: PFOR *compression* bandwidth as a function of
// the exception rate for three variants:
//   NAIVE - if-then-else exception test (escape codes)
//   PRED  - predicated miss-list append (single cursor)
//   DC    - double-cursor predication (two independent chains)
//
// Expected shape (paper, Fig. 5): NAIVE dips around unpredictable
// exception rates; PRED is flat; DC matches or beats PRED (notably on
// deeply pipelined cores) and is the most stable across platforms.
//
// PR 5 extends the write-path story past the flat kernels:
//   - pack-kernel sweep: BitPack / ForEncodePack64 / DeltaEncode64
//     bandwidth per kernel ISA across bit widths, with the geomean
//     speedup over scalar
//   - segment pipeline: end-to-end SegmentBuilder bandwidth per ISA at
//     exception rates {0, 0.01, 0.1}
//   - bulk load: thread scaling of the morsel-parallel loader, with a
//     byte-identity check against the serial build
//
// --json emits one JSON object per line instead of the tables.

#include <cstdio>
#include <cstring>
#include <span>
#include <thread>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bitpack/bitpack.h"
#include "bitpack/bitpack_dispatch.h"
#include "core/analyzer.h"
#include "core/kernels.h"
#include "core/segment_builder.h"
#include "storage/bulk_load.h"

namespace scc {
namespace {

constexpr size_t kN = 4u << 20;
constexpr int kB = 8;
constexpr int kReps = 3;

bool g_json = false;

std::vector<KernelIsa> SupportedIsas() {
  std::vector<KernelIsa> isas;
  for (int i = 0; i < kNumKernelIsas; i++) {
    if (KernelIsaSupported(KernelIsa(i))) isas.push_back(KernelIsa(i));
  }
  return isas;
}

/// Pins the dispatch table to `isa` for the enclosing scope.
class ScopedIsa {
 public:
  explicit ScopedIsa(KernelIsa isa) : prev_(ActiveKernelIsa()) {
    SetKernelIsa(isa);
  }
  ~ScopedIsa() { SetKernelIsa(prev_); }

 private:
  KernelIsa prev_;
};

void FlatKernelSection() {
  if (!g_json) {
    printf("%zu x 64-bit values, %d-bit codes; bandwidth counts input "
           "bytes\n\n",
           kN, kB);
    printf("exc.rate | NAIVE GB/s  miss%%  IPC | PRED GB/s   miss%%  IPC | "
           "DC GB/s     miss%%  IPC\n");
    printf("---------+---------------------------+---------------------------"
           "+---------------------------\n");
  }

  const int64_t base = -500;
  std::vector<uint32_t> codes(kN), miss0(kN), miss1(kN);
  std::vector<int64_t> exc(kN);

  for (double rate : {0.0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    auto data = bench::ExceptionData<int64_t>(kN, kB, base, rate,
                                              uint64_t(rate * 1000) + 7);
    const double bytes = double(kN) * sizeof(int64_t);
    size_t first = 0;

    auto naive = bench::MeasureWithCounters(kReps, [&] {
      CompressNaive(data.data(), kN, kB, base, codes.data(), exc.data());
    });
    auto pred = bench::MeasureWithCounters(kReps, [&] {
      CompressPred(data.data(), kN, kB, base, codes.data(), exc.data(),
                   &first, miss0.data());
    });
    auto dc = bench::MeasureWithCounters(kReps, [&] {
      CompressDC(data.data(), kN, kB, base, codes.data(), exc.data(), &first,
                 miss0.data(), miss1.data());
    });

    if (g_json) {
      char name[64];
      snprintf(name, sizeof(name), "fig5/naive/exc_%.2f", rate);
      bench::EmitJsonLine(name, bytes / naive.seconds,
                          naive.seconds * 1e9 / double(kN));
      snprintf(name, sizeof(name), "fig5/pred/exc_%.2f", rate);
      bench::EmitJsonLine(name, bytes / pred.seconds,
                          pred.seconds * 1e9 / double(kN));
      snprintf(name, sizeof(name), "fig5/dc/exc_%.2f", rate);
      bench::EmitJsonLine(name, bytes / dc.seconds,
                          dc.seconds * 1e9 / double(kN));
      continue;
    }
    printf("  %4.2f   | %9.2f  %s %s | %9.2f  %s %s | %9.2f  %s %s\n", rate,
           GBPerSec(bytes, naive.seconds),
           bench::FmtRate(naive.perf.BranchMissRate()).c_str(),
           bench::FmtIpc(naive.perf.IPC()).c_str(),
           GBPerSec(bytes, pred.seconds),
           bench::FmtRate(pred.perf.BranchMissRate()).c_str(),
           bench::FmtIpc(pred.perf.IPC()).c_str(),
           GBPerSec(bytes, dc.seconds),
           bench::FmtRate(dc.perf.BranchMissRate()).c_str(),
           bench::FmtIpc(dc.perf.IPC()).c_str());
  }
  if (!g_json) {
    printf("\nPaper reference (Fig. 5): compression reaches the 1-2 GB/s "
           "design target;\npredication removes NAIVE's branch dip and "
           "double-cursor is the most stable\nvariant across platforms.\n");
  }
}

void PackKernelSection() {
  const std::vector<int> widths = {1, 2, 4, 6, 8, 10, 12, 16};
  const size_t n = kN;  // multiple of 32: every group takes the fast path
  const double in_bytes = double(n) * sizeof(uint32_t);

  Rng rng(11);
  std::vector<uint32_t> vals32(n);
  std::vector<uint64_t> vals64(n), deltas64(n);
  for (size_t i = 0; i < n; i++) {
    vals32[i] = uint32_t(rng.Next());
    vals64[i] = uint64_t(1) << 40 | rng.Uniform(1u << 16);
  }
  std::vector<uint32_t> packed(PackedByteSize(n, kMaxBitWidth) / 4);

  if (!g_json) {
    printf("\n--- Pack kernels: BitPack bandwidth by ISA (input GB/s) ---\n");
    printf("  b   ");
    for (KernelIsa isa : SupportedIsas()) printf("| %-9s", KernelIsaName(isa));
    printf("\n");
  }

  // secs[isa-order][width-order]; scalar is always SupportedIsas()[0].
  const std::vector<KernelIsa> isas = SupportedIsas();
  std::vector<std::vector<double>> secs(isas.size());
  std::vector<double> speedups_avx2;
  for (size_t ii = 0; ii < isas.size(); ii++) {
    ScopedIsa pin(isas[ii]);
    for (size_t wi = 0; wi < widths.size(); wi++) {
      const int b = widths[wi];
      secs[ii].push_back(bench::BestSeconds(kReps, [&] {
        BitPack(vals32.data(), n, b, packed.data());
      }));
      const double speedup = secs[0][wi] / secs[ii][wi];
      if (isas[ii] == KernelIsa::kAvx2) speedups_avx2.push_back(speedup);
      if (g_json) {
        char name[64];
        snprintf(name, sizeof(name), "fig5/pack/%s/b%d",
                 KernelIsaName(isas[ii]), b);
        bench::EmitJsonLine(name, in_bytes / secs[ii][wi],
                            secs[ii][wi] * 1e9 / double(n),
                            {{"speedup_vs_scalar", speedup}});
      }
    }
  }
  if (!g_json) {
    for (size_t wi = 0; wi < widths.size(); wi++) {
      printf(" %3d  ", widths[wi]);
      for (size_t ii = 0; ii < isas.size(); ii++) {
        printf("| %6.2f   ", GBPerSec(in_bytes, secs[ii][wi]));
      }
      printf("\n");
    }
  }
  double geomean = bench::GeoMean(speedups_avx2);
  if (g_json) {
    if (geomean > 0) {
      bench::EmitJsonLine("fig5/pack/avx2_geomean_speedup", 0, 0,
                          {{"speedup_vs_scalar", geomean}});
    }
  } else if (geomean > 0) {
    printf("AVX2 geomean speedup vs scalar (b <= 16): %.2fx\n", geomean);
    printf("note: the \"scalar\" TU is built at -O3 and auto-vectorizes; "
           "speedups are\nrelative to that baseline, not to one value per "
           "iteration.\n");
  }

  // Fused for-encode + delta transform, the two other write-path kernels.
  const double in_bytes64 = double(n) * sizeof(uint64_t);
  for (KernelIsa isa : SupportedIsas()) {
    ScopedIsa pin(isa);
    double fe = bench::BestSeconds(kReps, [&] {
      ForEncodePack64(vals64.data(), n, 12, uint64_t(1) << 40,
                      packed.data());
    });
    double de = bench::BestSeconds(kReps, [&] {
      DeltaEncode64(vals64.data(), n, 0, deltas64.data());
    });
    if (g_json) {
      char name[64];
      snprintf(name, sizeof(name), "fig5/for_encode_pack64/%s",
               KernelIsaName(isa));
      bench::EmitJsonLine(name, in_bytes64 / fe, fe * 1e9 / double(n));
      snprintf(name, sizeof(name), "fig5/delta_encode64/%s",
               KernelIsaName(isa));
      bench::EmitJsonLine(name, in_bytes64 / de, de * 1e9 / double(n));
    } else {
      printf("%-8s ForEncodePack64(b=12) %6.2f GB/s   DeltaEncode64 "
             "%6.2f GB/s\n",
             KernelIsaName(isa), GBPerSec(in_bytes64, fe),
             GBPerSec(in_bytes64, de));
    }
  }
}

void PipelineSection() {
  if (!g_json) {
    printf("\n--- Segment pipeline: SegmentBuilder bandwidth by ISA "
           "(input GB/s) ---\n");
    printf("exc.rate ");
    for (KernelIsa isa : SupportedIsas()) printf("| %-9s", KernelIsaName(isa));
    printf("\n");
  }
  const int64_t base = 1000;
  for (double rate : {0.0, 0.01, 0.1}) {
    auto data = bench::ExceptionData<int64_t>(kN, 12, base, rate,
                                              uint64_t(rate * 1000) + 3);
    CompressionChoice<int64_t> choice = Analyzer<int64_t>::Analyze(
        std::span<const int64_t>(data).subspan(0, 64 * 1024));
    const double bytes = double(kN) * sizeof(int64_t);
    if (!g_json) printf("  %4.2f   ", rate);
    for (KernelIsa isa : SupportedIsas()) {
      ScopedIsa pin(isa);
      double secs = bench::BestSeconds(kReps, [&] {
        auto seg = SegmentBuilder<int64_t>::Build(data, choice);
        if (!seg.ok()) std::abort();
      });
      if (g_json) {
        char name[64];
        snprintf(name, sizeof(name), "fig5/pipeline/%s/exc_%.2f",
                 KernelIsaName(isa), rate);
        bench::EmitJsonLine(name, bytes / secs, secs * 1e9 / double(kN));
      } else {
        printf("| %6.2f   ", GBPerSec(bytes, secs));
      }
    }
    if (!g_json) printf("\n");
  }
}

int BulkLoadSection() {
  const size_t rows = 8u << 20;
  const size_t chunk = 64 * 1024;
  Rng rng(21);
  std::vector<int64_t> data(rows);
  int64_t t = int64_t(1) << 41;
  for (size_t i = 0; i < rows; i++) {
    t += int64_t(rng.Uniform(1u << 12));
    data[i] = t;
  }
  const double bytes = double(rows) * sizeof(int64_t);

  if (!g_json) {
    printf("\n--- Bulk load: %zu rows (%.0f MB), %zu-value chunks ---\n",
           rows, bytes / 1048576.0, chunk);
    printf("pool workers: %u (host reports %u hw threads)\n",
           ThreadPool::Instance().worker_count(),
           std::thread::hardware_concurrency());
  }
  // threads=1 segments are the reference the parallel builds must match.
  const StoredColumn* reference = nullptr;
  Table ref_table(chunk);
  double serial_secs = 0;
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    BulkLoadOptions opts;
    opts.threads = threads;
    Table table(chunk);
    Table* target = threads == 1 ? &ref_table : &table;
    double secs = bench::BestSeconds(1, [&] {
      // Bench both a fresh column build per rep and the adopt; column
      // names must differ per rep, so bench once (loads are long enough).
      static int uniq = 0;
      char name[32];
      snprintf(name, sizeof(name), "ts%d", uniq++);
      Status st = BulkLoadColumn<int64_t>(target, name, data, opts);
      if (!st.ok()) std::abort();
    });
    if (threads == 1) {
      serial_secs = secs;
      reference = ref_table.column(size_t(0));
    } else {
      const StoredColumn* col = table.column(size_t(0));
      if (col->chunk_count() != reference->chunk_count()) {
        fprintf(stderr, "FAIL: chunk count diverged at threads=%u\n",
                threads);
        return 1;
      }
      for (size_t ci = 0; ci < col->chunk_count(); ci++) {
        const AlignedBuffer& a = reference->chunks[ci];
        const AlignedBuffer& b = col->chunks[ci];
        if (a.size() != b.size() ||
            std::memcmp(a.data(), b.data(), a.size()) != 0) {
          fprintf(stderr,
                  "FAIL: segment bytes diverged at threads=%u chunk=%zu\n",
                  threads, ci);
          return 1;
        }
      }
    }
    double scaling = serial_secs > 0 ? serial_secs / secs : 0;
    if (g_json) {
      char name[64];
      snprintf(name, sizeof(name), "fig5/bulk_load/threads_%u", threads);
      bench::EmitJsonLine(name, bytes / secs, secs * 1e9 / double(rows),
                          {{"scaling_vs_serial", scaling}});
    } else {
      printf("threads=%u  %7.1f MB/s  (%.2fx vs serial%s)\n", threads,
             MBPerSec(bytes, secs), scaling,
             threads == 1 ? "" : ", segments byte-identical");
    }
  }
  if (!g_json) {
    printf("note: scaling needs physical cores; on a 1-core host the curve "
           "is flat.\nPer-chunk analysis dominates load time (see "
           "ROADMAP.md open items).\n");
  }
  return 0;
}

int Main(int argc, char** argv) {
  g_json = bench::StripFlag(&argc, argv, "--json");
  if (!g_json) {
    bench::PrintHeader("Compression bandwidth vs. exception rate",
                       "Figure 5");
  }
  FlatKernelSection();
  PackKernelSection();
  PipelineSection();
  return BulkLoadSection();
}

}  // namespace
}  // namespace scc

int main(int argc, char** argv) { return scc::Main(argc, argv); }
