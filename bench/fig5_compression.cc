// Figure 5 reproduction: PFOR *compression* bandwidth as a function of
// the exception rate for three variants:
//   NAIVE - if-then-else exception test (escape codes)
//   PRED  - predicated miss-list append (single cursor)
//   DC    - double-cursor predication (two independent chains)
//
// Expected shape (paper, Fig. 5): NAIVE dips around unpredictable
// exception rates; PRED is flat; DC matches or beats PRED (notably on
// deeply pipelined cores) and is the most stable across platforms.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/kernels.h"

namespace scc {
namespace {

constexpr size_t kN = 4u << 20;
constexpr int kB = 8;
constexpr int kReps = 3;

}  // namespace

int Main() {
  bench::PrintHeader("Compression bandwidth vs. exception rate", "Figure 5");
  printf("%zu x 64-bit values, %d-bit codes; bandwidth counts input bytes\n\n",
         kN, kB);
  printf("exc.rate | NAIVE GB/s  miss%%  IPC | PRED GB/s   miss%%  IPC | "
         "DC GB/s     miss%%  IPC\n");
  printf("---------+---------------------------+---------------------------+"
         "---------------------------\n");

  const int64_t base = -500;
  std::vector<uint32_t> codes(kN), miss0(kN), miss1(kN);
  std::vector<int64_t> exc(kN);

  for (double rate : {0.0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    auto data = bench::ExceptionData<int64_t>(kN, kB, base, rate,
                                              uint64_t(rate * 1000) + 7);
    const double bytes = double(kN) * sizeof(int64_t);
    size_t first = 0;

    auto naive = bench::MeasureWithCounters(kReps, [&] {
      CompressNaive(data.data(), kN, kB, base, codes.data(), exc.data());
    });
    auto pred = bench::MeasureWithCounters(kReps, [&] {
      CompressPred(data.data(), kN, kB, base, codes.data(), exc.data(),
                   &first, miss0.data());
    });
    auto dc = bench::MeasureWithCounters(kReps, [&] {
      CompressDC(data.data(), kN, kB, base, codes.data(), exc.data(), &first,
                 miss0.data(), miss1.data());
    });

    printf("  %4.2f   | %9.2f  %s %s | %9.2f  %s %s | %9.2f  %s %s\n", rate,
           GBPerSec(bytes, naive.seconds),
           bench::FmtRate(naive.perf.BranchMissRate()).c_str(),
           bench::FmtIpc(naive.perf.IPC()).c_str(),
           GBPerSec(bytes, pred.seconds),
           bench::FmtRate(pred.perf.BranchMissRate()).c_str(),
           bench::FmtIpc(pred.perf.IPC()).c_str(),
           GBPerSec(bytes, dc.seconds),
           bench::FmtRate(dc.perf.BranchMissRate()).c_str(),
           bench::FmtIpc(dc.perf.IPC()).c_str());
  }
  printf("\nPaper reference (Fig. 5): compression reaches the 1-2 GB/s "
         "design target;\npredication removes NAIVE's branch dip and "
         "double-cursor is the most stable\nvariant across platforms.\n");
  return 0;
}

}  // namespace scc

int main() { return scc::Main(); }
