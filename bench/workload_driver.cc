// workload_driver — closed-loop client harness for scc_serve
// (docs/SERVICE.md). Where bench/tail_latency measures the library's
// latency distribution in-process, this one measures the *service*: each
// client is a real TCP connection issuing one request at a time, so the
// numbers include framing, the admission gate, pool queueing, and the
// reply path.
//
// Mixes mirror tail_latency:
//   read_only    100% point lookups
//   mixed_80_20  80% point lookups / 20% BETWEEN range scans
//
// Request streams are deterministic per (--seed, client index): the same
// invocation replays byte-identical key and predicate sequences, so a
// latency diff between two runs is the server's doing, not the driver's.
//
// --verify exploits the synthetic table's sequential `id` column
// (scc_serve --rows builds it; closed forms need no reference copy):
//   point  value(id, row)              == row
//   scan   id WHERE id BETWEEN lo..hi  -> total_matches == hi-lo+1 and
//                                         values[i] == lo+i
//   agg    SUM/COUNT/MIN/MAX over the same predicate vs closed forms
// Any failed or incorrect response makes the driver exit 1 — the CI
// service smoke leg runs both mixes with --verify and trusts that.
//
// Shed (Unavailable) and DeadlineExceeded responses are the service
// working as designed under overload; they are counted and reported but
// are not failures and not latency samples.
//
// Modes (--mode):
//   closed      one outstanding request per connection (the classic
//               closed loop above)
//   pipelined   each connection keeps --depth requests in flight over
//               one PipelinedClient; responses arrive in completion
//               order and are correlated by request_id, so every reply
//               is still verified against the exact request that earned
//               it. Mix names gain a ".pipelined" suffix in the report.
//   both        closed then pipelined, one report per mode
//
// --tenants N assigns client i to tenant 1 + (i % N) (protocol v2) and
// reports per-tenant ok/shed tallies — point it at a server started with
// scc_serve --tenant-quotas to watch weighted admission do its thing.
//
//   workload_driver --port P [--host H] [--clients N] [--ops N]
//                   [--mix read_only|mixed_80_20|all]
//                   [--mode closed|pipelined|both] [--depth N]
//                   [--tenants N] [--seed S]
//                   [--deadline-us N] [--verify] [--json PATH]
//
// --json writes the BenchReport format tools/scc_bench_diff consumes;
// the checked-in BENCH_PR10.json baseline was recorded with the defaults
// plus --mode both against `scc_serve --rows 131072`.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "server/client.h"
#include "sys/timer.h"
#include "util/rng.h"

namespace scc {
namespace {

using server::AggOp;
using server::Client;
using server::PipelinedClient;
using server::Request;
using server::RequestType;
using server::Response;

struct Lats {
  std::vector<uint64_t> ns;  // sorted after the run
  uint64_t Exact(double q) const {
    if (ns.empty()) return 0;
    double r = q * double(ns.size() - 1);
    return ns[size_t(r + 0.5)];
  }
};

struct MixStats {
  std::string name;
  Lats point;
  Lats scan;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t failed = 0;     // transport/protocol errors, unexpected codes
  uint64_t incorrect = 0;  // --verify mismatches
  double wall_seconds = 0;
  // Indexed by tenant id; sized tenants+1 when --tenants is set, else
  // empty (tenant counters off).
  std::vector<uint64_t> tenant_ok;
  std::vector<uint64_t> tenant_shed;

  double OpsPerSec() const {
    const uint64_t n = ok + shed + deadline_exceeded;
    return wall_seconds > 0 ? double(n) / wall_seconds : 0;
  }
};

struct Options {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  unsigned clients = 8;
  size_t ops = 4000;  // per mix, split across clients
  uint64_t seed = 2026;
  uint64_t deadline_micros = 0;
  std::string mix = "all";
  std::string mode = "closed";
  size_t depth = 16;     // pipelined requests in flight per connection
  unsigned tenants = 0;  // 0 = everything is tenant 0
  bool verify = false;
  const char* json_path = nullptr;

  uint32_t TenantFor(unsigned client) const {
    return tenants == 0 ? 0 : 1 + client % tenants;
  }
};

/// Per-client counters, merged into MixStats once per thread at the end
/// of its run — the hot loop never touches a shared lock, so the
/// driver's own synchronization can't throttle the throughput it is
/// supposed to measure.
struct LocalStats {
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t failed = 0;
  uint64_t incorrect = 0;
  std::vector<uint64_t> tenant_ok;
  std::vector<uint64_t> tenant_shed;

  explicit LocalStats(unsigned tenants) {
    if (tenants > 0) {
      tenant_ok.assign(tenants + 1, 0);
      tenant_shed.assign(tenants + 1, 0);
    }
  }
  void MergeInto(MixStats* s, std::mutex* mu) const {
    std::lock_guard<std::mutex> lock(*mu);
    s->ok += ok;
    s->shed += shed;
    s->deadline_exceeded += deadline_exceeded;
    s->failed += failed;
    s->incorrect += incorrect;
    for (size_t t = 0; t < tenant_ok.size(); t++) {
      s->tenant_ok[t] += tenant_ok[t];
      s->tenant_shed[t] += tenant_shed[t];
    }
  }
};

/// Classifies one wire-level result into the client's local counters.
/// Returns the response when it is OK (so the caller can verify the
/// payload), nullptr otherwise. Only OK responses become latency samples.
const Response* Classify(const Result<Response>& r, LocalStats* s,
                         uint32_t tenant = 0) {
  if (!r.ok()) {
    s->failed++;
    return nullptr;
  }
  const Response& resp = r.ValueOrDie();
  switch (resp.code) {
    case StatusCode::kOk:
      s->ok++;
      if (tenant < s->tenant_ok.size()) s->tenant_ok[tenant]++;
      return &resp;
    case StatusCode::kUnavailable:
      s->shed++;
      if (tenant < s->tenant_shed.size()) s->tenant_shed[tenant]++;
      return nullptr;
    case StatusCode::kDeadlineExceeded:
      s->deadline_exceeded++;
      return nullptr;
    default:
      s->failed++;
      return nullptr;
  }
}

/// Up-front aggregate sanity pass (verify mode): SUM/COUNT/MIN/MAX over
/// id BETWEEN lo..hi against closed forms. Runs on one connection before
/// the timed mixes so aggregate correctness is checked end-to-end
/// without muddying the point/scan latency series.
bool VerifyAggregates(Client* c, uint64_t rows, uint64_t seed) {
  Rng rng(seed + 0xa66);
  for (int i = 0; i < 16; i++) {
    const uint64_t lo = rng.Uniform(rows);
    const uint64_t hi = std::min(lo + rng.Uniform(4096), rows - 1);
    const uint64_t n = hi - lo + 1;
    struct Check {
      AggOp op;
      uint64_t want;
    } checks[] = {
        {AggOp::kSum, (lo + hi) * n / 2},
        {AggOp::kCount, n},
        {AggOp::kMin, lo},
        {AggOp::kMax, hi},
    };
    for (const Check& chk : checks) {
      Result<Response> r =
          c->Aggregate(chk.op, "id", "id", int64_t(lo), int64_t(hi));
      if (!r.ok() || r.ValueOrDie().code != StatusCode::kOk ||
          uint64_t(r.ValueOrDie().value) != chk.want) {
        fprintf(stderr,
                "verify: aggregate op=%d [%llu,%llu] wrong (want %llu, "
                "got %lld, %s)\n",
                int(chk.op), (unsigned long long)lo, (unsigned long long)hi,
                (unsigned long long)chk.want,
                r.ok() ? (long long)r.ValueOrDie().value : -1,
                r.ok() ? r.ValueOrDie().error.c_str()
                       : r.status().ToString().c_str());
        return false;
      }
    }
  }
  return true;
}

MixStats RunMix(const Options& opt, const std::string& name, int scan_pct,
                uint64_t rows) {
  MixStats stats;
  stats.name = name;
  if (opt.tenants > 0) {
    stats.tenant_ok.assign(opt.tenants + 1, 0);
    stats.tenant_shed.assign(opt.tenants + 1, 0);
  }
  std::mutex mu;
  std::vector<std::vector<uint64_t>> point_lat(opt.clients);
  std::vector<std::vector<uint64_t>> scan_lat(opt.clients);
  const size_t per = (opt.ops + opt.clients - 1) / opt.clients;

  Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(opt.clients);
  for (unsigned client = 0; client < opt.clients; client++) {
    threads.emplace_back([&, client] {
      Result<Client> conn = Client::Connect(opt.host, opt.port);
      if (!conn.ok()) {
        std::lock_guard<std::mutex> lock(mu);
        stats.failed += per;
        return;
      }
      Client c = conn.MoveValueOrDie();
      const uint32_t tenant = opt.TenantFor(client);
      c.set_tenant_id(tenant);
      LocalStats local(opt.tenants);
      // Deterministic per (seed, client): replays identical request
      // streams across runs. The mix name keeps the two mixes' streams
      // distinct without coupling them to run order.
      Rng rng(opt.seed + 7919 * client + (scan_pct > 0 ? 104729 : 0));
      for (size_t i = 0; i < per; i++) {
        const bool scan = int(rng.Uniform(100)) < scan_pct;
        if (scan) {
          const uint64_t lo = rng.Uniform(rows);
          const uint64_t hi = std::min(lo + 1 + rng.Uniform(512), rows - 1);
          const uint64_t want = hi - lo + 1;
          Timer t;
          Result<Response> r = c.Scan("id", "id", int64_t(lo), int64_t(hi),
                                      want, opt.deadline_micros);
          const uint64_t ns = uint64_t(t.ElapsedNanos());
          if (const Response* resp = Classify(r, &local, tenant)) {
            scan_lat[client].push_back(ns);
            bool good = resp->total_matches == want &&
                        resp->values.size() == size_t(want);
            for (size_t k = 0; good && k < resp->values.size(); k++) {
              good = resp->values[k] == int64_t(lo + k);
            }
            if (opt.verify && !good) local.incorrect++;
          }
        } else {
          const uint64_t row = rng.Uniform(rows);
          Timer t;
          Result<Response> r = c.Point("id", row, opt.deadline_micros);
          const uint64_t ns = uint64_t(t.ElapsedNanos());
          if (const Response* resp = Classify(r, &local, tenant)) {
            point_lat[client].push_back(ns);
            if (opt.verify && uint64_t(resp->value) != row) local.incorrect++;
          }
        }
        if (!c.connected()) break;  // transport gone; stop this client
      }
      local.MergeInto(&stats, &mu);
    });
  }
  for (std::thread& t : threads) t.join();
  stats.wall_seconds = wall.ElapsedSeconds();

  for (auto& v : point_lat) {
    stats.point.ns.insert(stats.point.ns.end(), v.begin(), v.end());
  }
  for (auto& v : scan_lat) {
    stats.scan.ns.insert(stats.scan.ns.end(), v.begin(), v.end());
  }
  std::sort(stats.point.ns.begin(), stats.point.ns.end());
  std::sort(stats.scan.ns.begin(), stats.scan.ns.end());
  return stats;
}

/// Pipelined variant of RunMix: each client keeps opt.depth requests in
/// flight on one PipelinedClient. Responses complete in any order, so
/// every send is remembered by request_id and verified against its own
/// parameters when its reply surfaces; latency is send -> reply for that
/// id (it includes queueing behind the other depth-1 in-flight requests,
/// which is the price pipelining pays for its throughput).
MixStats RunPipelinedMix(const Options& opt, const std::string& name,
                         int scan_pct, uint64_t rows) {
  MixStats stats;
  stats.name = name;
  if (opt.tenants > 0) {
    stats.tenant_ok.assign(opt.tenants + 1, 0);
    stats.tenant_shed.assign(opt.tenants + 1, 0);
  }
  std::mutex mu;
  std::vector<std::vector<uint64_t>> point_lat(opt.clients);
  std::vector<std::vector<uint64_t>> scan_lat(opt.clients);
  const size_t per = (opt.ops + opt.clients - 1) / opt.clients;
  const size_t depth = opt.depth == 0 ? 1 : opt.depth;

  Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(opt.clients);
  for (unsigned client = 0; client < opt.clients; client++) {
    threads.emplace_back([&, client] {
      Result<PipelinedClient> conn =
          PipelinedClient::Connect(opt.host, opt.port);
      if (!conn.ok()) {
        std::lock_guard<std::mutex> lock(mu);
        stats.failed += per;
        return;
      }
      PipelinedClient c = conn.MoveValueOrDie();
      const uint32_t tenant = opt.TenantFor(client);
      c.set_tenant_id(tenant);
      LocalStats local(opt.tenants);
      Rng rng(opt.seed + 7919 * client + (scan_pct > 0 ? 104729 : 0));
      struct Pending {
        bool scan = false;
        uint64_t row = 0;  // point: expected value
        uint64_t lo = 0;   // scan: predicate + expected match count
        uint64_t want = 0;
        Timer sent;
      };
      std::unordered_map<uint64_t, Pending> pend;
      pend.reserve(depth * 2);
      size_t sent = 0;
      size_t done = 0;
      while (done < per) {
        while (sent < per && pend.size() < depth && c.connected()) {
          Pending p;
          Request req;
          p.scan = int(rng.Uniform(100)) < scan_pct;
          req.deadline_micros = opt.deadline_micros;
          if (p.scan) {
            p.lo = rng.Uniform(rows);
            const uint64_t hi =
                std::min(p.lo + 1 + rng.Uniform(512), rows - 1);
            p.want = hi - p.lo + 1;
            req.type = RequestType::kScan;
            req.column = "id";
            req.filter_column = "id";
            req.lo = int64_t(p.lo);
            req.hi = int64_t(hi);
            req.limit = p.want;
          } else {
            p.row = rng.Uniform(rows);
            req.type = RequestType::kPoint;
            req.column = "id";
            req.row = p.row;
          }
          Result<uint64_t> id = c.Send(std::move(req));
          if (!id.ok()) break;
          p.sent.Reset();
          pend.emplace(id.ValueOrDie(), std::move(p));
          sent++;
        }
        if (pend.empty()) {
          // Transport died with requests unsent: account and bail.
          local.failed += per - done;
          local.MergeInto(&stats, &mu);
          return;
        }
        Result<Response> r = c.Next();
        done++;
        const Response* resp = Classify(r, &local, tenant);
        if (!r.ok()) continue;  // connection is gone; loop drains via pend
        auto it = pend.find(r.ValueOrDie().request_id);
        if (it == pend.end()) {
          // A response for a request we never sent (or answered twice):
          // correlation is broken, which --verify treats as incorrect.
          local.incorrect++;
          continue;
        }
        Pending p = std::move(it->second);
        const uint64_t ns = uint64_t(p.sent.ElapsedNanos());
        pend.erase(it);
        if (resp == nullptr) continue;  // shed/deadline: no sample
        if (p.scan) {
          scan_lat[client].push_back(ns);
          bool good = resp->total_matches == p.want &&
                      resp->values.size() == size_t(p.want);
          for (size_t k = 0; good && k < resp->values.size(); k++) {
            good = resp->values[k] == int64_t(p.lo + k);
          }
          if (opt.verify && !good) local.incorrect++;
        } else {
          point_lat[client].push_back(ns);
          if (opt.verify && uint64_t(resp->value) != p.row) local.incorrect++;
        }
      }
      local.MergeInto(&stats, &mu);
    });
  }
  for (std::thread& t : threads) t.join();
  stats.wall_seconds = wall.ElapsedSeconds();

  for (auto& v : point_lat) {
    stats.point.ns.insert(stats.point.ns.end(), v.begin(), v.end());
  }
  for (auto& v : scan_lat) {
    stats.scan.ns.insert(stats.scan.ns.end(), v.begin(), v.end());
  }
  std::sort(stats.point.ns.begin(), stats.point.ns.end());
  std::sort(stats.scan.ns.begin(), stats.scan.ns.end());
  return stats;
}

void PrintAndCollect(const MixStats& s, std::string* metrics_json) {
  char buf[256];
  struct Series {
    const char* label;
    const Lats* lats;
  } series[] = {{"point", &s.point}, {"scan", &s.scan}};
  for (const Series& ser : series) {
    if (ser.lats->ns.empty()) continue;
    printf("%-12s %-6s %10.1f %10.1f %10.1f %10.1f %10zu\n", s.name.c_str(),
           ser.label, ser.lats->Exact(0.50) / 1e3, ser.lats->Exact(0.95) / 1e3,
           ser.lats->Exact(0.99) / 1e3, ser.lats->Exact(0.999) / 1e3,
           ser.lats->ns.size());
    for (const auto& [q, label] :
         {std::pair<double, const char*>{0.50, "p50_ns"},
          {0.95, "p95_ns"},
          {0.99, "p99_ns"},
          {0.999, "p999_ns"}}) {
      snprintf(buf, sizeof(buf), "\"%s.%s.%s\":%llu,", s.name.c_str(),
               ser.label, label, (unsigned long long)ser.lats->Exact(q));
      *metrics_json += buf;
    }
  }
  printf("%-12s %-6s ok %llu shed %llu deadline %llu failed %llu "
         "incorrect %llu  %.0f ops/s\n",
         s.name.c_str(), "total", (unsigned long long)s.ok,
         (unsigned long long)s.shed, (unsigned long long)s.deadline_exceeded,
         (unsigned long long)s.failed, (unsigned long long)s.incorrect,
         s.OpsPerSec());
  snprintf(buf, sizeof(buf),
           "\"%s.ops_per_sec\":%.1f,\"%s.shed\":%llu,"
           "\"%s.deadline_exceeded\":%llu,",
           s.name.c_str(), s.OpsPerSec(), s.name.c_str(),
           (unsigned long long)s.shed, s.name.c_str(),
           (unsigned long long)s.deadline_exceeded);
  *metrics_json += buf;
  for (size_t t = 1; t < s.tenant_ok.size(); t++) {
    printf("%-12s tenant %zu: ok %llu shed %llu\n", s.name.c_str(), t,
           (unsigned long long)s.tenant_ok[t],
           (unsigned long long)s.tenant_shed[t]);
    snprintf(buf, sizeof(buf),
             "\"%s.tenant.%zu.ok\":%llu,\"%s.tenant.%zu.shed\":%llu,",
             s.name.c_str(), t, (unsigned long long)s.tenant_ok[t],
             s.name.c_str(), t, (unsigned long long)s.tenant_shed[t]);
    *metrics_json += buf;
  }
}

int Run(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; i++) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(argv[i], "--host") == 0) {
      if (const char* v = next()) opt.host = v;
    } else if (std::strcmp(argv[i], "--port") == 0) {
      if (const char* v = next()) opt.port = uint16_t(std::atoi(v));
    } else if (std::strcmp(argv[i], "--clients") == 0) {
      if (const char* v = next()) opt.clients = unsigned(std::atoi(v));
    } else if (std::strcmp(argv[i], "--ops") == 0) {
      if (const char* v = next()) opt.ops = size_t(std::atoll(v));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      if (const char* v = next()) opt.seed = uint64_t(std::atoll(v));
    } else if (std::strcmp(argv[i], "--deadline-us") == 0) {
      if (const char* v = next()) opt.deadline_micros = uint64_t(std::atoll(v));
    } else if (std::strcmp(argv[i], "--mix") == 0) {
      if (const char* v = next()) opt.mix = v;
    } else if (std::strcmp(argv[i], "--mode") == 0) {
      if (const char* v = next()) opt.mode = v;
    } else if (std::strcmp(argv[i], "--depth") == 0) {
      if (const char* v = next()) opt.depth = size_t(std::atoll(v));
    } else if (std::strcmp(argv[i], "--tenants") == 0) {
      if (const char* v = next()) opt.tenants = unsigned(std::atoi(v));
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      opt.verify = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      opt.json_path = next();
    } else {
      fprintf(stderr,
              "usage: %s --port P [--host H] [--clients N] [--ops N]\n"
              "          [--mix read_only|mixed_80_20|all]\n"
              "          [--mode closed|pipelined|both] [--depth N]\n"
              "          [--tenants N] [--seed S]\n"
              "          [--deadline-us N] [--verify] [--json PATH]\n",
              argv[0]);
      return 2;
    }
  }
  if (opt.port == 0) {
    fprintf(stderr, "error: --port is required\n");
    return 2;
  }
  if (opt.clients == 0) opt.clients = 1;
  if (opt.mode != "closed" && opt.mode != "pipelined" && opt.mode != "both") {
    fprintf(stderr, "error: unknown --mode %s\n", opt.mode.c_str());
    return 2;
  }

  // Row count comes from the server — the driver never assumes the table
  // size, only the `id` column's shape when --verify is on.
  Result<Client> probe = Client::Connect(opt.host, opt.port);
  if (!probe.ok()) {
    fprintf(stderr, "error: %s\n", probe.status().ToString().c_str());
    return 1;
  }
  Client pc = probe.MoveValueOrDie();
  Result<Response> info = pc.TableInfo();
  if (!info.ok() || info.ValueOrDie().code != StatusCode::kOk) {
    fprintf(stderr, "error: table info failed: %s\n",
            info.ok() ? info.ValueOrDie().error.c_str()
                      : info.status().ToString().c_str());
    return 1;
  }
  const uint64_t rows = info.ValueOrDie().rows;
  if (rows == 0) {
    fprintf(stderr, "error: server table is empty\n");
    return 1;
  }
  printf("server %s:%u: %llu rows, %zu columns; %u clients, %zu ops/mix\n",
         opt.host.c_str(), opt.port, (unsigned long long)rows,
         info.ValueOrDie().columns.size(), opt.clients, opt.ops);

  if (opt.verify && !VerifyAggregates(&pc, rows, opt.seed)) return 1;
  pc.Close();

  struct Mix {
    const char* name;
    int scan_pct;
  };
  const Mix mixes[] = {{"read_only", 0}, {"mixed_80_20", 20}};

  printf("%-12s %-6s %10s %10s %10s %10s %10s\n", "mix", "type", "p50(us)",
         "p95(us)", "p99(us)", "p999(us)", "samples");
  std::string metrics_json;
  uint64_t failed = 0, incorrect = 0;
  for (const Mix& mix : mixes) {
    if (opt.mix != "all" && opt.mix != mix.name) continue;
    if (opt.mode == "closed" || opt.mode == "both") {
      MixStats s = RunMix(opt, mix.name, mix.scan_pct, rows);
      PrintAndCollect(s, &metrics_json);
      failed += s.failed;
      incorrect += s.incorrect;
    }
    if (opt.mode == "pipelined" || opt.mode == "both") {
      MixStats s = RunPipelinedMix(opt, std::string(mix.name) + ".pipelined",
                                   mix.scan_pct, rows);
      PrintAndCollect(s, &metrics_json);
      failed += s.failed;
      incorrect += s.incorrect;
    }
  }

  if (opt.json_path != nullptr) {
    if (!metrics_json.empty()) metrics_json.pop_back();  // trailing comma
    FILE* f = std::fopen(opt.json_path, "w");
    if (f == nullptr) {
      fprintf(stderr, "error: cannot write %s\n", opt.json_path);
      return 1;
    }
    fprintf(f,
            "{\"bench\":\"workload_driver\",\"config\":{\"clients\":%u,"
            "\"ops\":%zu,\"seed\":%llu,\"deadline_us\":%llu,"
            "\"mode\":\"%s\",\"depth\":%zu,\"tenants\":%u},"
            "\"metrics\":{%s}}\n",
            opt.clients, opt.ops, (unsigned long long)opt.seed,
            (unsigned long long)opt.deadline_micros, opt.mode.c_str(),
            opt.depth, opt.tenants, metrics_json.c_str());
    std::fclose(f);
    printf("wrote %s\n", opt.json_path);
  }

  if (failed > 0 || incorrect > 0) {
    fprintf(stderr, "FAIL: %llu failed, %llu incorrect responses\n",
            (unsigned long long)failed, (unsigned long long)incorrect);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace scc

int main(int argc, char** argv) { return scc::Run(argc, argv); }
