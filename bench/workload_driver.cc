// workload_driver — closed-loop client harness for scc_serve
// (docs/SERVICE.md). Where bench/tail_latency measures the library's
// latency distribution in-process, this one measures the *service*: each
// client is a real TCP connection issuing one request at a time, so the
// numbers include framing, the admission gate, pool queueing, and the
// reply path.
//
// Mixes mirror tail_latency:
//   read_only    100% point lookups
//   mixed_80_20  80% point lookups / 20% BETWEEN range scans
//
// Request streams are deterministic per (--seed, client index): the same
// invocation replays byte-identical key and predicate sequences, so a
// latency diff between two runs is the server's doing, not the driver's.
//
// --verify exploits the synthetic table's sequential `id` column
// (scc_serve --rows builds it; closed forms need no reference copy):
//   point  value(id, row)              == row
//   scan   id WHERE id BETWEEN lo..hi  -> total_matches == hi-lo+1 and
//                                         values[i] == lo+i
//   agg    SUM/COUNT/MIN/MAX over the same predicate vs closed forms
// Any failed or incorrect response makes the driver exit 1 — the CI
// service smoke leg runs both mixes with --verify and trusts that.
//
// Shed (Unavailable) and DeadlineExceeded responses are the service
// working as designed under overload; they are counted and reported but
// are not failures and not latency samples.
//
//   workload_driver --port P [--host H] [--clients N] [--ops N]
//                   [--mix read_only|mixed_80_20|all] [--seed S]
//                   [--deadline-us N] [--verify] [--json PATH]
//
// --json writes the BenchReport format tools/scc_bench_diff consumes;
// the checked-in BENCH_PR9.json baseline was recorded with the defaults
// against `scc_serve --rows 131072`.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "sys/timer.h"
#include "util/rng.h"

namespace scc {
namespace {

using server::AggOp;
using server::Client;
using server::Response;

struct Lats {
  std::vector<uint64_t> ns;  // sorted after the run
  uint64_t Exact(double q) const {
    if (ns.empty()) return 0;
    double r = q * double(ns.size() - 1);
    return ns[size_t(r + 0.5)];
  }
};

struct MixStats {
  std::string name;
  Lats point;
  Lats scan;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t failed = 0;     // transport/protocol errors, unexpected codes
  uint64_t incorrect = 0;  // --verify mismatches
  double wall_seconds = 0;

  double OpsPerSec() const {
    const uint64_t n = ok + shed + deadline_exceeded;
    return wall_seconds > 0 ? double(n) / wall_seconds : 0;
  }
};

struct Options {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  unsigned clients = 8;
  size_t ops = 4000;  // per mix, split across clients
  uint64_t seed = 2026;
  uint64_t deadline_micros = 0;
  std::string mix = "all";
  bool verify = false;
  const char* json_path = nullptr;
};

/// Classifies one wire-level result into the mix counters. Returns the
/// response when it is OK (so the caller can verify the payload),
/// nullptr otherwise. Only OK responses become latency samples.
const Response* Classify(const Result<Response>& r, MixStats* s,
                         std::mutex* mu) {
  std::lock_guard<std::mutex> lock(*mu);
  if (!r.ok()) {
    s->failed++;
    return nullptr;
  }
  const Response& resp = r.ValueOrDie();
  switch (resp.code) {
    case StatusCode::kOk:
      s->ok++;
      return &resp;
    case StatusCode::kUnavailable:
      s->shed++;
      return nullptr;
    case StatusCode::kDeadlineExceeded:
      s->deadline_exceeded++;
      return nullptr;
    default:
      s->failed++;
      return nullptr;
  }
}

/// Up-front aggregate sanity pass (verify mode): SUM/COUNT/MIN/MAX over
/// id BETWEEN lo..hi against closed forms. Runs on one connection before
/// the timed mixes so aggregate correctness is checked end-to-end
/// without muddying the point/scan latency series.
bool VerifyAggregates(Client* c, uint64_t rows, uint64_t seed) {
  Rng rng(seed + 0xa66);
  for (int i = 0; i < 16; i++) {
    const uint64_t lo = rng.Uniform(rows);
    const uint64_t hi = std::min(lo + rng.Uniform(4096), rows - 1);
    const uint64_t n = hi - lo + 1;
    struct Check {
      AggOp op;
      uint64_t want;
    } checks[] = {
        {AggOp::kSum, (lo + hi) * n / 2},
        {AggOp::kCount, n},
        {AggOp::kMin, lo},
        {AggOp::kMax, hi},
    };
    for (const Check& chk : checks) {
      Result<Response> r =
          c->Aggregate(chk.op, "id", "id", int64_t(lo), int64_t(hi));
      if (!r.ok() || r.ValueOrDie().code != StatusCode::kOk ||
          uint64_t(r.ValueOrDie().value) != chk.want) {
        fprintf(stderr,
                "verify: aggregate op=%d [%llu,%llu] wrong (want %llu, "
                "got %lld, %s)\n",
                int(chk.op), (unsigned long long)lo, (unsigned long long)hi,
                (unsigned long long)chk.want,
                r.ok() ? (long long)r.ValueOrDie().value : -1,
                r.ok() ? r.ValueOrDie().error.c_str()
                       : r.status().ToString().c_str());
        return false;
      }
    }
  }
  return true;
}

MixStats RunMix(const Options& opt, const std::string& name, int scan_pct,
                uint64_t rows) {
  MixStats stats;
  stats.name = name;
  std::mutex mu;
  std::vector<std::vector<uint64_t>> point_lat(opt.clients);
  std::vector<std::vector<uint64_t>> scan_lat(opt.clients);
  const size_t per = (opt.ops + opt.clients - 1) / opt.clients;

  Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(opt.clients);
  for (unsigned client = 0; client < opt.clients; client++) {
    threads.emplace_back([&, client] {
      Result<Client> conn = Client::Connect(opt.host, opt.port);
      if (!conn.ok()) {
        std::lock_guard<std::mutex> lock(mu);
        stats.failed += per;
        return;
      }
      Client c = conn.MoveValueOrDie();
      // Deterministic per (seed, client): replays identical request
      // streams across runs. The mix name keeps the two mixes' streams
      // distinct without coupling them to run order.
      Rng rng(opt.seed + 7919 * client + (scan_pct > 0 ? 104729 : 0));
      for (size_t i = 0; i < per; i++) {
        const bool scan = int(rng.Uniform(100)) < scan_pct;
        if (scan) {
          const uint64_t lo = rng.Uniform(rows);
          const uint64_t hi = std::min(lo + 1 + rng.Uniform(512), rows - 1);
          const uint64_t want = hi - lo + 1;
          Timer t;
          Result<Response> r = c.Scan("id", "id", int64_t(lo), int64_t(hi),
                                      want, opt.deadline_micros);
          const uint64_t ns = uint64_t(t.ElapsedNanos());
          if (const Response* resp = Classify(r, &stats, &mu)) {
            scan_lat[client].push_back(ns);
            bool good = resp->total_matches == want &&
                        resp->values.size() == size_t(want);
            for (size_t k = 0; good && k < resp->values.size(); k++) {
              good = resp->values[k] == int64_t(lo + k);
            }
            if (opt.verify && !good) {
              std::lock_guard<std::mutex> lock(mu);
              stats.incorrect++;
            }
          }
        } else {
          const uint64_t row = rng.Uniform(rows);
          Timer t;
          Result<Response> r = c.Point("id", row, opt.deadline_micros);
          const uint64_t ns = uint64_t(t.ElapsedNanos());
          if (const Response* resp = Classify(r, &stats, &mu)) {
            point_lat[client].push_back(ns);
            if (opt.verify && uint64_t(resp->value) != row) {
              std::lock_guard<std::mutex> lock(mu);
              stats.incorrect++;
            }
          }
        }
        if (!c.connected()) break;  // transport gone; stop this client
      }
    });
  }
  for (std::thread& t : threads) t.join();
  stats.wall_seconds = wall.ElapsedSeconds();

  for (auto& v : point_lat) {
    stats.point.ns.insert(stats.point.ns.end(), v.begin(), v.end());
  }
  for (auto& v : scan_lat) {
    stats.scan.ns.insert(stats.scan.ns.end(), v.begin(), v.end());
  }
  std::sort(stats.point.ns.begin(), stats.point.ns.end());
  std::sort(stats.scan.ns.begin(), stats.scan.ns.end());
  return stats;
}

void PrintAndCollect(const MixStats& s, std::string* metrics_json) {
  char buf[256];
  struct Series {
    const char* label;
    const Lats* lats;
  } series[] = {{"point", &s.point}, {"scan", &s.scan}};
  for (const Series& ser : series) {
    if (ser.lats->ns.empty()) continue;
    printf("%-12s %-6s %10.1f %10.1f %10.1f %10.1f %10zu\n", s.name.c_str(),
           ser.label, ser.lats->Exact(0.50) / 1e3, ser.lats->Exact(0.95) / 1e3,
           ser.lats->Exact(0.99) / 1e3, ser.lats->Exact(0.999) / 1e3,
           ser.lats->ns.size());
    for (const auto& [q, label] :
         {std::pair<double, const char*>{0.50, "p50_ns"},
          {0.95, "p95_ns"},
          {0.99, "p99_ns"},
          {0.999, "p999_ns"}}) {
      snprintf(buf, sizeof(buf), "\"%s.%s.%s\":%llu,", s.name.c_str(),
               ser.label, label, (unsigned long long)ser.lats->Exact(q));
      *metrics_json += buf;
    }
  }
  printf("%-12s %-6s ok %llu shed %llu deadline %llu failed %llu "
         "incorrect %llu  %.0f ops/s\n",
         s.name.c_str(), "total", (unsigned long long)s.ok,
         (unsigned long long)s.shed, (unsigned long long)s.deadline_exceeded,
         (unsigned long long)s.failed, (unsigned long long)s.incorrect,
         s.OpsPerSec());
  snprintf(buf, sizeof(buf),
           "\"%s.ops_per_sec\":%.1f,\"%s.shed\":%llu,"
           "\"%s.deadline_exceeded\":%llu,",
           s.name.c_str(), s.OpsPerSec(), s.name.c_str(),
           (unsigned long long)s.shed, s.name.c_str(),
           (unsigned long long)s.deadline_exceeded);
  *metrics_json += buf;
}

int Run(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; i++) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(argv[i], "--host") == 0) {
      if (const char* v = next()) opt.host = v;
    } else if (std::strcmp(argv[i], "--port") == 0) {
      if (const char* v = next()) opt.port = uint16_t(std::atoi(v));
    } else if (std::strcmp(argv[i], "--clients") == 0) {
      if (const char* v = next()) opt.clients = unsigned(std::atoi(v));
    } else if (std::strcmp(argv[i], "--ops") == 0) {
      if (const char* v = next()) opt.ops = size_t(std::atoll(v));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      if (const char* v = next()) opt.seed = uint64_t(std::atoll(v));
    } else if (std::strcmp(argv[i], "--deadline-us") == 0) {
      if (const char* v = next()) opt.deadline_micros = uint64_t(std::atoll(v));
    } else if (std::strcmp(argv[i], "--mix") == 0) {
      if (const char* v = next()) opt.mix = v;
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      opt.verify = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      opt.json_path = next();
    } else {
      fprintf(stderr,
              "usage: %s --port P [--host H] [--clients N] [--ops N]\n"
              "          [--mix read_only|mixed_80_20|all] [--seed S]\n"
              "          [--deadline-us N] [--verify] [--json PATH]\n",
              argv[0]);
      return 2;
    }
  }
  if (opt.port == 0) {
    fprintf(stderr, "error: --port is required\n");
    return 2;
  }
  if (opt.clients == 0) opt.clients = 1;

  // Row count comes from the server — the driver never assumes the table
  // size, only the `id` column's shape when --verify is on.
  Result<Client> probe = Client::Connect(opt.host, opt.port);
  if (!probe.ok()) {
    fprintf(stderr, "error: %s\n", probe.status().ToString().c_str());
    return 1;
  }
  Client pc = probe.MoveValueOrDie();
  Result<Response> info = pc.TableInfo();
  if (!info.ok() || info.ValueOrDie().code != StatusCode::kOk) {
    fprintf(stderr, "error: table info failed: %s\n",
            info.ok() ? info.ValueOrDie().error.c_str()
                      : info.status().ToString().c_str());
    return 1;
  }
  const uint64_t rows = info.ValueOrDie().rows;
  if (rows == 0) {
    fprintf(stderr, "error: server table is empty\n");
    return 1;
  }
  printf("server %s:%u: %llu rows, %zu columns; %u clients, %zu ops/mix\n",
         opt.host.c_str(), opt.port, (unsigned long long)rows,
         info.ValueOrDie().columns.size(), opt.clients, opt.ops);

  if (opt.verify && !VerifyAggregates(&pc, rows, opt.seed)) return 1;
  pc.Close();

  struct Mix {
    const char* name;
    int scan_pct;
  };
  const Mix mixes[] = {{"read_only", 0}, {"mixed_80_20", 20}};

  printf("%-12s %-6s %10s %10s %10s %10s %10s\n", "mix", "type", "p50(us)",
         "p95(us)", "p99(us)", "p999(us)", "samples");
  std::string metrics_json;
  uint64_t failed = 0, incorrect = 0;
  for (const Mix& mix : mixes) {
    if (opt.mix != "all" && opt.mix != mix.name) continue;
    MixStats s = RunMix(opt, mix.name, mix.scan_pct, rows);
    PrintAndCollect(s, &metrics_json);
    failed += s.failed;
    incorrect += s.incorrect;
  }

  if (opt.json_path != nullptr) {
    if (!metrics_json.empty()) metrics_json.pop_back();  // trailing comma
    FILE* f = std::fopen(opt.json_path, "w");
    if (f == nullptr) {
      fprintf(stderr, "error: cannot write %s\n", opt.json_path);
      return 1;
    }
    fprintf(f,
            "{\"bench\":\"workload_driver\",\"config\":{\"clients\":%u,"
            "\"ops\":%zu,\"seed\":%llu,\"deadline_us\":%llu},"
            "\"metrics\":{%s}}\n",
            opt.clients, opt.ops, (unsigned long long)opt.seed,
            (unsigned long long)opt.deadline_micros, metrics_json.c_str());
    std::fclose(f);
    printf("wrote %s\n", opt.json_path);
  }

  if (failed > 0 || incorrect > 0) {
    fprintf(stderr, "FAIL: %llu failed, %llu incorrect responses\n",
            (unsigned long long)failed, (unsigned long long)incorrect);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace scc

int main(int argc, char** argv) { return scc::Run(argc, argv); }
